//! Workspace facade crate: hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). The library surface
//! simply re-exports [`cbs_core`]; depend on `cbs-core` directly in real
//! code.

pub use cbs_core::*;
