#!/usr/bin/env bash
# Full offline verification gate: tier-1 (release build + tests) plus
# formatting and lint checks. Run from the repository root.
#
# The workspace has zero external dependencies (randomness comes from the
# in-repo cbs-prng crate, benches from cbs-bench), so everything here runs
# with --offline against the committed Cargo.lock.
#
# Flags:
#   --bench-smoke   additionally execute every bench binary once under
#                   CBS_BENCH_SMOKE=1 (one iteration, no wall-clock
#                   assertions, no artifact writes) so the bench code
#                   paths stay green in CI without timing flakiness.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --offline --locked --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --offline --locked --release

echo "==> cargo test -q (tier-1)"
cargo test --offline --locked -q

echo "==> cargo test -q --workspace (member-crate unit tests)"
cargo test --offline --locked -q --workspace

if [[ "$BENCH_SMOKE" == "1" ]]; then
  echo "==> cargo bench (smoke: CBS_BENCH_SMOKE=1, one iteration per bench)"
  CBS_BENCH_SMOKE=1 cargo bench --offline --locked --workspace
fi

echo "OK: all gates passed"
