#!/usr/bin/env bash
# Full offline verification gate: tier-1 (release build + tests) plus
# formatting and lint checks. Run from the repository root.
#
# The workspace has zero external dependencies (randomness comes from the
# in-repo cbs-prng crate, benches from cbs-bench), so everything here runs
# with --offline against the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --offline --locked --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --offline --locked --release

echo "==> cargo test -q (tier-1)"
cargo test --offline --locked -q

echo "==> cargo test -q --workspace (member-crate unit tests)"
cargo test --offline --locked -q --workspace

echo "OK: all gates passed"
