#!/usr/bin/env bash
# Full offline verification gate: tier-1 (release build + tests) plus
# formatting and lint checks. Run from the repository root.
#
# The workspace has zero external dependencies (randomness comes from the
# in-repo cbs-prng crate, benches from cbs-bench), so everything here runs
# with --offline against the committed Cargo.lock.
#
# Flags:
#   --bench-smoke   additionally execute every bench binary once under
#                   CBS_BENCH_SMOKE=1 (one iteration, no wall-clock
#                   assertions, no artifact writes) so the bench code
#                   paths stay green in CI without timing flakiness.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --offline --locked --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --offline --locked --release

echo "==> cargo build --release --workspace (bench/profiled binaries for the smokes)"
cargo build --offline --locked --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test --offline --locked -q

echo "==> cargo test -q --workspace (member-crate unit tests)"
cargo test --offline --locked -q --workspace

echo "==> BENCH_ingest.json schema check (committed ingest-bench artifact)"
BENCH_JSON=BENCH_ingest.json
[[ -f "$BENCH_JSON" ]] \
  || { echo "FAIL: $BENCH_JSON missing (regenerate: cargo bench -p cbs-bench --bench profile_ingest)" >&2; exit 1; }
grep -q '"bench": "profile_ingest"' "$BENCH_JSON" \
  || { echo "FAIL: $BENCH_JSON is not a profile_ingest artifact" >&2; exit 1; }
for key in records frames wire_bytes; do
  grep -Eq "\"$key\": [1-9][0-9]*" "$BENCH_JSON" \
    || { echo "FAIL: $BENCH_JSON missing positive \"$key\"" >&2; exit 1; }
done
for cfg in codec/encode codec/decode \
           aggregate/shards=1/serial aggregate/shards=4/serial aggregate/shards=8/serial \
           aggregate/shards=4/streaming aggregate/shards=8/streaming \
           pull/rebuild pull/cached wal/append wal/append_concurrent \
           wal/append_single_lock recovery/replay; do
  grep -q "\"config\": \"$cfg\"" "$BENCH_JSON" \
    || { echo "FAIL: $BENCH_JSON missing config \"$cfg\"" >&2; exit 1; }
done
awk '/"median_ns"/ && $0 !~ /"median_ns": [1-9][0-9]*/ { bad = 1 } END { exit bad }' "$BENCH_JSON" \
  || { echo "FAIL: non-positive median_ns in $BENCH_JSON" >&2; exit 1; }
# Durability acceptance bound: the WAL-on ingest path (async fsync) must
# stay within 2x of the equivalent in-memory streaming path.
awk -F'"median_ns": ' '
  /"config": "aggregate\/shards=4\/streaming"/ { split($2, a, ","); mem = a[1] }
  /"config": "wal\/append"/                    { split($2, a, ","); wal = a[1] }
  END { if (mem == 0 || wal == 0 || wal > 2 * mem) exit 1 }' "$BENCH_JSON" \
  || { echo "FAIL: wal/append median exceeds 2x aggregate/shards=4/streaming in $BENCH_JSON" >&2; exit 1; }
# Group-commit acceptance bound: four concurrent durable pushers
# (shared group-commit syncs) must beat the single-lock
# one-fsync-per-op convoy they replaced. The amortization ceiling is
# the storage's fsync cost relative to the per-op CPU work: on
# seek-bound disks (fsync >=1ms) batches of four sustain >=3x, but on
# this class of virtio-backed host an fsync is ~150us -- the same
# order as the apply/append work it overlaps -- which compresses the
# measured ratio to ~2x. The gate floor is set where a regression back
# toward convoying (ratio -> 1) trips it, with margin for the host's
# fsync-latency jitter.
awk -F'"median_ns": ' '
  /"config": "wal\/append_concurrent"/  { split($2, a, ","); conc = a[1] }
  /"config": "wal\/append_single_lock"/ { split($2, a, ","); lock = a[1] }
  END { if (conc == 0 || lock == 0 || lock < 1.4 * conc) exit 1 }' "$BENCH_JSON" \
  || { echo "FAIL: wal/append_concurrent is not >=1.4x faster than wal/append_single_lock in $BENCH_JSON" >&2; exit 1; }

if [[ "$BENCH_SMOKE" == "1" ]]; then
  echo "==> cargo bench (smoke: CBS_BENCH_SMOKE=1, one iteration per bench)"
  # Smoke mode must exercise every bench code path (profile_ingest
  # included) without rewriting committed artifacts.
  BENCH_SUM_BEFORE="$(cksum "$BENCH_JSON")"
  CBS_BENCH_SMOKE=1 cargo bench --offline --locked --workspace
  BENCH_SUM_AFTER="$(cksum "$BENCH_JSON")"
  [[ "$BENCH_SUM_BEFORE" == "$BENCH_SUM_AFTER" ]] \
    || { echo "FAIL: bench smoke rewrote $BENCH_JSON (smoke runs must not emit artifacts)" >&2; exit 1; }
fi

echo "==> profiled loopback smoke (server + dcgtool push/pull/convert)"
SMOKE_DIR="$(mktemp -d)"
PROFILED_PID=""
PROFILED2_PID=""
PROFILED3_PID=""
cleanup() {
  [[ -n "$PROFILED_PID" ]] && kill "$PROFILED_PID" 2>/dev/null || true
  [[ -n "$PROFILED2_PID" ]] && kill "$PROFILED2_PID" 2>/dev/null || true
  [[ -n "$PROFILED3_PID" ]] && kill "$PROFILED3_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
PROFILED=target/release/profiled
DCGTOOL=target/release/dcgtool
printf '# cbs-dcg v1\n3 0 1 100\n0 0 1 10\n0 1 2 5.25\n' > "$SMOKE_DIR/a.dcg"
timeout 60 "$DCGTOOL" convert "$SMOKE_DIR/a.dcg" "$SMOKE_DIR/a.dcgb"
timeout 60 "$DCGTOOL" convert "$SMOKE_DIR/a.dcgb" "$SMOKE_DIR/a2.dcg"
cmp "$SMOKE_DIR/a.dcg" "$SMOKE_DIR/a2.dcg" \
  || { echo "FAIL: text -> binary -> text round-trip not byte-identical" >&2; exit 1; }
"$PROFILED" --addr 127.0.0.1:0 --shards 4 > "$SMOKE_DIR/server.out" &
PROFILED_PID=$!
for _ in $(seq 1 50); do
  grep -q '^listening ' "$SMOKE_DIR/server.out" && break
  sleep 0.1
done
ADDR="$(awk '/^listening /{print $2; exit}' "$SMOKE_DIR/server.out")"
[[ -n "$ADDR" ]] || { echo "FAIL: profiled did not report its address" >&2; exit 1; }
timeout 60 "$DCGTOOL" push "$ADDR" "$SMOKE_DIR/a.dcgb"
timeout 60 "$DCGTOOL" pull "$ADDR" "$SMOKE_DIR/merged.dcg"
cmp "$SMOKE_DIR/a.dcg" "$SMOKE_DIR/merged.dcg" \
  || { echo "FAIL: pulled fleet profile differs from the single pushed snapshot" >&2; exit 1; }

echo "==> plan-serving smoke (OP_PLAN: deterministic, cached, byte-identical pulls)"
# The aggregate is unchanged between the two pulls, so the daemon must
# answer both from the generation-keyed plan cache with identical bytes.
timeout 60 "$DCGTOOL" plan "$ADDR" > "$SMOKE_DIR/plan1.txt"
timeout 60 "$DCGTOOL" plan "$ADDR" > "$SMOKE_DIR/plan2.txt"
cmp "$SMOKE_DIR/plan1.txt" "$SMOKE_DIR/plan2.txt" \
  || { echo "FAIL: two OP_PLAN pulls of an unchanged aggregate differ" >&2; exit 1; }
head -n 1 "$SMOKE_DIR/plan1.txt" | grep -q '^# cbs-inline-plan v1 generation=1 ' \
  || { echo "FAIL: plan render missing its versioned header" >&2;
       cat "$SMOKE_DIR/plan1.txt" >&2; exit 1; }
# The pushed profile's hottest edge (m3 s0 -> m1, weight 100) must be a
# direct-inline entry of the served plan.
grep -q '^m3 s0 weight=100 direct m1$' "$SMOKE_DIR/plan1.txt" \
  || { echo "FAIL: served plan lacks the known-hot direct entry" >&2;
       cat "$SMOKE_DIR/plan1.txt" >&2; exit 1; }

echo "==> profiled telemetry smoke (OP_METRICS scrape matches the traffic above)"
# Exactly one push, one pull, and two plan pulls (one cache miss + one
# hit) were issued against this server, so the scraped counters must
# agree; the scrape itself is timeout-bounded.
timeout 60 "$DCGTOOL" metrics "$ADDR" > "$SMOKE_DIR/metrics.txt"
head -n 1 "$SMOKE_DIR/metrics.txt" | grep -q '^# cbs-telemetry v1$' \
  || { echo "FAIL: metrics exposition missing its version header" >&2; exit 1; }
grep -q '^counter profiled\.server\.op\.push 1$' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: push counter does not match the one push issued" >&2;
       cat "$SMOKE_DIR/metrics.txt" >&2; exit 1; }
grep -q '^counter profiled\.server\.op\.pull 1$' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: pull counter does not match the one pull issued" >&2;
       cat "$SMOKE_DIR/metrics.txt" >&2; exit 1; }
grep -q '^counter profiled\.server\.op\.plan 2$' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: plan counter does not match the two plan pulls issued" >&2;
       cat "$SMOKE_DIR/metrics.txt" >&2; exit 1; }
grep -q '^counter profiled\.plan\.builds 1$' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: two pulls of one generation must build the plan exactly once" >&2;
       cat "$SMOKE_DIR/metrics.txt" >&2; exit 1; }
grep -q '^counter profiled\.plan\.cache_hits 1$' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: the second plan pull must be answered from the cache" >&2;
       cat "$SMOKE_DIR/metrics.txt" >&2; exit 1; }
grep -q '^counter profiled\.server\.err_replies 0$' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: clean smoke produced error replies" >&2;
       cat "$SMOKE_DIR/metrics.txt" >&2; exit 1; }

echo "==> profiled fault-injection smoke (resilient push/pull over a faulty link)"
# A fresh server, and a client whose every exchange runs through the
# deterministic fault injector (seeded schedule, ~30% fault rate): the
# pulled profile must still be byte-identical to the clean round-trip.
# Injected timeouts return immediately and --backoff-ms 1 keeps the
# retry sleeps negligible, so the whole smoke is timeout-bounded.
"$PROFILED" --addr 127.0.0.1:0 --shards 4 > "$SMOKE_DIR/server2.out" &
PROFILED2_PID=$!
for _ in $(seq 1 50); do
  grep -q '^listening ' "$SMOKE_DIR/server2.out" && break
  sleep 0.1
done
ADDR2="$(awk '/^listening /{print $2; exit}' "$SMOKE_DIR/server2.out")"
[[ -n "$ADDR2" ]] || { echo "FAIL: second profiled did not report its address" >&2; exit 1; }
timeout 60 "$DCGTOOL" push "$ADDR2" --faults 7 --fault-rate 0.3 --retries 32 --backoff-ms 1 \
  "$SMOKE_DIR/a.dcgb"
timeout 60 "$DCGTOOL" pull "$ADDR2" --retries 8 --backoff-ms 1 "$SMOKE_DIR/merged_faulty.dcg"
cmp "$SMOKE_DIR/a.dcg" "$SMOKE_DIR/merged_faulty.dcg" \
  || { echo "FAIL: profile pulled over the faulty transport differs from the clean one" >&2; exit 1; }

echo "==> durable-store crash-recovery smoke (SIGKILL, restart, bit-identical pull)"
# A store-backed server (--fsync always: every ack is durable) absorbs a
# plain push and a sequenced exactly-once push, then dies by SIGKILL. A
# restart on the same --data-dir must replay the WAL and serve a fleet
# profile byte-identical to the pre-kill pull (i.e. to a serial re-ingest
# of exactly the acked frames). Every client command is timeout-bounded.
STORE_DIR="$SMOKE_DIR/store"
wait_for_listening() {
  local out="$1"
  for _ in $(seq 1 50); do
    grep -q '^listening ' "$out" && break
    sleep 0.1
  done
  awk '/^listening /{print $2; exit}' "$out"
}
"$PROFILED" --addr 127.0.0.1:0 --shards 4 --data-dir "$STORE_DIR" --fsync always \
  > "$SMOKE_DIR/server3.out" &
PROFILED3_PID=$!
ADDR3="$(wait_for_listening "$SMOKE_DIR/server3.out")"
[[ -n "$ADDR3" ]] || { echo "FAIL: store-backed profiled did not report its address" >&2; exit 1; }
grep -q '^recovered frames=0 ' "$SMOKE_DIR/server3.out" \
  || { echo "FAIL: fresh data dir reported a non-empty recovery" >&2;
       cat "$SMOKE_DIR/server3.out" >&2; exit 1; }
timeout 60 "$DCGTOOL" push "$ADDR3" "$SMOKE_DIR/a.dcgb"
timeout 60 "$DCGTOOL" push "$ADDR3" --seed 11 --retries 8 --backoff-ms 1 "$SMOKE_DIR/a.dcgb"
timeout 60 "$DCGTOOL" pull "$ADDR3" "$SMOKE_DIR/pre_kill.dcg"
# The live server holds the advisory store lock: offline compaction must
# be refused with a clear diagnostic instead of corrupting the live WAL.
if timeout 60 "$DCGTOOL" store compact "$STORE_DIR" --shards 4 \
    2> "$SMOKE_DIR/compact_refused.txt"; then
  echo "FAIL: store compact succeeded against a live server's data dir" >&2; exit 1
fi
grep -q 'locked by running process' "$SMOKE_DIR/compact_refused.txt" \
  || { echo "FAIL: lockfile refusal does not name the holding process" >&2;
       cat "$SMOKE_DIR/compact_refused.txt" >&2; exit 1; }
kill -9 "$PROFILED3_PID"
wait "$PROFILED3_PID" 2>/dev/null || true
PROFILED3_PID=""
timeout 60 "$DCGTOOL" store inspect "$STORE_DIR" > "$SMOKE_DIR/inspect.txt"
grep -q '^segment ' "$SMOKE_DIR/inspect.txt" \
  || { echo "FAIL: store inspect shows no WAL segment after the kill" >&2;
       cat "$SMOKE_DIR/inspect.txt" >&2; exit 1; }
"$PROFILED" --addr 127.0.0.1:0 --shards 4 --data-dir "$STORE_DIR" --fsync always \
  > "$SMOKE_DIR/server4.out" &
PROFILED3_PID=$!
ADDR4="$(wait_for_listening "$SMOKE_DIR/server4.out")"
[[ -n "$ADDR4" ]] || { echo "FAIL: restarted profiled did not report its address" >&2;
                       cat "$SMOKE_DIR/server4.out" >&2; exit 1; }
grep -Eq '^recovered frames=[1-9]' "$SMOKE_DIR/server4.out" \
  || { echo "FAIL: restart after SIGKILL replayed no frames" >&2;
       cat "$SMOKE_DIR/server4.out" >&2; exit 1; }
timeout 60 "$DCGTOOL" pull "$ADDR4" "$SMOKE_DIR/post_kill.dcg"
cmp "$SMOKE_DIR/pre_kill.dcg" "$SMOKE_DIR/post_kill.dcg" \
  || { echo "FAIL: recovered fleet profile differs from the pre-kill pull" >&2; exit 1; }
kill "$PROFILED3_PID" 2>/dev/null || true
wait "$PROFILED3_PID" 2>/dev/null || true
PROFILED3_PID=""
# Offline compaction folds the WAL into a checkpoint; a restart then
# replays nothing yet still serves the identical profile.
timeout 60 "$DCGTOOL" store compact "$STORE_DIR" --shards 4
"$PROFILED" --addr 127.0.0.1:0 --shards 4 --data-dir "$STORE_DIR" --fsync always \
  > "$SMOKE_DIR/server5.out" &
PROFILED3_PID=$!
ADDR5="$(wait_for_listening "$SMOKE_DIR/server5.out")"
[[ -n "$ADDR5" ]] || { echo "FAIL: post-compaction profiled did not report its address" >&2;
                       cat "$SMOKE_DIR/server5.out" >&2; exit 1; }
grep -Eq '^recovered frames=0 .* checkpoint_epoch=[0-9]' "$SMOKE_DIR/server5.out" \
  || { echo "FAIL: compacted store should recover from the checkpoint alone" >&2;
       cat "$SMOKE_DIR/server5.out" >&2; exit 1; }
timeout 60 "$DCGTOOL" pull "$ADDR5" "$SMOKE_DIR/post_compact.dcg"
cmp "$SMOKE_DIR/pre_kill.dcg" "$SMOKE_DIR/post_compact.dcg" \
  || { echo "FAIL: compacted store serves a different fleet profile" >&2; exit 1; }
kill "$PROFILED3_PID" 2>/dev/null || true
wait "$PROFILED3_PID" 2>/dev/null || true
PROFILED3_PID=""

echo "==> durable-store mid-batch kill smoke (4 pushers, SIGKILL, deterministic recovery)"
# Four parallel pushers drive a --fsync always --group-commit server and
# the server dies by SIGKILL with group-commit batches in flight. The
# WAL then defines the truth: two independent restarts must replay it to
# byte-identical fleet profiles (torn tails cut, acked pushes kept).
STORE_DIR2="$SMOKE_DIR/store2"
"$PROFILED" --addr 127.0.0.1:0 --shards 4 --data-dir "$STORE_DIR2" \
  --fsync always --group-commit 8,200 > "$SMOKE_DIR/server6.out" &
PROFILED3_PID=$!
ADDR6="$(wait_for_listening "$SMOKE_DIR/server6.out")"
[[ -n "$ADDR6" ]] || { echo "FAIL: group-commit profiled did not report its address" >&2; exit 1; }
PUSHER_PIDS=()
for _ in 1 2 3 4; do
  (
    for _ in $(seq 1 50); do
      timeout 10 "$DCGTOOL" push "$ADDR6" "$SMOKE_DIR/a.dcgb" >/dev/null 2>&1 || exit 0
    done
  ) &
  PUSHER_PIDS+=($!)
done
sleep 0.5
kill -9 "$PROFILED3_PID"
wait "$PROFILED3_PID" 2>/dev/null || true
PROFILED3_PID=""
wait "${PUSHER_PIDS[@]}" 2>/dev/null || true
for restart in 1 2; do
  "$PROFILED" --addr 127.0.0.1:0 --shards 4 --data-dir "$STORE_DIR2" --fsync always \
    > "$SMOKE_DIR/server_restart$restart.out" &
  PROFILED3_PID=$!
  RADDR="$(wait_for_listening "$SMOKE_DIR/server_restart$restart.out")"
  [[ -n "$RADDR" ]] || { echo "FAIL: restart $restart did not report its address" >&2; exit 1; }
  grep -Eq '^recovered frames=[1-9]' "$SMOKE_DIR/server_restart$restart.out" \
    || { echo "FAIL: restart $restart replayed no frames after the mid-batch kill" >&2;
         cat "$SMOKE_DIR/server_restart$restart.out" >&2; exit 1; }
  timeout 60 "$DCGTOOL" pull "$RADDR" "$SMOKE_DIR/mid_batch_pull$restart.dcg"
  kill "$PROFILED3_PID" 2>/dev/null || true
  wait "$PROFILED3_PID" 2>/dev/null || true
  PROFILED3_PID=""
done
cmp "$SMOKE_DIR/mid_batch_pull1.dcg" "$SMOKE_DIR/mid_batch_pull2.dcg" \
  || { echo "FAIL: two recoveries of the same mid-batch WAL served different profiles" >&2; exit 1; }

echo "==> repro fleet render pin (deterministic output matches the committed artifact)"
# The fleet table and its telemetry counters are fully deterministic, so
# the committed render must never drift from what the binary produces.
timeout 300 target/release/repro fleet > "$SMOKE_DIR/fleet_render.txt"
cmp repro_fleet_output.txt "$SMOKE_DIR/fleet_render.txt" \
  || { echo "FAIL: repro fleet output drifted from repro_fleet_output.txt" \
            "(regenerate: target/release/repro fleet > repro_fleet_output.txt)" >&2; exit 1; }

echo "==> repro fleet-optimize render pin (served plans, deterministic output)"
# The exploitation loop — profiles streamed to a live daemon, OP_PLAN
# pulled and applied — is deterministic end to end, so this render is
# pinned too (and its footer asserts the fleet plan met or beat the
# best single-VM plan on total cycles).
timeout 300 target/release/repro fleet-optimize > "$SMOKE_DIR/fleet_optimize_render.txt"
cmp repro_fleet_optimize_output.txt "$SMOKE_DIR/fleet_optimize_render.txt" \
  || { echo "FAIL: repro fleet-optimize output drifted from repro_fleet_optimize_output.txt" \
            "(regenerate: target/release/repro fleet-optimize > repro_fleet_optimize_output.txt)" >&2; exit 1; }
grep -q '^pooled plan meets or beats the best single-VM plan: yes$' \
  "$SMOKE_DIR/fleet_optimize_render.txt" \
  || { echo "FAIL: the fleet plan lost to a single-VM plan on total cycles" >&2; exit 1; }

echo "OK: all gates passed"
