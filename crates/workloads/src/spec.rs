//! Workload specifications.

/// Input size of a benchmark run (Table 1 reports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// The paper's "small" input.
    Small,
    /// The paper's "large" input (longer-running; accuracy converges
    /// further).
    Large,
}

impl InputSize {
    /// Both sizes, small first.
    pub const fn both() -> [InputSize; 2] {
        [InputSize::Small, InputSize::Large]
    }

    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            InputSize::Small => "small",
            InputSize::Large => "large",
        }
    }
}

/// Everything the generator needs to synthesize one benchmark program.
///
/// The knobs control exactly the dynamic-call-stream properties the
/// paper's accuracy anomalies depend on: how much straight-line work
/// separates calls (timer-bias), how skewed receiver distributions are
/// (the 40% rule), how heavy the cold tail of methods is (convergence
/// speed), and whether behavior shifts between phases (burst-profiling
/// hazard).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (used in generated method names and reports).
    pub name: String,
    /// Deterministic generation seed.
    pub seed: u64,
    /// Total method count to generate (matches Table 1's "Meth exe").
    pub num_methods: u32,
    /// Virtual-dispatch families (each is a base class + override
    /// subclass implementing vtable slot 0).
    pub families: u32,
    /// Calls emitted per mid-tier method.
    pub fanout: u32,
    /// Fraction of mid-method call sites that dispatch virtually.
    pub polymorphic_fraction: f64,
    /// Receiver-skew mask: at a virtual site the dominant receiver is
    /// used unless `i & mask == 0`. Mask 7 → 87.5% dominant; mask 1 →
    /// 50/50.
    pub receiver_mask: i64,
    /// Straight-line work (arithmetic/field ops) emitted before each call
    /// site — the "long sequence of non-calls" knob from Figure 1.
    pub work_per_call: u32,
    /// Extra inner-loop repetitions inside leaf methods (numeric kernels
    /// like compress/mpegaudio run hot loops between calls).
    pub leaf_loop: u32,
    /// Body size range for non-trivial leaves, in work units.
    pub leaf_work: (u32, u32),
    /// Frequency tiers in the driver: tier `t` runs every `2^t`
    /// iterations, and deeper tiers hold more methods — a long-tailed
    /// edge-weight distribution.
    pub tiers: u32,
    /// Inner repetitions of the hottest tier per driver iteration.
    /// Concentrates profile weight on the hot edges (real profiles put
    /// most weight on a few dozen edges).
    pub hot_repeat: u32,
    /// Sequential phases in the driver, each favoring a different method
    /// subset (burst-profiler hazard; parsers/transformers are phasey).
    pub phases: u32,
    /// Fraction of a mid method's call sites that chain to another
    /// (deeper) mid method instead of a leaf.
    pub chain_fraction: f64,
    /// Simulated-I/O sites sprinkled into hot mids, and their unit cost.
    pub io_sites: u32,
    /// Cost units per I/O site.
    pub io_cost: u32,
    /// Target simulated running time in seconds on the default 10 MHz
    /// clock; the generator derives the iteration count from a coarse
    /// per-iteration cost estimate.
    pub target_seconds: f64,
}

impl WorkloadSpec {
    /// Returns a copy whose running time is scaled by `factor` (tests use
    /// small factors; "large" inputs use >1).
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        WorkloadSpec {
            target_seconds: self.target_seconds * factor,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_size_labels() {
        assert_eq!(InputSize::Small.label(), "small");
        assert_eq!(InputSize::Large.label(), "large");
        assert_eq!(InputSize::both().len(), 2);
    }

    #[test]
    fn scaling_changes_only_duration() {
        let spec = WorkloadSpec {
            name: "x".into(),
            seed: 1,
            num_methods: 100,
            families: 5,
            fanout: 2,
            polymorphic_fraction: 0.5,
            receiver_mask: 7,
            work_per_call: 10,
            leaf_loop: 0,
            leaf_work: (4, 10),
            tiers: 3,
            hot_repeat: 1,
            phases: 1,
            chain_fraction: 0.2,
            io_sites: 0,
            io_cost: 0,
            target_seconds: 1.0,
        };
        let big = spec.scaled(8.0);
        assert_eq!(big.num_methods, spec.num_methods);
        assert!((big.target_seconds - 8.0).abs() < 1e-12);
    }
}
