//! The named benchmark suite mirroring the paper's Table 1.
//!
//! Each benchmark is a seeded synthetic program whose *shape* matches the
//! corresponding real program's published characteristics (methods
//! executed, bytecode volume, qualitative behavior) — see DESIGN.md for
//! the substitution argument. The "small" input targets the running time
//! Table 1 reports on the paper's hardware (rescaled to the simulated
//! 10 MHz clock); "large" runs [`LARGE_SCALE`]× longer.

use crate::generator;
use crate::spec::{InputSize, WorkloadSpec};
use cbs_bytecode::{BuildError, Program};
use std::fmt;

/// How much longer the "large" input runs than the "small" one.
pub const LARGE_SCALE: f64 = 6.0;

/// The thirteen benchmarks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// SPECjvm98 `compress`: tight numeric kernels, tiny call graph.
    Compress,
    /// SPECjvm98 `jess`: expert-system rule dispatch, very virtual.
    Jess,
    /// SPECjvm98 `db`: small in-memory database operations.
    Db,
    /// SPECjvm98 `javac`: the Java compiler — large, flat, polymorphic.
    Javac,
    /// SPECjvm98 `mpegaudio`: numeric decoding loops.
    Mpegaudio,
    /// SPECjvm98 `mtrt`: multithreaded ray tracer, skewed dispatch.
    Mtrt,
    /// SPECjvm98 `jack`: parser generator — phasey with I/O.
    Jack,
    /// Persistent XML database services.
    Ipsixql,
    /// Apache Xerces XML parsing.
    Xerces,
    /// MIT's dynamic invariant detector — very many methods.
    Daikon,
    /// Java-based Scheme system — huge method count, short run.
    Kawa,
    /// SPECjbb2000-style business transactions.
    Jbb,
    /// McGill bytecode analysis framework — large and flat.
    Soot,
}

impl Benchmark {
    /// All benchmarks in Table 1 order.
    pub const fn all() -> [Benchmark; 13] {
        use Benchmark::*;
        [
            Compress, Jess, Db, Javac, Mpegaudio, Mtrt, Jack, Ipsixql, Xerces, Daikon, Kawa, Jbb,
            Soot,
        ]
    }

    /// Lowercase benchmark name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Jess => "jess",
            Benchmark::Db => "db",
            Benchmark::Javac => "javac",
            Benchmark::Mpegaudio => "mpegaudio",
            Benchmark::Mtrt => "mtrt",
            Benchmark::Jack => "jack",
            Benchmark::Ipsixql => "ipsixql",
            Benchmark::Xerces => "xerces",
            Benchmark::Daikon => "daikon",
            Benchmark::Kawa => "kawa",
            Benchmark::Jbb => "jbb",
            Benchmark::Soot => "soot",
        }
    }

    /// The workload specification for one input size.
    pub fn spec(self, size: InputSize) -> WorkloadSpec {
        let s = self.small_spec();
        match size {
            InputSize::Small => s,
            InputSize::Large => s.scaled(LARGE_SCALE),
        }
    }

    /// Builds the benchmark program.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from generation (indicates a generator
    /// bug; the shipped specs always build).
    pub fn build(self, size: InputSize) -> Result<Program, BuildError> {
        generator::build(&self.spec(size))
    }

    fn small_spec(self) -> WorkloadSpec {
        let (
            num_methods,
            families,
            fanout,
            poly,
            mask,
            work,
            leaf_loop,
            leaf_work,
            tiers,
            hot_repeat,
            phases,
            chain,
            io_sites,
            io_cost,
            secs,
        ) = match self {
            // compress: few, loopy numeric methods; one dominant edge.
            Benchmark::Compress => (
                243,
                3,
                2,
                0.15,
                15,
                8,
                6,
                (4, 10),
                2,
                8,
                1,
                0.10,
                0,
                0,
                1.38,
            ),
            // jess: rule dispatch — many virtual sites, skewed.
            Benchmark::Jess => (662, 14, 3, 0.60, 7, 3, 0, (2, 6), 4, 3, 1, 0.25, 0, 0, 0.92),
            // db: small and loop-dominated.
            Benchmark::Db => (258, 5, 2, 0.30, 7, 5, 2, (2, 6), 3, 5, 1, 0.15, 0, 0, 0.46),
            // javac: flat profile, 50/50 receiver splits, deep chains.
            Benchmark::Javac => (939, 24, 3, 0.50, 1, 4, 0, (2, 8), 6, 2, 1, 0.35, 0, 0, 0.80),
            // mpegaudio: numeric kernels with some dispatch.
            Benchmark::Mpegaudio => (
                416,
                6,
                2,
                0.20,
                15,
                10,
                8,
                (4, 9),
                3,
                6,
                1,
                0.10,
                0,
                0,
                1.90,
            ),
            // mtrt: intersect() everywhere — hot, heavily skewed virtuals.
            Benchmark::Mtrt => (
                368,
                10,
                3,
                0.65,
                15,
                3,
                0,
                (2, 6),
                3,
                5,
                1,
                0.20,
                0,
                0,
                0.91,
            ),
            // jack: two parse phases, token I/O.
            Benchmark::Jack => (477, 10, 3, 0.40, 7, 4, 0, (2, 6), 4, 3, 2, 0.25, 6, 4, 0.85),
            // ipsixql: query phases over a persistent store.
            Benchmark::Ipsixql => (459, 10, 3, 0.45, 7, 4, 0, (2, 6), 4, 3, 2, 0.25, 4, 4, 1.34),
            // xerces: three-phase parse/validate/serialize.
            Benchmark::Xerces => (719, 15, 3, 0.50, 3, 3, 0, (2, 6), 5, 3, 3, 0.30, 2, 3, 3.28),
            // daikon: enormous flat method population.
            Benchmark::Daikon => (
                1671,
                28,
                3,
                0.40,
                3,
                3,
                0,
                (2, 7),
                7,
                2,
                1,
                0.35,
                0,
                0,
                4.51,
            ),
            // kawa: even more methods, short run — hard to converge.
            Benchmark::Kawa => (
                1794,
                30,
                3,
                0.45,
                3,
                2,
                0,
                (1, 4),
                7,
                2,
                1,
                0.35,
                0,
                0,
                0.95,
            ),
            // jbb: transaction mix over warehouse objects.
            Benchmark::Jbb => (597, 12, 3, 0.50, 7, 4, 0, (2, 6), 3, 4, 1, 0.20, 3, 3, 2.00),
            // soot: large flat analysis framework.
            Benchmark::Soot => (
                1215,
                24,
                3,
                0.45,
                3,
                3,
                0,
                (2, 6),
                6,
                2,
                1,
                0.35,
                0,
                0,
                1.67,
            ),
        };
        WorkloadSpec {
            name: self.name().to_owned(),
            seed: 0x5EED_0000 + self as u64,
            num_methods,
            families,
            fanout,
            polymorphic_fraction: poly,
            receiver_mask: mask,
            work_per_call: work,
            leaf_loop,
            leaf_work,
            tiers,
            hot_repeat,
            phases,
            chain_fraction: chain,
            io_sites,
            io_cost,
            target_seconds: secs,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_internally_consistent() {
        for b in Benchmark::all() {
            let s = b.spec(InputSize::Small);
            let virtual_leaves = 2 * s.families;
            assert!(s.num_methods > virtual_leaves + 2, "{b}");
            let rest = s.num_methods - 1 - virtual_leaves;
            let mids = (f64::from(rest) * 0.45).ceil() as u32;
            let leaves = rest - mids;
            assert!(
                mids * s.fanout.max(2) >= leaves + s.families,
                "{b}: sites cannot cover leaves"
            );
        }
    }

    #[test]
    fn every_benchmark_builds_small() {
        for b in Benchmark::all() {
            let p = b
                .build(InputSize::Small)
                .unwrap_or_else(|e| panic!("{b}: {e}"));
            assert_eq!(
                p.num_methods() as u32,
                b.spec(InputSize::Small).num_methods,
                "{b}"
            );
        }
    }

    #[test]
    fn method_counts_match_table1() {
        let expected = [
            (Benchmark::Compress, 243),
            (Benchmark::Jess, 662),
            (Benchmark::Db, 258),
            (Benchmark::Javac, 939),
            (Benchmark::Mpegaudio, 416),
            (Benchmark::Mtrt, 368),
            (Benchmark::Jack, 477),
            (Benchmark::Ipsixql, 459),
            (Benchmark::Xerces, 719),
            (Benchmark::Daikon, 1671),
            (Benchmark::Kawa, 1794),
            (Benchmark::Jbb, 597),
            (Benchmark::Soot, 1215),
        ];
        for (b, n) in expected {
            assert_eq!(b.spec(InputSize::Small).num_methods, n, "{b}");
        }
    }

    #[test]
    fn large_input_targets_longer_run() {
        for b in Benchmark::all() {
            let small = b.spec(InputSize::Small);
            let large = b.spec(InputSize::Large);
            assert!(large.target_seconds > small.target_seconds * 2.0, "{b}");
        }
    }

    #[test]
    fn names_are_stable_and_displayable() {
        assert_eq!(Benchmark::Javac.to_string(), "javac");
        let names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names unique");
    }
}
