//! Deterministic synthetic-program generation.
//!
//! Given a [`WorkloadSpec`], produces a verified [`Program`] whose
//! *dynamic call stream* has the properties the spec asks for: a driver
//! loop dispatches mid-tier methods organized into exponentially rarer
//! frequency tiers (long-tailed edge weights) and sequential phases;
//! mid methods interleave straight-line work with direct calls, chained
//! mid calls, and virtual calls whose receiver alternates between a
//! dominant and a rare class; leaf methods range from trivial getters to
//! loopy numeric kernels.
//!
//! Generation is seeded and uses no hash-ordered iteration, so the same
//! spec always yields the identical program.

use crate::spec::WorkloadSpec;
use cbs_bytecode::{
    BuildError, ClassId, CodeBuilder, MethodId, Program, ProgramBuilder, VirtualSlot,
};
use cbs_prng::SmallRng;

/// The single vtable slot every dispatch family implements.
const SLOT: VirtualSlot = VirtualSlot::new(0);

/// Coarse cycle constants used only to derive an iteration count from
/// `target_seconds`; they mirror the magnitudes of
/// `cbs_vm::CostModel::default()` without creating a dependency.
mod est {
    pub const WORK_UNIT: f64 = 4.0; // load+const+op+store
    pub const CALL: f64 = 22.0; // call + return + arg traffic
    pub const VCALL: f64 = 34.0; // dispatch + diamond
    pub const CLOCK_HZ: f64 = 10_000_000.0;
}

/// Builds the program described by `spec`.
///
/// # Errors
///
/// Returns a [`BuildError`] if the generated program fails verification
/// (a generator bug, not a caller error).
///
/// # Panics
///
/// Panics when the spec is internally inconsistent (e.g. too few call
/// sites to reach every generated method); specs constructed through
/// [`Benchmark`](crate::Benchmark) are always consistent.
pub fn build(spec: &WorkloadSpec) -> Result<Program, BuildError> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new();

    let families = spec.families.max(1);
    let virtual_leaves = 2 * families;
    assert!(
        spec.num_methods > virtual_leaves + 2,
        "{}: num_methods too small for {} families",
        spec.name,
        families
    );
    let rest = spec.num_methods - 1 - virtual_leaves;
    let num_mids = (f64::from(rest) * 0.45).ceil().max(1.0) as u32;
    let num_direct_leaves = rest - num_mids;
    let fanout = spec.fanout.max(2);
    let total_sites = num_mids * fanout;
    assert!(
        total_sites >= num_direct_leaves + families,
        "{}: not enough call sites ({total_sites}) to cover {} leaves + {} families",
        spec.name,
        num_direct_leaves,
        families
    );

    // --- Classes ------------------------------------------------------
    // The context object carries two receiver fields per family:
    // field 2f = rare (base) instance, 2f+1 = dominant (sub) instance.
    let ctx_cls = b.add_class(format!("{}.Ctx", spec.name), (2 * families) as u16);
    let mut fams: Vec<(ClassId, ClassId)> = Vec::with_capacity(families as usize);
    for f in 0..families {
        let base = b.add_class(format!("{}.F{f}", spec.name), 2);
        let sub = b.add_subclass(format!("{}.F{f}Sub", spec.name), base, 0);
        fams.push((base, sub));
    }

    // --- Virtual leaf methods ------------------------------------------
    for (f, &(base, sub)) in fams.iter().enumerate() {
        let trivial_base = f % 4 == 0;
        let base_impl = b.function(format!("{}.F{f}.virt", spec.name), base, 1, 2, |c| {
            if trivial_base {
                c.load(0).get_field(0).ret();
            } else {
                emit_virtual_leaf_body(c, spec, &mut rng);
            }
        })?;
        b.set_vtable(base, SLOT, base_impl);
        let sub_impl = b.function(format!("{}.F{f}Sub.virt", spec.name), sub, 1, 2, |c| {
            emit_virtual_leaf_body(c, spec, &mut rng)
        })?;
        b.set_vtable(sub, SLOT, sub_impl);
    }

    // --- Direct leaf methods -------------------------------------------
    let mut direct_leaves: Vec<MethodId> = Vec::with_capacity(num_direct_leaves as usize);
    for l in 0..num_direct_leaves {
        let id = b.function(format!("{}.leaf{l}", spec.name), ctx_cls, 1, 2, |c| {
            emit_direct_leaf_body(c, spec, &mut rng)
        })?;
        direct_leaves.push(id);
    }

    // --- Mid-tier methods ----------------------------------------------
    // Declared first so call sites can chain forward.
    let mids: Vec<MethodId> = (0..num_mids)
        .map(|j| b.declare(format!("{}.mid{j}", spec.name), ctx_cls, 2))
        .collect();
    let mut site_counter: u32 = 0;
    let mut vsite_counter: u32 = 0;
    for (j, &mid) in mids.iter().enumerate() {
        // Snapshot per-site choices before the closure (the closure
        // cannot borrow rng twice).
        let mut site_plans = Vec::with_capacity(fanout as usize);
        for s in 0..fanout {
            let chain_ok = s == 0 && (j + 1) < mids.len() && rng.gen_bool(spec.chain_fraction);
            let plan = if chain_ok {
                SitePlan::Chain(mids[rng.gen_range(j + 1..mids.len())])
            } else if site_counter < num_direct_leaves {
                // Coverage phase: every direct leaf gets at least one
                // site.
                let t = direct_leaves[site_counter as usize];
                site_counter += 1;
                SitePlan::Direct(t)
            } else if rng.gen_bool(spec.polymorphic_fraction) || vsite_counter < families {
                let fam = if vsite_counter < families {
                    vsite_counter % families
                } else {
                    // Hot-biased family selection.
                    rng.gen_range(0..families.max(1))
                };
                vsite_counter += 1;
                SitePlan::Virtual(fam)
            } else {
                // Hot-biased leaf selection: square the uniform draw so
                // low-index leaves dominate.
                let u: f64 = rng.gen_f64();
                let idx = ((u * u) * f64::from(num_direct_leaves)) as u32;
                SitePlan::Direct(direct_leaves[idx.min(num_direct_leaves - 1) as usize])
            };
            site_plans.push(plan);
        }
        let work_seeds: Vec<i64> = (0..fanout).map(|_| rng.gen_range(1..1000)).collect();
        let has_io = (j as u32) < spec.io_sites;
        // Error-path callees: statically present call sites that never
        // execute (real methods are full of such cold branches). Static
        // inlining heuristics bloat compiled code with them; profile-aware
        // heuristics skip them at zero runtime cost.
        let error_leaves: [MethodId; 2] = [
            direct_leaves[rng.gen_range(0..direct_leaves.len())],
            direct_leaves[rng.gen_range(0..direct_leaves.len())],
        ];
        b.define(mid, 2, |c| {
            // locals: 0 = ctx, 1 = i, 2 = acc, 3 = scratch
            if has_io {
                c.io(spec.io_cost).pop();
            }
            for (s, plan) in site_plans.iter().enumerate() {
                emit_work_units(c, spec.work_per_call, 2, work_seeds[s]);
                match plan {
                    SitePlan::Chain(target) => {
                        c.load(0).load(1).call(*target);
                    }
                    SitePlan::Direct(target) => {
                        c.load(1).call(*target);
                    }
                    SitePlan::Virtual(fam) => {
                        emit_receiver_diamond(c, *fam, spec.receiver_mask);
                        c.call_virtual(SLOT, 1);
                    }
                }
                c.load(2).add().store(2);
            }
            // Never-taken error paths (the driver never passes this
            // sentinel): `if (i == SENTINEL) acc = handle_error(i);`
            for &err in &error_leaves {
                let skip = c.label();
                c.load(1).const_(i64::MIN + 7).cmp_eq().jump_if_zero(skip);
                c.load(1).call(err).store(2);
                c.bind(skip);
            }
            c.load(2).ret();
        })?;
    }

    // --- Driver ----------------------------------------------------------
    // Mids are dealt round-robin to phases; within a phase, tier t
    // (running every 2^t iterations) receives a 2^t-proportional share so
    // the hot tier is small and the cold tail is wide.
    let phases = spec.phases.max(1);
    let tiers = spec.tiers.max(1);
    let mut phase_tier_mids: Vec<Vec<Vec<MethodId>>> =
        vec![vec![Vec::new(); tiers as usize]; phases as usize];
    for (j, &mid) in mids.iter().enumerate() {
        let phase = (j as u32) % phases;
        let within = (j as u32) / phases;
        let per_phase = num_mids.div_ceil(phases).max(1);
        let tier = share_tier(within, per_phase, tiers);
        phase_tier_mids[phase as usize][tier as usize].push(mid);
    }

    let iters_per_phase = derive_iterations(spec, &phase_tier_mids, num_mids, fanout);
    let main = b.declare(format!("{}.main", spec.name), ctx_cls, 0);
    b.define(main, 4, |c| {
        // locals: 0 = loop counter, 1 = ctx, 2 = acc
        c.new_object(ctx_cls).store(1);
        for (f, &(base, sub)) in fams.iter().enumerate() {
            let f = f as u16;
            c.load(1).new_object(base).put_field(2 * f);
            c.load(1).new_object(sub).put_field(2 * f + 1);
        }
        let hot_repeat = spec.hot_repeat.max(1);
        for phase in &phase_tier_mids {
            c.counted_loop(0, iters_per_phase as i64, |c| {
                for (t, tier_mids) in phase.iter().enumerate() {
                    if tier_mids.is_empty() {
                        continue;
                    }
                    let mask = (1i64 << t) - 1;
                    let skip = c.label();
                    if mask > 0 {
                        c.load(0).const_(mask).band().jump_if_non_zero(skip);
                    }
                    let emit_calls = |c: &mut CodeBuilder<'_>| {
                        for &mid in tier_mids {
                            c.load(1).load(0).call(mid);
                            c.load(2).add().store(2);
                        }
                    };
                    if t == 0 && hot_repeat > 1 {
                        // Re-execute the hottest tier through an inner
                        // loop so its call *sites* (and thus edges) gain
                        // weight without multiplying static sites.
                        c.counted_loop(3, i64::from(hot_repeat), emit_calls);
                    } else {
                        emit_calls(c);
                    }
                    c.bind(skip);
                }
            });
        }
        c.load(2).ret();
    })?;
    b.set_entry(main);
    b.build()
}

#[derive(Debug, Clone, Copy)]
enum SitePlan {
    Direct(MethodId),
    Chain(MethodId),
    Virtual(u32),
}

/// Emits `n` work units (load/const/op/store quads) on `slot`.
fn emit_work_units(c: &mut CodeBuilder<'_>, n: u32, slot: u16, seed: i64) {
    for u in 0..n {
        let k = seed.wrapping_mul(i64::from(u) + 3) & 0xffff;
        c.load(slot);
        c.const_(k | 1);
        match u % 4 {
            0 => c.add(),
            1 => c.bxor(),
            2 => c.mul(),
            _ => c.sub(),
        };
        c.store(slot);
    }
}

/// Emits the receiver-selection diamond for a virtual site on family
/// `fam`: the dominant (sub) instance unless `i & mask == 0`.
fn emit_receiver_diamond(c: &mut CodeBuilder<'_>, fam: u32, mask: i64) {
    let fam = fam as u16;
    if mask <= 0 {
        // Monomorphic in practice: always the dominant receiver.
        c.load(0).get_field(2 * fam + 1);
        return;
    }
    let rare = c.label();
    let done = c.label();
    c.load(1).const_(mask).band().jump_if_zero(rare);
    c.load(0).get_field(2 * fam + 1).jump(done);
    c.bind(rare).load(0).get_field(2 * fam);
    c.bind(done);
}

/// Body of a non-trivial virtual leaf: field traffic plus arithmetic,
/// optionally wrapped in a numeric inner loop.
fn emit_virtual_leaf_body(c: &mut CodeBuilder<'_>, spec: &WorkloadSpec, rng: &mut SmallRng) {
    // locals: 0 = receiver, 1 = acc, 2 = loop counter
    let work = rng.gen_range(spec.leaf_work.0..=spec.leaf_work.1);
    let seed = rng.gen_range(1..1000);
    c.load(0).get_field(0).store(1);
    if spec.leaf_loop > 0 {
        c.counted_loop(2, i64::from(spec.leaf_loop), |c| {
            emit_work_units(c, work, 1, seed);
        });
    } else {
        emit_work_units(c, work, 1, seed);
    }
    c.load(0).load(1).put_field(1);
    c.load(1).ret();
}

/// Body of a direct leaf: arithmetic on the integer argument, wrapped in
/// the same numeric inner loop as virtual leaves when the spec asks for
/// one (compress/mpegaudio-style kernels).
fn emit_direct_leaf_body(c: &mut CodeBuilder<'_>, spec: &WorkloadSpec, rng: &mut SmallRng) {
    // locals: 0 = arg, 1 = acc, 2 = loop counter
    let work = rng.gen_range(spec.leaf_work.0..=spec.leaf_work.1);
    let seed = rng.gen_range(1..1000);
    c.load(0).store(1);
    if spec.leaf_loop > 0 {
        c.counted_loop(2, i64::from(spec.leaf_loop), |c| {
            emit_work_units(c, work, 1, seed);
        });
    } else {
        emit_work_units(c, work, 1, seed);
    }
    c.load(1).ret();
}

/// Per-tier population growth factor. Tier `t` runs every `2^t`
/// iterations and holds `MID_GROWTH^t` more methods than tier 0, so each
/// tier's *total* runtime weight decays by `MID_GROWTH/2 = 0.7` per tier:
/// most methods are cold, and cold methods are collectively cold too (the
/// 90/10 rule real profiles follow).
const MID_GROWTH: f64 = 1.2;

/// Assigns index `within` (of `per_phase` mids) to a tier such that tier
/// `t` holds a share proportional to `MID_GROWTH^t`.
fn share_tier(within: u32, per_phase: u32, tiers: u32) -> u32 {
    let total_shares: f64 = (0..tiers).map(|t| MID_GROWTH.powi(t as i32)).sum();
    let position = f64::from(within) / f64::from(per_phase.max(1)) * total_shares;
    let mut cumulative = 0.0;
    for t in 0..tiers {
        cumulative += MID_GROWTH.powi(t as i32);
        if position < cumulative {
            return t;
        }
    }
    tiers - 1
}

/// Derives the per-phase iteration count from the target duration and a
/// coarse per-iteration cost estimate.
fn derive_iterations(
    spec: &WorkloadSpec,
    phase_tier_mids: &[Vec<Vec<MethodId>>],
    num_mids: u32,
    fanout: u32,
) -> u64 {
    let leaf_avg = f64::from(spec.leaf_work.0 + spec.leaf_work.1) / 2.0;
    let leaf_cost = est::CALL
        + leaf_avg * est::WORK_UNIT * f64::from(spec.leaf_loop.max(1))
        + 7.0 * f64::from(spec.leaf_loop) // inner-loop bookkeeping
        + 8.0;
    let io_per_mid = if num_mids > 0 {
        f64::from(spec.io_sites) / f64::from(num_mids) * f64::from(spec.io_cost) * 100.0
    } else {
        0.0
    };
    let mid_base = f64::from(fanout)
        * (f64::from(spec.work_per_call) * est::WORK_UNIT
            + spec.polymorphic_fraction * est::VCALL
            + (1.0 - spec.polymorphic_fraction) * est::CALL
            + leaf_cost)
        + io_per_mid;
    let chain = spec.chain_fraction.clamp(0.0, 0.9);
    let mid_cost = mid_base / (1.0 - chain);

    // Average per-iteration cost of one phase: tier t fires every 2^t
    // iterations.
    let phases = phase_tier_mids.len() as f64;
    let mut per_iter = 0.0;
    for phase in phase_tier_mids {
        for (t, tier_mids) in phase.iter().enumerate() {
            let repeat = if t == 0 {
                f64::from(spec.hot_repeat.max(1))
            } else {
                1.0
            };
            per_iter += repeat * tier_mids.len() as f64 * mid_cost / f64::from(1u32 << t);
        }
    }
    per_iter /= phases; // each iteration runs one phase's dispatch
    per_iter += 30.0; // loop bookkeeping

    // Measured calibration: the analytic estimate above undershoots the
    // interpreter's actual per-iteration cost (tier dispatch, receiver
    // diamonds, accumulator folds) by a near-constant factor across the
    // suite.
    per_iter *= 0.70;

    let total_iters = (spec.target_seconds * est::CLOCK_HZ / per_iter.max(1.0)).ceil() as u64;
    let min_iters = 1u64 << spec.tiers.max(1); // every tier must fire
    (total_iters / phase_tier_mids.len() as u64).max(min_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            seed: 7,
            num_methods: 60,
            families: 4,
            fanout: 3,
            polymorphic_fraction: 0.5,
            receiver_mask: 7,
            work_per_call: 5,
            leaf_loop: 0,
            leaf_work: (2, 6),
            tiers: 3,
            hot_repeat: 2,
            phases: 2,
            chain_fraction: 0.3,
            io_sites: 1,
            io_cost: 5,
            target_seconds: 0.02,
        }
    }

    #[test]
    fn generates_requested_method_count() {
        let p = build(&small_spec()).unwrap();
        assert_eq!(p.num_methods() as u32, small_spec().num_methods);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build(&small_spec()).unwrap();
        let b = build(&small_spec()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = small_spec();
        spec.seed = 8;
        let a = build(&small_spec()).unwrap();
        let b = build(&spec).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn share_tier_is_monotonic_and_bounded() {
        for within in 0..100 {
            let t = share_tier(within, 100, 4);
            assert!(t < 4);
            if within > 0 {
                assert!(t >= share_tier(within - 1, 100, 4));
            }
        }
        // Hot tier much smaller than cold tier.
        let hot = (0..100).filter(|&w| share_tier(w, 100, 4) == 0).count();
        let cold = (0..100).filter(|&w| share_tier(w, 100, 4) == 3).count();
        assert!(hot < cold);
    }

    #[test]
    fn scaled_spec_runs_longer() {
        let spec = small_spec();
        let base = derive_iterations(&spec, &[vec![vec![MethodId::new(0)]]], 1, 2);
        let big = derive_iterations(&spec.scaled(4.0), &[vec![vec![MethodId::new(0)]]], 1, 2);
        assert!(big > base * 2);
    }
}
