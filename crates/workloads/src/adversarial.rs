//! Adversarial programs demonstrating the sampling pathologies of §3.3.

use cbs_bytecode::{BuildError, MethodId, Program, ProgramBuilder};

/// Handles to the interesting methods of the Figure 1 program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure1Program {
    /// The generated program.
    pub call_1: MethodId,
    /// The second short method (`call_2`).
    pub call_2: MethodId,
    /// The loop method `M`.
    pub m: MethodId,
}

/// Builds the paper's Figure 1 program: a loop whose body is a long
/// sequence of non-call instructions (`getfield`/`putfield` traffic)
/// followed by **two** calls to short methods.
///
/// Timer-based sampling almost always lands in the non-call region, so
/// the first yieldpoint it observes is `call_1`'s prologue — `call_1`
/// looks hot and `call_2` looks cold, although both execute exactly
/// `iterations` times. CBS's stride decorrelates the sample from the
/// timer and recovers the 50/50 truth.
///
/// # Errors
///
/// Never fails for valid `non_call_length`/`iterations`; the `Result`
/// propagates the builder's verification step.
pub fn figure1(
    non_call_length: u32,
    iterations: i64,
) -> Result<(Program, Figure1Program), BuildError> {
    let mut b = ProgramBuilder::new();
    let cls = b.add_class("Fig1", 2);
    let call_1 = b.function("call_1", cls, 1, 0, |c| {
        c.load(0).const_(1).add().ret();
    })?;
    let call_2 = b.function("call_2", cls, 1, 0, |c| {
        c.load(0).const_(2).add().ret();
    })?;
    let m = b.declare("M", cls, 1);
    b.define(m, 2, |c| {
        // locals: 0 = receiver-ish object, 1 = loop counter, 2 = acc
        c.counted_loop(1, iterations, |c| {
            // Long sequence of non-calls (the paper uses
            // getfield/putfield; the choice is arbitrary).
            for i in 0..non_call_length {
                if i % 2 == 0 {
                    c.load(0).get_field(0).store(2);
                } else {
                    c.load(0).load(2).put_field(0);
                }
            }
            // Two short calls.
            c.load(2).call(call_1).store(2);
            c.load(2).call(call_2).store(2);
        });
        c.load(2).ret();
    })?;
    let main = b.function("main", cls, 0, 0, |c| {
        c.new_object(cls).call(m).ret();
    })?;
    b.set_entry(main);
    let program = b.build()?;
    Ok((program, Figure1Program { call_1, call_2, m }))
}

/// A variant where the non-call region is a single long-latency I/O
/// operation — "any time-consuming operation, such as an I/O operation,
/// can create similar inaccuracies".
///
/// # Errors
///
/// Propagates the builder's verification step.
pub fn io_variant(io_cost: u32, iterations: i64) -> Result<(Program, Figure1Program), BuildError> {
    let mut b = ProgramBuilder::new();
    let cls = b.add_class("IoFig", 1);
    let call_1 = b.function("call_1", cls, 1, 0, |c| {
        c.load(0).const_(1).add().ret();
    })?;
    let call_2 = b.function("call_2", cls, 1, 0, |c| {
        c.load(0).const_(2).add().ret();
    })?;
    let m = b.declare("M", cls, 1);
    b.define(m, 2, |c| {
        c.counted_loop(1, iterations, |c| {
            c.io(io_cost).pop();
            c.load(2).call(call_1).store(2);
            c.load(2).call(call_2).store(2);
        });
        c.load(2).ret();
    })?;
    let main = b.function("main", cls, 0, 0, |c| {
        c.new_object(cls).call(m).ret();
    })?;
    b.set_entry(main);
    let program = b.build()?;
    Ok((program, Figure1Program { call_1, call_2, m }))
}

/// Handles for the phase-shift program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseShiftProgram {
    /// Callee invoked from both phases.
    pub shared: MethodId,
    /// Phase-A caller.
    pub caller_a: MethodId,
    /// Phase-B caller.
    pub caller_b: MethodId,
}

/// A two-phase program defeating burst profilers: `shared` is called
/// `warm_calls` times from `caller_a` (enough to trigger a warmup-based
/// listener and consume its entire burst), then `hot_calls` times from
/// `caller_b`. A burst profiler attributes ~everything to `caller_a`;
/// continuous sampling attributes weight ∝ true frequencies.
///
/// # Errors
///
/// Propagates the builder's verification step.
pub fn phase_shift(
    warm_calls: i64,
    hot_calls: i64,
) -> Result<(Program, PhaseShiftProgram), BuildError> {
    let mut b = ProgramBuilder::new();
    let cls = b.add_class("Phase", 0);
    let shared = b.function("shared", cls, 1, 0, |c| {
        c.load(0).const_(3).mul().ret();
    })?;
    let caller_a = b.function("caller_a", cls, 1, 0, |c| {
        c.load(0).call(shared).ret();
    })?;
    let caller_b = b.function("caller_b", cls, 1, 0, |c| {
        c.load(0).call(shared).ret();
    })?;
    let main = b.function("main", cls, 0, 2, |c| {
        c.counted_loop(0, warm_calls, |c| {
            c.load(1).call(caller_a).store(1);
        });
        c.counted_loop(0, hot_calls, |c| {
            c.load(1).call(caller_b).store(1);
        });
        c.load(1).ret();
    })?;
    b.set_entry(main);
    let program = b.build()?;
    Ok((
        program,
        PhaseShiftProgram {
            shared,
            caller_a,
            caller_b,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_builds_and_has_expected_shape() {
        let (p, handles) = figure1(40, 100).unwrap();
        let m = p.method(handles.m);
        assert!(m.has_loop());
        let calls: Vec<_> = m.call_instructions().collect();
        assert_eq!(calls.len(), 2, "exactly call_1 and call_2");
        // Non-call region dominates the body.
        assert!(m.len() > 80);
    }

    #[test]
    fn io_variant_contains_io() {
        let (p, handles) = io_variant(100, 10).unwrap();
        let has_io = p
            .method(handles.m)
            .code()
            .iter()
            .any(|op| matches!(op, cbs_bytecode::Op::Io(_)));
        assert!(has_io);
    }

    #[test]
    fn phase_shift_orders_phases() {
        let (p, h) = phase_shift(100, 10_000).unwrap();
        // caller_a appears before caller_b in main.
        let main = p.method(p.entry());
        let order: Vec<MethodId> = main
            .call_instructions()
            .filter_map(|(_, _, op)| match op {
                cbs_bytecode::Op::Call { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        let a_pos = order.iter().position(|&m| m == h.caller_a).unwrap();
        let b_pos = order.iter().position(|&m| m == h.caller_b).unwrap();
        assert!(a_pos < b_pos);
    }
}

/// Handles for the stride-aliasing program.
#[derive(Debug, Clone)]
pub struct StrideAliasingProgram {
    /// The `k` short methods called once each per iteration, in order.
    pub callees: Vec<MethodId>,
}

/// A loop calling `k` distinct short methods once each per iteration —
/// the adversary §4 warns about: "For any fixed values of the parameters
/// STRIDE and SAMPLES_PER_TIMER_INTERRUPT, an adversary program can be
/// constructed for which our technique will collect an inaccurate
/// profile."
///
/// When the number of invocation events per iteration is a multiple of
/// the stride, a `Fixed` skip policy samples the same position in the
/// pattern forever; the paper's randomized/round-robin initial skip
/// breaks the alignment.
///
/// # Errors
///
/// Propagates the builder's verification step.
pub fn stride_aliasing(
    k: u32,
    iterations: i64,
    pad_nops: u32,
) -> Result<(Program, StrideAliasingProgram), BuildError> {
    assert!(k >= 1, "need at least one callee");
    let mut b = ProgramBuilder::new();
    let cls = b.add_class("Alias", 0);
    let callees: Vec<MethodId> = (0..k)
        .map(|i| {
            b.function(format!("short_{i}"), cls, 1, 0, |c| {
                c.load(0).const_(i64::from(i) + 1).add().ret();
            })
        })
        .collect::<Result<_, _>>()?;
    let main = b.declare("main", cls, 0);
    b.define(main, 2, |c| {
        c.counted_loop(0, iterations, |c| {
            for &callee in &callees {
                c.load(1).call(callee).store(1);
            }
            // Padding lets callers tune the iteration cost to divide the
            // timer period exactly, pinning every window to the same
            // phase of the call pattern (the worst case for Fixed).
            c.nops(pad_nops as usize);
        });
        c.load(1).ret();
    })?;
    b.set_entry(main);
    let program = b.build()?;
    Ok((program, StrideAliasingProgram { callees }))
}

#[cfg(test)]
mod aliasing_tests {
    use super::*;

    #[test]
    fn stride_aliasing_builds_with_padding() {
        let (p, h) = stride_aliasing(3, 100, 33).unwrap();
        assert_eq!(h.callees.len(), 3);
        let main = p.method(p.entry());
        assert!(main.has_loop());
        let nops = main
            .code()
            .iter()
            .filter(|op| matches!(op, cbs_bytecode::Op::Nop))
            .count();
        assert_eq!(nops, 33);
    }

    #[test]
    #[should_panic(expected = "at least one callee")]
    fn zero_callees_rejected() {
        let _ = stride_aliasing(0, 10, 0);
    }
}
