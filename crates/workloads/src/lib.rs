//! # cbs-workloads
//!
//! Synthetic benchmark programs for the Arnold–Grove CGO'05 reproduction.
//!
//! The paper evaluates on SPECjvm98, SPECjbb2000, ipsixql, xerces, daikon,
//! kawa and soot; those inputs and programs are not reproducible here, so
//! this crate substitutes seeded synthetic programs whose *dynamic call
//! stream* has the published shape of each benchmark (method counts and
//! code volume from Table 1; qualitative character — loopy numeric
//! kernels, flat polymorphic compilers, phasey parsers — from the
//! benchmark descriptions). See `DESIGN.md` §2 for the substitution
//! argument.
//!
//! * [`Benchmark`] / [`InputSize`] — the 13-benchmark suite, small and
//!   large inputs;
//! * [`WorkloadSpec`] / [`generator::build`] — the parameterized program
//!   generator, for custom workloads;
//! * [`adversarial`] — the Figure 1 pathology, its I/O variant, and a
//!   phase-shift program that defeats burst profilers.
//!
//! ## Example
//!
//! ```
//! use cbs_workloads::{Benchmark, InputSize};
//!
//! # fn main() -> Result<(), cbs_bytecode::BuildError> {
//! let program = Benchmark::Compress.build(InputSize::Small)?;
//! assert_eq!(program.num_methods(), 243); // Table 1: "Meth exe"
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversarial;
mod benchmarks;
pub mod generator;
mod spec;

pub use benchmarks::{Benchmark, LARGE_SCALE};
pub use spec::{InputSize, WorkloadSpec};
