//! One-run, many-profilers measurement.

use cbs_bytecode::Program;
use cbs_dcg::{accuracy, DynamicCallGraph};
use cbs_profiler::{CallGraphProfiler, ExhaustiveProfiler, MultiProfiler};
use cbs_vm::{ExecReport, VmConfig, VmError};

/// One profiler's results from a measured run.
#[derive(Debug, Clone)]
pub struct ProfilerOutcome {
    /// Mechanism name (e.g. `"cbs(stride=3,samples=16)"`).
    pub name: String,
    /// The collected dynamic call graph.
    pub dcg: DynamicCallGraph,
    /// Simulated overhead as a percentage of base program cycles.
    pub overhead_pct: f64,
    /// Overlap with the exhaustive profile (0–100).
    pub accuracy: f64,
    /// Call-stack samples taken.
    pub samples: u64,
}

/// A measured run: the execution report, the perfect profile, and every
/// attached profiler's outcome.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Base execution report (profiler-independent).
    pub exec: ExecReport,
    /// The exhaustively counted (perfect) dynamic call graph.
    pub perfect: DynamicCallGraph,
    /// Per-profiler outcomes, in attachment order.
    pub outcomes: Vec<ProfilerOutcome>,
}

impl Measurement {
    /// Finds an outcome by profiler name.
    pub fn outcome(&self, name: &str) -> Option<&ProfilerOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

/// Runs `program` once under `vm_config` with all `profilers` attached
/// (plus a ground-truth exhaustive profiler), and scores each profiler's
/// accuracy and overhead.
///
/// Because profilers account for their own simulated overhead, attaching
/// many at once yields exactly the same per-profiler numbers as separate
/// runs — asserted by integration tests.
///
/// # Errors
///
/// Propagates any [`VmError`] trap from the program.
pub fn measure(
    program: &Program,
    vm_config: VmConfig,
    profilers: Vec<Box<dyn CallGraphProfiler>>,
) -> Result<Measurement, VmError> {
    let mut multi = MultiProfiler::new();
    let truth_idx = multi.attach(Box::new(ExhaustiveProfiler::new()));
    for p in profilers {
        multi.attach(p);
    }
    let exec = cbs_vm::Vm::new(program, vm_config).run(&mut multi)?;
    let mut inner = multi.into_inner();
    let mut truth = inner.remove(truth_idx);
    let perfect = truth.take_dcg();

    let outcomes = inner
        .iter_mut()
        .map(|p| {
            let dcg = p.take_dcg();
            ProfilerOutcome {
                name: p.name(),
                overhead_pct: 100.0 * p.overhead_cycles() as f64 / exec.cycles.max(1) as f64,
                accuracy: accuracy(&dcg, &perfect),
                samples: p.samples_taken(),
                dcg,
            }
        })
        .collect();

    Ok(Measurement {
        exec,
        perfect,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;
    use cbs_profiler::{CbsConfig, CounterBasedSampler, TimerSampler};

    fn looping_program() -> cbs_bytecode::Program {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 1, 0, |c| {
                c.load(0).const_(1).add().ret();
            })
            .unwrap();
        let g = b
            .function("g", cls, 1, 0, |c| {
                c.load(0).const_(2).mul().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 2, |c| {
                c.counted_loop(0, 100_000, |c| {
                    c.load(1).call(f).call(g).store(1);
                });
                c.load(1).ret();
            })
            .unwrap();
        b.set_entry(main);
        b.build().unwrap()
    }

    #[test]
    fn measure_scores_profilers_against_truth() {
        let p = looping_program();
        let m = measure(
            &p,
            VmConfig::default(),
            vec![
                Box::new(TimerSampler::new()),
                Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
            ],
        )
        .unwrap();
        assert_eq!(m.perfect.total_weight(), m.exec.calls as f64);
        assert_eq!(m.outcomes.len(), 2);
        let timer = m.outcome("timer").unwrap();
        let cbs = m.outcome("cbs(stride=3,samples=16)").unwrap();
        assert!(timer.samples > 0 && cbs.samples > 0);
        assert!(cbs.samples > timer.samples);
        for o in &m.outcomes {
            assert!(
                (0.0..=100.0).contains(&o.accuracy),
                "{}: {}",
                o.name,
                o.accuracy
            );
            assert!(o.overhead_pct >= 0.0);
        }
        // The two-edge 50/50 profile: CBS with many samples converges
        // close to truth.
        assert!(cbs.accuracy > 90.0, "cbs accuracy {}", cbs.accuracy);
    }

    #[test]
    fn missing_outcome_lookup_is_none() {
        let p = looping_program();
        let m = measure(&p, VmConfig::default(), vec![]).unwrap();
        assert!(m.outcome("nope").is_none());
        assert!(m.outcomes.is_empty());
    }
}
