//! Fleet-scale profile aggregation: many VMs, one merged call graph.
//!
//! The paper collects one profile per VM. This experiment simulates the
//! service deployment the `cbs-profiled` crate targets: `K` VMs run the
//! same benchmark under counter-based sampling with *decorrelated*
//! sampler configurations (different strides and timer seeds), each
//! streams its profile through the binary codec — one snapshot frame
//! followed by a delta frame, exactly what a periodic flusher emits —
//! into a [`ShardedAggregator`], and the merged fleet profile is scored
//! against the union of the exhaustive (perfect) profiles.
//!
//! Pooling decorrelated samples is a variance reduction, so the merged
//! profile's overlap should meet or beat the mean single-VM overlap —
//! asserted by the tier-1 tests and visible in the rendered table's
//! `gain` column.
//!
//! Determinism: VM cells run under [`run_cells`] (input-order results),
//! frames are ingested serially in VM order, and the aggregator merges
//! shards in index order, so the whole pipeline is bit-identical for any
//! `--jobs` value.

use super::ExperimentError;
use crate::parallel::{run_cells, Parallelism};
use crate::render::{f2, TextTable};
use cbs_dcg::{overlap, CallEdge, DynamicCallGraph};
use cbs_profiled::{
    serve, AggregatorConfig, DcgCodec, Fault, FaultCounts, FaultSchedule, NetConfig, ProfileClient,
    ResilientClient, RetryPolicy, ShardedAggregator,
};
use cbs_profiler::{CbsConfig, CounterBasedSampler};
use cbs_vm::VmConfig;
use cbs_workloads::{Benchmark, InputSize};
use std::sync::Arc;
use std::time::Duration;

/// Per-VM sampler strides; their pairwise co-primality decorrelates the
/// replicas' sample streams.
pub(super) const STRIDES: [u32; 4] = [3, 5, 7, 11];

/// Number of simulated VMs per benchmark.
pub const FLEET_SIZE: usize = STRIDES.len();

/// One benchmark's fleet-aggregation outcome.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// VMs in this benchmark's fleet.
    pub vms: usize,
    /// Edges in the merged fleet profile.
    pub merged_edges: usize,
    /// Total wire bytes across all snapshot and delta frames.
    pub wire_bytes: usize,
    /// Mean per-VM overlap with that VM's own exhaustive profile (0–100).
    pub mean_single: f64,
    /// Merged-profile overlap with the union of exhaustive profiles
    /// (0–100).
    pub fleet: f64,
}

impl FleetRow {
    /// Percentage-point gain of the merged profile over the mean
    /// single-VM profile.
    pub fn gain(&self) -> f64 {
        self.fleet - self.mean_single
    }
}

/// The fleet-aggregation experiment report.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<FleetRow>,
    /// Mean of the per-benchmark `mean_single` column.
    pub mean_single: f64,
    /// Mean of the per-benchmark `fleet` column.
    pub mean_fleet: f64,
}

impl Fleet {
    /// Renders the report table with a trailing `MEAN` row.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            format!(
                "Fleet aggregation: {FLEET_SIZE} CBS VMs per benchmark, \
                 snapshot+delta frames through the sharded aggregator"
            ),
            &[
                "Benchmark",
                "VMs",
                "Edges",
                "Wire (B)",
                "Single (%)",
                "Fleet (%)",
                "Gain (pp)",
            ],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                r.vms.to_string(),
                r.merged_edges.to_string(),
                r.wire_bytes.to_string(),
                f2(r.mean_single),
                f2(r.fleet),
                f2(r.gain()),
            ]);
        }
        t.row([
            "MEAN".to_owned(),
            String::new(),
            String::new(),
            String::new(),
            f2(self.mean_single),
            f2(self.mean_fleet),
            f2(self.mean_fleet - self.mean_single),
        ]);
        t.to_string()
    }
}

/// One VM's contribution: its sampled profile and its ground truth.
struct VmProfile {
    sampled: DynamicCallGraph,
    perfect: DynamicCallGraph,
    single_overlap: f64,
}

/// Runs one VM replica of `bench` with a replica-specific stride and
/// timer seed.
fn run_replica(bench: Benchmark, replica: usize, scale: f64) -> Result<VmProfile, ExperimentError> {
    let spec = bench.spec(InputSize::Small).scaled(scale);
    let program = cbs_workloads::generator::build(&spec)?;
    let vm_config = VmConfig {
        // Decorrelate the replicas' timer phases; execution (and thus
        // the perfect profile) is unaffected.
        timer_seed: 0xF1EE7 + replica as u64,
        ..VmConfig::default()
    };
    let cbs = CounterBasedSampler::new(CbsConfig::new(STRIDES[replica % STRIDES.len()], 16));
    let m = crate::measure::measure(&program, vm_config, vec![Box::new(cbs)])?;
    let outcome = &m.outcomes[0];
    Ok(VmProfile {
        sampled: outcome.dcg.clone(),
        perfect: m.perfect,
        single_overlap: outcome.accuracy,
    })
}

/// Streams `graph` into `agg` the way a periodically-flushing VM would:
/// the first half of its edges as a snapshot frame, the remainder as a
/// delta frame produced by [`DynamicCallGraph::drain_delta`]. Returns
/// the wire bytes consumed.
fn stream_profile(graph: &DynamicCallGraph, agg: &ShardedAggregator) -> usize {
    let edges: Vec<_> = graph.iter().map(|(e, w)| (*e, w)).collect();
    let split = edges.len() / 2;
    let mut live = DynamicCallGraph::new();
    for &(e, w) in &edges[..split] {
        live.record(e, w);
    }
    let snapshot = DcgCodec::encode_snapshot(&live);
    live.drain_delta(); // mark everything flushed
    for &(e, w) in &edges[split..] {
        live.record(e, w);
    }
    let delta = DcgCodec::encode_delta(&live.drain_delta());
    let mut bytes = 0;
    for frame_bytes in [&snapshot, &delta] {
        bytes += frame_bytes.len();
        let frame = DcgCodec::decode(frame_bytes).expect("own encoding decodes");
        agg.ingest(&frame);
    }
    bytes
}

/// Runs the fleet-aggregation experiment serially.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn fleet(scale: f64) -> Result<Fleet, ExperimentError> {
    fleet_with(scale, Parallelism::SERIAL)
}

/// [`fleet`] with VM replicas sharded across `jobs` worker threads.
/// Output is bit-identical for any `jobs` value — see the module docs.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn fleet_with(scale: f64, jobs: Parallelism) -> Result<Fleet, ExperimentError> {
    let cells: Vec<(Benchmark, usize)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| (0..FLEET_SIZE).map(move |r| (b, r)))
        .collect();
    let profiles = run_cells(cells, jobs, |(bench, replica)| {
        run_replica(bench, replica, scale)
    })?;

    let mut rows = Vec::new();
    for (i, bench) in Benchmark::all().into_iter().enumerate() {
        let fleet = &profiles[i * FLEET_SIZE..(i + 1) * FLEET_SIZE];
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        let mut wire_bytes = 0;
        for vm in fleet {
            wire_bytes += stream_profile(&vm.sampled, &agg);
        }
        let merged = agg.merged_snapshot();
        let union = DynamicCallGraph::merge_all(fleet.iter().map(|vm| &vm.perfect));
        rows.push(FleetRow {
            benchmark: bench,
            vms: fleet.len(),
            merged_edges: merged.num_edges(),
            wire_bytes,
            mean_single: fleet.iter().map(|vm| vm.single_overlap).sum::<f64>() / fleet.len() as f64,
            fleet: overlap(&merged, &union),
        });
    }
    let n = rows.len() as f64;
    let mean_single = rows.iter().map(|r| r.mean_single).sum::<f64>() / n;
    let mean_fleet = rows.iter().map(|r| r.fleet).sum::<f64>() / n;
    Ok(Fleet {
        rows,
        mean_single,
        mean_fleet,
    })
}

/// One benchmark's outcome under the faulty-transport fleet run.
#[derive(Debug, Clone)]
pub struct FleetFaultsRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// VMs in this benchmark's fleet.
    pub vms: usize,
    /// Edges in the merged fleet profile pulled over the faulty link.
    pub merged_edges: usize,
    /// Fault decisions drawn (one per exchange, retries included).
    pub exchanges: usize,
    /// Exchanges the schedule faulted.
    pub faulted: usize,
    /// Failed attempts retried by the resilient clients.
    pub retries: usize,
    /// Connections re-established after a fault.
    pub reconnects: usize,
    /// Push batches acknowledged as already-applied duplicates.
    pub duplicates: usize,
    /// `OP_PULL_CHUNK` pages of the final snapshot pull.
    pub pull_pages: u32,
    /// Merged-profile overlap with the union of exhaustive profiles
    /// (0–100), measured on the *faulty* run's pulled snapshot.
    pub fleet: f64,
    /// Whether the faulty run's pulled snapshot is bit-identical to the
    /// fault-free run's (every weight and the running total).
    pub bit_identical: bool,
}

impl FleetFaultsRow {
    /// Fraction of exchanges faulted, 0–100.
    pub fn fault_pct(&self) -> f64 {
        if self.exchanges == 0 {
            0.0
        } else {
            100.0 * self.faulted as f64 / self.exchanges as f64
        }
    }
}

/// The faulty-transport fleet experiment report.
#[derive(Debug, Clone)]
pub struct FleetFaults {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<FleetFaultsRow>,
    /// Injection counts pooled over every schedule in the run.
    pub counts: FaultCounts,
    /// Whether every benchmark's faulty pull was bit-identical to its
    /// fault-free pull.
    pub all_bit_identical: bool,
}

impl FleetFaults {
    /// Renders the report table with a fault-summary footer.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            format!(
                "Fleet aggregation under injected transport faults: \
                 {FLEET_SIZE} CBS VMs per benchmark through the resilient \
                 client (exactly-once pushes, chunked pulls)"
            ),
            &[
                "Benchmark",
                "VMs",
                "Edges",
                "Exch",
                "Fault (%)",
                "Retry",
                "Reconn",
                "Dup",
                "Pages",
                "Fleet (%)",
                "Bit-id",
            ],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                r.vms.to_string(),
                r.merged_edges.to_string(),
                r.exchanges.to_string(),
                f2(r.fault_pct()),
                r.retries.to_string(),
                r.reconnects.to_string(),
                r.duplicates.to_string(),
                r.pull_pages.to_string(),
                f2(r.fleet),
                if r.bit_identical { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        let c = &self.counts;
        format!(
            "{}faults injected: {} of {} exchanges ({}) — drops {}, stale replies {}, \
             truncations {}, resets {}, busy refusals {}\n\
             pooled profiles bit-identical to fault-free runs: {}\n",
            t,
            c.faulted(),
            c.total(),
            f2(100.0 * c.faulted() as f64 / c.total().max(1) as f64),
            c.drops,
            c.delays,
            c.truncations,
            c.resets,
            c.busies,
            if self.all_bit_identical { "yes" } else { "NO" },
        )
    }
}

pub(super) fn transport(e: impl std::fmt::Display) -> ExperimentError {
    ExperimentError::Transport(e.to_string())
}

/// Deterministic per-(benchmark, vm) seed derivation.
fn stream_seed(seed: u64, bench: usize, vm: usize) -> u64 {
    seed ^ (bench as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (vm as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Bitwise graph comparison: same edges, same weight bits, same total
/// bits (stricter than `==`, which compares by value).
fn bits_identical(a: &DynamicCallGraph, b: &DynamicCallGraph) -> bool {
    a.num_edges() == b.num_edges()
        && a.total_weight().to_bits() == b.total_weight().to_bits()
        && a.iter()
            .zip(b.iter())
            .all(|((ea, wa), (eb, wb))| ea == eb && wa.to_bits() == wb.to_bits())
}

/// Each VM's profile cut into delta batches small enough that every
/// push frame fits the reduced fault-run frame limit.
fn delta_batches(vm: &DynamicCallGraph) -> Vec<Vec<(CallEdge, f64)>> {
    let all: Vec<(CallEdge, f64)> = vm.iter().map(|(e, w)| (*e, w)).collect();
    all.chunks(64).map(<[_]>::to_vec).collect()
}

/// [`fleet_faults_with`] run serially.
///
/// # Errors
///
/// Propagates generation, VM, or unrecoverable transport failures.
pub fn fleet_faults(scale: f64, seed: u64) -> Result<FleetFaults, ExperimentError> {
    fleet_faults_with(scale, Parallelism::SERIAL, seed)
}

/// The fleet experiment over a *faulty* transport: every VM streams its
/// profile through the resilient client while a seeded schedule drops,
/// delays, truncates, and resets roughly a quarter of all exchanges
/// (plus one scripted busy refusal per benchmark), and the final
/// snapshot is pulled in pages over the same faulty link. For each
/// benchmark the same batches are also delivered over a clean
/// connection; the faulty pull must reproduce that profile
/// **bit-identically** — the retry/requeue/exactly-once machinery may
/// cost retries, never weight.
///
/// Deterministic for a fixed `seed` and any `jobs` value: fault
/// schedules and backoff jitter are seeded, injected timeouts return
/// immediately, and backoff sleeps are recorded rather than slept.
///
/// # Errors
///
/// Propagates generation, VM, or unrecoverable transport failures.
pub fn fleet_faults_with(
    scale: f64,
    jobs: Parallelism,
    seed: u64,
) -> Result<FleetFaults, ExperimentError> {
    const FAULT_RATE: f64 = 0.25;
    // A reduced frame limit so paged pulls actually page.
    let config = NetConfig {
        max_frame_bytes: 2048,
        ..NetConfig::default()
    };
    let push_policy = RetryPolicy {
        max_attempts: 6,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        seed,
        max_outbox_batches: 8,
    };
    // Pull attempts span many page exchanges, each of which can fault,
    // so the pull budget is much larger (attempts are cheap: injected
    // timeouts return immediately).
    let pull_policy = RetryPolicy {
        max_attempts: 200,
        ..push_policy
    };

    let cells: Vec<(Benchmark, usize)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| (0..FLEET_SIZE).map(move |r| (b, r)))
        .collect();
    let profiles = run_cells(cells, jobs, |(bench, replica)| {
        run_replica(bench, replica, scale)
    })?;

    let mut rows = Vec::new();
    let mut counts = FaultCounts::default();
    let mut all_bit_identical = true;
    for (i, bench) in Benchmark::all().into_iter().enumerate() {
        let fleet_vms = &profiles[i * FLEET_SIZE..(i + 1) * FLEET_SIZE];
        let batches: Vec<Vec<Vec<(CallEdge, f64)>>> = fleet_vms
            .iter()
            .map(|vm| delta_batches(&vm.sampled))
            .collect();

        // Fault-free reference: the same batches over a clean link.
        let clean_server = serve(
            "127.0.0.1:0",
            Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4))),
            config,
        )
        .map_err(transport)?;
        let mut clean = ProfileClient::connect(clean_server.addr(), config).map_err(transport)?;
        for vm_batches in &batches {
            for batch in vm_batches {
                clean.push_delta(batch).map_err(transport)?;
            }
        }
        let (clean_pulled, _) = clean.pull_chunked_counted().map_err(transport)?;
        clean_server.shutdown();

        // Faulty run: same batches, hostile schedule, one resilient
        // client per VM (schedules persist across its reconnects).
        let faulty_server = serve(
            "127.0.0.1:0",
            Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4))),
            config,
        )
        .map_err(transport)?;
        let addr = faulty_server.addr().to_string();
        let mut schedules = Vec::new();
        let (mut retries, mut reconnects, mut duplicates) = (0, 0, 0);
        for (v, vm_batches) in batches.iter().enumerate() {
            let schedule = FaultSchedule::seeded(stream_seed(seed, i, v), FAULT_RATE);
            let schedule = if v == 0 {
                // Guarantee at least one server-busy refusal per fleet.
                schedule.with_script([Fault::Busy])
            } else {
                schedule
            };
            let schedule = schedule.shared();
            schedules.push(Arc::clone(&schedule));
            let mut client = ResilientClient::connect_faulty(
                addr.clone(),
                config,
                RetryPolicy {
                    seed: stream_seed(seed, i, v).rotate_left(17),
                    ..push_policy
                },
                v as u64 + 1,
                schedule,
            )
            .with_sleep(Box::new(|_| {}));
            for batch in vm_batches {
                // A failed push leaves its batch requeued in the
                // outbox; later pushes and the final flush retry it.
                let _ = client.push_delta(batch.clone());
            }
            let mut flushes = 0;
            while client.outbox_len() > 0 {
                flushes += 1;
                if flushes > 100 {
                    client.flush().map_err(transport)?;
                } else {
                    let _ = client.flush();
                }
            }
            let s = client.stats();
            retries += s.retries;
            reconnects += s.reconnects;
            duplicates += s.duplicates;
        }
        let pull_schedule = FaultSchedule::seeded(stream_seed(seed, i, 0xFF), FAULT_RATE).shared();
        schedules.push(Arc::clone(&pull_schedule));
        let mut puller =
            ResilientClient::connect_faulty(addr, config, pull_policy, 0xFFFF, pull_schedule)
                .with_sleep(Box::new(|_| {}));
        let (faulty_pulled, pull_pages) = puller.pull_counted().map_err(transport)?;
        let s = puller.stats();
        retries += s.retries;
        reconnects += s.reconnects;
        faulty_server.shutdown();

        let mut bench_counts = FaultCounts::default();
        for schedule in &schedules {
            let c = schedule.lock().expect("schedule lock").counts();
            bench_counts.clean += c.clean;
            bench_counts.drops += c.drops;
            bench_counts.delays += c.delays;
            bench_counts.truncations += c.truncations;
            bench_counts.resets += c.resets;
            bench_counts.busies += c.busies;
        }
        counts.clean += bench_counts.clean;
        counts.drops += bench_counts.drops;
        counts.delays += bench_counts.delays;
        counts.truncations += bench_counts.truncations;
        counts.resets += bench_counts.resets;
        counts.busies += bench_counts.busies;

        let bit_identical = bits_identical(&faulty_pulled, &clean_pulled);
        all_bit_identical &= bit_identical;
        let union = DynamicCallGraph::merge_all(fleet_vms.iter().map(|vm| &vm.perfect));
        rows.push(FleetFaultsRow {
            benchmark: bench,
            vms: fleet_vms.len(),
            merged_edges: faulty_pulled.num_edges(),
            exchanges: bench_counts.total(),
            faulted: bench_counts.faulted(),
            retries,
            reconnects,
            duplicates,
            pull_pages,
            fleet: overlap(&faulty_pulled, &union),
            bit_identical,
        });
    }
    Ok(FleetFaults {
        rows,
        counts,
        all_bit_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_profiles_meet_or_beat_single_vms() {
        let f = fleet(0.02).unwrap();
        assert_eq!(f.rows.len(), 13);
        for r in &f.rows {
            assert_eq!(r.vms, FLEET_SIZE);
            assert!(r.merged_edges > 0, "{}", r.benchmark);
            assert!(r.wire_bytes > 0);
            assert!((0.0..=100.0).contains(&r.mean_single));
            assert!((0.0..=100.0).contains(&r.fleet));
        }
        // Pooling decorrelated samples is a variance reduction: the
        // fleet profile must beat the mean single-VM profile on average,
        // and must not lose on any individual benchmark by more than
        // sampling noise.
        assert!(
            f.mean_fleet >= f.mean_single,
            "fleet {} vs single {}",
            f.mean_fleet,
            f.mean_single
        );
        for r in &f.rows {
            assert!(
                r.gain() > -2.0,
                "{}: fleet {} far below single {}",
                r.benchmark,
                r.fleet,
                r.mean_single
            );
        }
        let text = f.render();
        assert!(text.contains("MEAN"));
        assert!(text.contains("Gain"));
    }

    #[test]
    fn faulty_transport_pools_bit_identical_profiles() {
        let f = fleet_faults(0.01, 0xCB5).unwrap();
        assert_eq!(f.rows.len(), 13);
        assert!(
            f.all_bit_identical,
            "a faulted run lost or double-counted weight:\n{}",
            f.render()
        );
        for r in &f.rows {
            assert!(r.bit_identical, "{}", r.benchmark);
            assert!(r.merged_edges > 0, "{}", r.benchmark);
            assert!(r.pull_pages >= 1);
            assert!((0.0..=100.0).contains(&r.fleet));
        }
        // The schedule really was hostile: >= 20% of all exchanges
        // faulted, every fault kind occurred, and at least one busy
        // refusal per benchmark was scripted.
        let rate = f.counts.faulted() as f64 / f.counts.total() as f64;
        assert!(
            rate >= 0.20,
            "observed fault rate {rate:.3}: {:?}",
            f.counts
        );
        assert!(f.counts.drops > 0);
        assert!(f.counts.delays > 0);
        assert!(f.counts.truncations > 0);
        assert!(f.counts.resets > 0);
        assert!(f.counts.busies >= f.rows.len());
        // Faults forced real recovery work.
        assert!(f.rows.iter().map(|r| r.retries).sum::<usize>() > 0);
        assert!(f.rows.iter().map(|r| r.reconnects).sum::<usize>() > 0);
        let text = f.render();
        assert!(
            text.contains("bit-identical to fault-free runs: yes"),
            "{text}"
        );

        // Same seed, same report — the whole faulty pipeline is
        // deterministic (seeded schedules, instant injected timeouts,
        // recorded backoff sleeps).
        let again = fleet_faults(0.01, 0xCB5).unwrap();
        assert_eq!(again.render(), text);
    }

    #[test]
    fn fleet_is_bit_identical_for_any_job_count() {
        let serial = fleet_with(0.01, Parallelism::SERIAL).unwrap();
        for jobs in [2, 5] {
            let par = fleet_with(0.01, Parallelism::jobs(jobs)).unwrap();
            assert_eq!(par.render(), serial.render(), "jobs={jobs}");
            for (a, b) in par.rows.iter().zip(&serial.rows) {
                assert_eq!(a.fleet.to_bits(), b.fleet.to_bits(), "{}", a.benchmark);
                assert_eq!(a.mean_single.to_bits(), b.mean_single.to_bits());
                assert_eq!(a.wire_bytes, b.wire_bytes);
            }
        }
    }
}
