//! Fleet-scale profile aggregation: many VMs, one merged call graph.
//!
//! The paper collects one profile per VM. This experiment simulates the
//! service deployment the `cbs-profiled` crate targets: `K` VMs run the
//! same benchmark under counter-based sampling with *decorrelated*
//! sampler configurations (different strides and timer seeds), each
//! streams its profile through the binary codec — one snapshot frame
//! followed by a delta frame, exactly what a periodic flusher emits —
//! into a [`ShardedAggregator`], and the merged fleet profile is scored
//! against the union of the exhaustive (perfect) profiles.
//!
//! Pooling decorrelated samples is a variance reduction, so the merged
//! profile's overlap should meet or beat the mean single-VM overlap —
//! asserted by the tier-1 tests and visible in the rendered table's
//! `gain` column.
//!
//! Determinism: VM cells run under [`run_cells`] (input-order results),
//! frames are ingested serially in VM order, and the aggregator merges
//! shards in index order, so the whole pipeline is bit-identical for any
//! `--jobs` value.

use super::ExperimentError;
use crate::parallel::{run_cells, Parallelism};
use crate::render::{f2, TextTable};
use cbs_dcg::{overlap, DynamicCallGraph};
use cbs_profiled::{AggregatorConfig, DcgCodec, ShardedAggregator};
use cbs_profiler::{CbsConfig, CounterBasedSampler};
use cbs_vm::VmConfig;
use cbs_workloads::{Benchmark, InputSize};

/// Per-VM sampler strides; their pairwise co-primality decorrelates the
/// replicas' sample streams.
const STRIDES: [u32; 4] = [3, 5, 7, 11];

/// Number of simulated VMs per benchmark.
pub const FLEET_SIZE: usize = STRIDES.len();

/// One benchmark's fleet-aggregation outcome.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// VMs in this benchmark's fleet.
    pub vms: usize,
    /// Edges in the merged fleet profile.
    pub merged_edges: usize,
    /// Total wire bytes across all snapshot and delta frames.
    pub wire_bytes: usize,
    /// Mean per-VM overlap with that VM's own exhaustive profile (0–100).
    pub mean_single: f64,
    /// Merged-profile overlap with the union of exhaustive profiles
    /// (0–100).
    pub fleet: f64,
}

impl FleetRow {
    /// Percentage-point gain of the merged profile over the mean
    /// single-VM profile.
    pub fn gain(&self) -> f64 {
        self.fleet - self.mean_single
    }
}

/// The fleet-aggregation experiment report.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<FleetRow>,
    /// Mean of the per-benchmark `mean_single` column.
    pub mean_single: f64,
    /// Mean of the per-benchmark `fleet` column.
    pub mean_fleet: f64,
}

impl Fleet {
    /// Renders the report table with a trailing `MEAN` row.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            format!(
                "Fleet aggregation: {FLEET_SIZE} CBS VMs per benchmark, \
                 snapshot+delta frames through the sharded aggregator"
            ),
            &[
                "Benchmark",
                "VMs",
                "Edges",
                "Wire (B)",
                "Single (%)",
                "Fleet (%)",
                "Gain (pp)",
            ],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                r.vms.to_string(),
                r.merged_edges.to_string(),
                r.wire_bytes.to_string(),
                f2(r.mean_single),
                f2(r.fleet),
                f2(r.gain()),
            ]);
        }
        t.row([
            "MEAN".to_owned(),
            String::new(),
            String::new(),
            String::new(),
            f2(self.mean_single),
            f2(self.mean_fleet),
            f2(self.mean_fleet - self.mean_single),
        ]);
        t.to_string()
    }
}

/// One VM's contribution: its sampled profile and its ground truth.
struct VmProfile {
    sampled: DynamicCallGraph,
    perfect: DynamicCallGraph,
    single_overlap: f64,
}

/// Runs one VM replica of `bench` with a replica-specific stride and
/// timer seed.
fn run_replica(bench: Benchmark, replica: usize, scale: f64) -> Result<VmProfile, ExperimentError> {
    let spec = bench.spec(InputSize::Small).scaled(scale);
    let program = cbs_workloads::generator::build(&spec)?;
    let vm_config = VmConfig {
        // Decorrelate the replicas' timer phases; execution (and thus
        // the perfect profile) is unaffected.
        timer_seed: 0xF1EE7 + replica as u64,
        ..VmConfig::default()
    };
    let cbs = CounterBasedSampler::new(CbsConfig::new(STRIDES[replica % STRIDES.len()], 16));
    let m = crate::measure::measure(&program, vm_config, vec![Box::new(cbs)])?;
    let outcome = &m.outcomes[0];
    Ok(VmProfile {
        sampled: outcome.dcg.clone(),
        perfect: m.perfect,
        single_overlap: outcome.accuracy,
    })
}

/// Streams `graph` into `agg` the way a periodically-flushing VM would:
/// the first half of its edges as a snapshot frame, the remainder as a
/// delta frame produced by [`DynamicCallGraph::drain_delta`]. Returns
/// the wire bytes consumed.
fn stream_profile(graph: &DynamicCallGraph, agg: &ShardedAggregator) -> usize {
    let edges: Vec<_> = graph.iter().map(|(e, w)| (*e, w)).collect();
    let split = edges.len() / 2;
    let mut live = DynamicCallGraph::new();
    for &(e, w) in &edges[..split] {
        live.record(e, w);
    }
    let snapshot = DcgCodec::encode_snapshot(&live);
    live.drain_delta(); // mark everything flushed
    for &(e, w) in &edges[split..] {
        live.record(e, w);
    }
    let delta = DcgCodec::encode_delta(&live.drain_delta());
    let mut bytes = 0;
    for frame_bytes in [&snapshot, &delta] {
        bytes += frame_bytes.len();
        let frame = DcgCodec::decode(frame_bytes).expect("own encoding decodes");
        agg.ingest(&frame);
    }
    bytes
}

/// Runs the fleet-aggregation experiment serially.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn fleet(scale: f64) -> Result<Fleet, ExperimentError> {
    fleet_with(scale, Parallelism::SERIAL)
}

/// [`fleet`] with VM replicas sharded across `jobs` worker threads.
/// Output is bit-identical for any `jobs` value — see the module docs.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn fleet_with(scale: f64, jobs: Parallelism) -> Result<Fleet, ExperimentError> {
    let cells: Vec<(Benchmark, usize)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| (0..FLEET_SIZE).map(move |r| (b, r)))
        .collect();
    let profiles = run_cells(cells, jobs, |(bench, replica)| {
        run_replica(bench, replica, scale)
    })?;

    let mut rows = Vec::new();
    for (i, bench) in Benchmark::all().into_iter().enumerate() {
        let fleet = &profiles[i * FLEET_SIZE..(i + 1) * FLEET_SIZE];
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        let mut wire_bytes = 0;
        for vm in fleet {
            wire_bytes += stream_profile(&vm.sampled, &agg);
        }
        let merged = agg.merged_snapshot();
        let union = DynamicCallGraph::merge_all(fleet.iter().map(|vm| &vm.perfect));
        rows.push(FleetRow {
            benchmark: bench,
            vms: fleet.len(),
            merged_edges: merged.num_edges(),
            wire_bytes,
            mean_single: fleet.iter().map(|vm| vm.single_overlap).sum::<f64>() / fleet.len() as f64,
            fleet: overlap(&merged, &union),
        });
    }
    let n = rows.len() as f64;
    let mean_single = rows.iter().map(|r| r.mean_single).sum::<f64>() / n;
    let mean_fleet = rows.iter().map(|r| r.fleet).sum::<f64>() / n;
    Ok(Fleet {
        rows,
        mean_single,
        mean_fleet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_profiles_meet_or_beat_single_vms() {
        let f = fleet(0.02).unwrap();
        assert_eq!(f.rows.len(), 13);
        for r in &f.rows {
            assert_eq!(r.vms, FLEET_SIZE);
            assert!(r.merged_edges > 0, "{}", r.benchmark);
            assert!(r.wire_bytes > 0);
            assert!((0.0..=100.0).contains(&r.mean_single));
            assert!((0.0..=100.0).contains(&r.fleet));
        }
        // Pooling decorrelated samples is a variance reduction: the
        // fleet profile must beat the mean single-VM profile on average,
        // and must not lose on any individual benchmark by more than
        // sampling noise.
        assert!(
            f.mean_fleet >= f.mean_single,
            "fleet {} vs single {}",
            f.mean_fleet,
            f.mean_single
        );
        for r in &f.rows {
            assert!(
                r.gain() > -2.0,
                "{}: fleet {} far below single {}",
                r.benchmark,
                r.fleet,
                r.mean_single
            );
        }
        let text = f.render();
        assert!(text.contains("MEAN"));
        assert!(text.contains("Gain"));
    }

    #[test]
    fn fleet_is_bit_identical_for_any_job_count() {
        let serial = fleet_with(0.01, Parallelism::SERIAL).unwrap();
        for jobs in [2, 5] {
            let par = fleet_with(0.01, Parallelism::jobs(jobs)).unwrap();
            assert_eq!(par.render(), serial.render(), "jobs={jobs}");
            for (a, b) in par.rows.iter().zip(&serial.rows) {
                assert_eq!(a.fleet.to_bits(), b.fleet.to_bits(), "{}", a.benchmark);
                assert_eq!(a.mean_single.to_bits(), b.mean_single.to_bits());
                assert_eq!(a.wire_bytes, b.wire_bytes);
            }
        }
    }
}
