//! Reproductions of every table and figure in the paper's evaluation.
//!
//! Each experiment is a function returning a data structure with a
//! `render()` method producing a paper-style text table. All experiments
//! take a `scale` factor on benchmark running time: `1.0` reproduces the
//! paper-scale runs (use the `repro` binary); tests use small scales.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 (benchmark characteristics) | [`table1`] |
//! | Table 2A/2B (overhead & accuracy grid) | [`table2`] |
//! | Table 3 (per-benchmark breakdown) | [`table3`] |
//! | Figure 1 (timer-sampling pathology) | [`figure1_demo`] |
//! | Figure 5 (inlining speedups) | [`figure5`] |
//! | §5.1 old-vs-new inliner | [`inliner_ablation`] |
//! | §3.1 exhaustive-counter cost | [`exhaustive_overhead`] |
//! | §3.2 burst-profiling hazard | [`patching_vs_cbs`] |
//! | Fleet aggregation (beyond the paper) | [`fleet`] |
//! | Fleet exploitation (beyond the paper) | [`fleet_optimize`] |

mod ablations;
mod figure1;
mod figure5;
mod fleet;
mod fleet_optimize;
mod table1;
mod table2;
mod table3;

pub use ablations::{
    context_sensitivity, context_sensitivity_with, exhaustive_overhead, exhaustive_overhead_with,
    frequency_sweep, hardware_vs_cbs, hardware_vs_cbs_with, inline_depth_ablation,
    inline_depth_ablation_with, inliner_ablation, inliner_ablation_with, patching_vs_cbs,
    patching_vs_cbs_with, AblationRow, ContextSensitivity, DepthAblation, ExhaustiveOverhead,
    FrequencySweep, HardwareComparison, InlinerAblation, PatchingComparison,
};
pub use figure1::{figure1_demo, Figure1Demo, Figure1Row};
pub use figure5::{figure5, figure5_with, Figure5, Figure5Row, FIGURE5_BENCHMARKS};
pub use fleet::{
    fleet, fleet_faults, fleet_faults_with, fleet_with, Fleet, FleetFaults, FleetFaultsRow,
    FleetRow, FLEET_SIZE,
};
pub use fleet_optimize::{fleet_optimize, fleet_optimize_with, FleetOptimize, FleetOptimizeRow};
pub use table1::{
    table1, table1_with, workload_shapes, workload_shapes_with, Table1, Table1Row, WorkloadShapes,
};
pub use table2::{table2, Table2, Table2Cell, Table2Options};
pub use table3::{table3, table3_with, Table3, Table3Row};

use cbs_bytecode::BuildError;
use cbs_vm::VmError;
use std::error::Error;
use std::fmt;

/// An experiment failure: workload generation, VM trap, or (for the
/// service-backed fleet experiments) a profile-transport failure that
/// outlived every retry.
#[derive(Debug)]
pub enum ExperimentError {
    /// Workload generation failed (generator bug).
    Build(BuildError),
    /// The VM trapped while running a workload.
    Vm(VmError),
    /// The profile service could not be reached or exhausted retries.
    Transport(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Build(e) => write!(f, "workload generation failed: {e}"),
            ExperimentError::Vm(e) => write!(f, "benchmark trapped: {e}"),
            ExperimentError::Transport(msg) => write!(f, "profile transport failed: {msg}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Build(e) => Some(e),
            ExperimentError::Vm(e) => Some(e),
            ExperimentError::Transport(_) => None,
        }
    }
}

impl From<BuildError> for ExperimentError {
    fn from(e: BuildError) -> Self {
        ExperimentError::Build(e)
    }
}

impl From<VmError> for ExperimentError {
    fn from(e: VmError) -> Self {
        ExperimentError::Vm(e)
    }
}
