//! Ablations and secondary claims from the paper's text.

use super::ExperimentError;
use crate::measure::measure;
use crate::parallel::{run_cells, Parallelism};
use crate::render::{f1, TextTable};
use cbs_inliner::{inline_program, InlineBudget, NewLinearPolicy, OldJikesPolicy};
use cbs_profiler::{
    CbsConfig, CodePatchingProfiler, CounterBasedSampler, ExhaustiveMode, ExhaustiveProfiler,
    PatchingConfig, ProfilingCosts, TimerSampler,
};
use cbs_vm::{Vm, VmConfig};
use cbs_workloads::{Benchmark, InputSize};

/// A generic named (benchmark, values...) row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Benchmark name.
    pub benchmark: Benchmark,
    /// Experiment-specific values.
    pub values: Vec<f64>,
}

/// §5.1: the new inliner beats the old hot/cold-cliff inliner even with
/// the same (timer-quality) profile data.
#[derive(Debug, Clone)]
pub struct InlinerAblation {
    /// Per-benchmark `[old_speedup_pct, new_speedup_pct]` over
    /// trivial-only inlining.
    pub rows: Vec<AblationRow>,
}

impl InlinerAblation {
    /// Average speedup of the new inliner minus the old one.
    pub fn new_minus_old(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows
            .iter()
            .map(|r| r.values[1] - r.values[0])
            .sum::<f64>()
            / n
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "§5.1 ablation: old vs new inliner, identical (timer) profile data",
            &["Benchmark", "old %", "new %"],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                f1(r.values[0]),
                f1(r.values[1]),
            ]);
        }
        t.to_string()
    }
}

/// Reproduces the §5.1 observation: replacing the old inliner with the
/// new linear-threshold inliner helps even with timer-quality profiles.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn inliner_ablation(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
) -> Result<InlinerAblation, ExperimentError> {
    inliner_ablation_with(scale, benchmarks, Parallelism::SERIAL)
}

/// [`inliner_ablation`] with benchmarks sharded across `jobs` worker
/// threads.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn inliner_ablation_with(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<InlinerAblation, ExperimentError> {
    let default = [
        Benchmark::Jess,
        Benchmark::Javac,
        Benchmark::Mtrt,
        Benchmark::Db,
    ];
    let benchmarks = benchmarks.unwrap_or(&default);
    let rows = run_cells(benchmarks.to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        // Steady-state protocol: the profile accumulates over a run ten
        // times longer than the measured one (same program shape, only
        // the driver's iteration constant differs, so site ids match).
        let profile_program = cbs_workloads::generator::build(&spec.scaled(10.0))?;
        let m = measure(
            &profile_program,
            VmConfig::default(),
            vec![Box::new(TimerSampler::new())],
        )?;
        let dcg = &m.outcomes[0].dcg;

        let run_with = |policy: &dyn cbs_inliner::InlinePolicy| -> u64 {
            let mut p = program.clone();
            inline_program(&mut p, Some(dcg), policy, &InlineBudget::default(), true);
            Vm::new(&p, VmConfig::default())
                .run_unprofiled()
                .expect("inlined program runs")
                .cycles
        };
        let base = {
            let mut p = program.clone();
            inline_program(
                &mut p,
                None,
                &cbs_inliner::TrivialOnlyPolicy,
                &InlineBudget::default(),
                true,
            );
            Vm::new(&p, VmConfig::default())
                .run_unprofiled()
                .expect("baseline runs")
                .cycles
        };
        let old = run_with(&OldJikesPolicy::default());
        let new = run_with(&NewLinearPolicy::default());
        let speedup = |c: u64| 100.0 * (base as f64 / c as f64 - 1.0);
        Ok::<_, ExperimentError>(AblationRow {
            benchmark: bench,
            values: vec![speedup(old), speedup(new)],
        })
    })?;
    Ok(InlinerAblation { rows })
}

/// §3.1: the cost of exhaustive online edge counters.
#[derive(Debug, Clone)]
pub struct ExhaustiveOverhead {
    /// Per-benchmark `[overhead_pct]` of instrumented exhaustive
    /// profiling.
    pub rows: Vec<AblationRow>,
}

impl ExhaustiveOverhead {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "§3.1: overhead of exhaustive PIC-counter instrumentation",
            &["Benchmark", "overhead %"],
        );
        for r in &self.rows {
            t.row([r.benchmark.name().to_owned(), f1(r.values[0])]);
        }
        t.to_string()
    }
}

/// Measures the overhead of exhaustive instrumented counting (the Vortex
/// PIC-counter experiment, reported as 15–50%).
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn exhaustive_overhead(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
) -> Result<ExhaustiveOverhead, ExperimentError> {
    exhaustive_overhead_with(scale, benchmarks, Parallelism::SERIAL)
}

/// [`exhaustive_overhead`] with benchmarks sharded across `jobs` worker
/// threads.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn exhaustive_overhead_with(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<ExhaustiveOverhead, ExperimentError> {
    let default = [Benchmark::Jess, Benchmark::Javac, Benchmark::Compress];
    let benchmarks = benchmarks.unwrap_or(&default);
    let rows = run_cells(benchmarks.to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let m = measure(
            &program,
            VmConfig::default(),
            vec![Box::new(ExhaustiveProfiler::with_mode(
                ExhaustiveMode::Instrumented,
                ProfilingCosts::default(),
            ))],
        )?;
        Ok::<_, ExperimentError>(AblationRow {
            benchmark: bench,
            values: vec![m.outcomes[0].overhead_pct],
        })
    })?;
    Ok(ExhaustiveOverhead { rows })
}

/// §3.2: burst (code-patching) profiling vs continuous CBS.
#[derive(Debug, Clone)]
pub struct PatchingComparison {
    /// Per-benchmark `[patching_accuracy, cbs_accuracy]`.
    pub rows: Vec<AblationRow>,
}

impl PatchingComparison {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "§3.2: code-patching bursts vs continuous CBS (accuracy)",
            &["Benchmark", "patching", "cbs(3,16)"],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                f1(r.values[0]),
                f1(r.values[1]),
            ]);
        }
        t.to_string()
    }
}

/// Compares a Suganuma-style burst profiler with CBS on short-running
/// inputs, where delayed instrumentation hurts most.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn patching_vs_cbs(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
) -> Result<PatchingComparison, ExperimentError> {
    patching_vs_cbs_with(scale, benchmarks, Parallelism::SERIAL)
}

/// [`patching_vs_cbs`] with benchmarks sharded across `jobs` worker
/// threads.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn patching_vs_cbs_with(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<PatchingComparison, ExperimentError> {
    let default = [Benchmark::Jess, Benchmark::Kawa, Benchmark::Javac];
    let benchmarks = benchmarks.unwrap_or(&default);
    let rows = run_cells(benchmarks.to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let m = measure(
            &program,
            VmConfig::default(),
            vec![
                Box::new(CodePatchingProfiler::with_config(PatchingConfig::default())),
                Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
            ],
        )?;
        Ok::<_, ExperimentError>(AblationRow {
            benchmark: bench,
            values: vec![m.outcomes[0].accuracy, m.outcomes[1].accuracy],
        })
    })?;
    Ok(PatchingComparison { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_instrumentation_is_expensive() {
        let e = exhaustive_overhead(0.05, Some(&[Benchmark::Jess])).unwrap();
        let oh = e.rows[0].values[0];
        assert!(
            oh > 5.0,
            "exhaustive counters must cost real overhead, got {oh}%"
        );
        assert!(e.render().contains("overhead"));
    }

    #[test]
    fn cbs_beats_bursts_on_short_runs() {
        let c = patching_vs_cbs(0.05, Some(&[Benchmark::Kawa])).unwrap();
        let (patching, cbs) = (c.rows[0].values[0], c.rows[0].values[1]);
        assert!(
            cbs > patching,
            "continuous CBS ({cbs}) must beat bursts ({patching}) on short runs"
        );
        assert!(c.render().contains("patching"));
    }

    #[test]
    fn new_inliner_at_least_matches_old() {
        let a = inliner_ablation(0.1, Some(&[Benchmark::Jess, Benchmark::Mtrt])).unwrap();
        assert!(
            a.new_minus_old() > -0.5,
            "new inliner regressed by {}",
            a.new_minus_old()
        );
        assert!(a.render().contains("old %"));
    }
}

/// The frequency-sweep ablation: can the timer mechanism match CBS just
/// by ticking faster?
#[derive(Debug, Clone)]
pub struct FrequencySweep {
    /// `(timer_hz, overhead_pct, accuracy)` for the plain timer sampler.
    pub timer_rows: Vec<(u64, f64, f64)>,
    /// `(overhead_pct, accuracy)` for CBS(3,16) at the stock 100 Hz.
    pub cbs_row: (f64, f64),
}

impl FrequencySweep {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Ablation: raising the timer frequency vs CBS (Figure 1 program)",
            &["Mechanism", "overhead %", "accuracy"],
        );
        for (hz, oh, acc) in &self.timer_rows {
            t.row([format!("timer @{hz} Hz"), f1(*oh), f1(*acc)]);
        }
        t.row([
            "cbs(3,16) @100 Hz".to_owned(),
            f1(self.cbs_row.0),
            f1(self.cbs_row.1),
        ]);
        t.to_string()
    }
}

/// Shows that the timer sampler's inaccuracy is *structural*, not a
/// sampling-rate problem: even at many times the stock frequency (which
/// the paper notes the OS does not offer anyway), the tick keeps landing
/// in the non-call region of the Figure 1 program and waking at the same
/// prologue, while CBS at stock frequency recovers the distribution.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn frequency_sweep() -> Result<FrequencySweep, ExperimentError> {
    use cbs_workloads::adversarial;
    let (program, _) = adversarial::figure1(200, 100_000)?;
    let mut timer_rows = Vec::new();
    for hz in [100, 400, 1600] {
        let config = VmConfig {
            timer_hz: hz,
            timer_jitter: (10_000_000 / hz) / 8,
            ..VmConfig::default()
        };
        let m = measure(&program, config, vec![Box::new(TimerSampler::new())])?;
        timer_rows.push((hz, m.outcomes[0].overhead_pct, m.outcomes[0].accuracy));
    }
    let m = measure(
        &program,
        VmConfig::default(),
        vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
    )?;
    let cbs_row = (m.outcomes[0].overhead_pct, m.outcomes[0].accuracy);
    Ok(FrequencySweep {
        timer_rows,
        cbs_row,
    })
}

/// §7 hardware-assist comparison.
#[derive(Debug, Clone)]
pub struct HardwareComparison {
    /// Per-benchmark `[hw_accuracy, hw_overhead, cbs_accuracy,
    /// cbs_overhead]`.
    pub rows: Vec<AblationRow>,
}

impl HardwareComparison {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "§7: emulated hardware call sampling (imprecise) vs CBS",
            &["Benchmark", "hw acc", "hw oh%", "cbs acc", "cbs oh%"],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                f1(r.values[0]),
                f1(r.values[1]),
                f1(r.values[2]),
                f1(r.values[3]),
            ]);
        }
        t.to_string()
    }
}

/// Compares emulated low-overhead/imprecise hardware call sampling (§7)
/// against CBS: the software mechanism reaches comparable accuracy at
/// comparable overhead without micro-architecture-specific support.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn hardware_vs_cbs(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
) -> Result<HardwareComparison, ExperimentError> {
    hardware_vs_cbs_with(scale, benchmarks, Parallelism::SERIAL)
}

/// [`hardware_vs_cbs`] with benchmarks sharded across `jobs` worker
/// threads.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn hardware_vs_cbs_with(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<HardwareComparison, ExperimentError> {
    use cbs_profiler::{HardwareConfig, HardwareSampler};
    let default = [Benchmark::Jess, Benchmark::Mtrt, Benchmark::Javac];
    let benchmarks = benchmarks.unwrap_or(&default);
    let rows = run_cells(benchmarks.to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let m = measure(
            &program,
            VmConfig::default(),
            vec![
                Box::new(HardwareSampler::new(HardwareConfig::default())),
                Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
            ],
        )?;
        Ok::<_, ExperimentError>(AblationRow {
            benchmark: bench,
            values: vec![
                m.outcomes[0].accuracy,
                m.outcomes[0].overhead_pct,
                m.outcomes[1].accuracy,
                m.outcomes[1].overhead_pct,
            ],
        })
    })?;
    Ok(HardwareComparison { rows })
}

/// The context-sensitivity extension, quantified.
#[derive(Debug, Clone)]
pub struct ContextSensitivity {
    /// Per-benchmark `[flat_accuracy, context_accuracy, contexts,
    /// flat_edges]`.
    pub rows: Vec<AblationRow>,
}

impl ContextSensitivity {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Extension: context-sensitive CBS (same samples, scored per calling context)",
            &["Benchmark", "flat acc", "ctx acc", "contexts", "flat edges"],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                f1(r.values[0]),
                f1(r.values[1]),
                format!("{:.0}", r.values[2]),
                format!("{:.0}", r.values[3]),
            ]);
        }
        t.to_string()
    }
}

/// Quantifies the §1/§7 claim that CBS "is easily extensible to
/// context-sensitive profiling": the same samples, recorded as full stack
/// walks, scored against an exhaustive calling-context tree. Context
/// accuracy trails flat accuracy (there are far more contexts than
/// edges), but the mechanism needs no changes.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn context_sensitivity(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
) -> Result<ContextSensitivity, ExperimentError> {
    context_sensitivity_with(scale, benchmarks, Parallelism::SERIAL)
}

/// [`context_sensitivity`] with benchmarks sharded across `jobs` worker
/// threads.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn context_sensitivity_with(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<ContextSensitivity, ExperimentError> {
    use cbs_dcg::overlap_cct;
    use cbs_profiler::ExhaustiveCctProfiler;

    let default = [Benchmark::Jess, Benchmark::Javac, Benchmark::Mtrt];
    let benchmarks = benchmarks.unwrap_or(&default);
    let rows = run_cells(benchmarks.to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;

        // Pass 1: context-sensitive CBS plus the flat ground truth.
        let mut cbs = CounterBasedSampler::new(CbsConfig {
            context_sensitive: true,
            ..CbsConfig::new(3, 16)
        });
        let mut flat_truth = ExhaustiveProfiler::new();
        {
            #[derive(Debug)]
            struct Both<'a>(&'a mut CounterBasedSampler, &'a mut ExhaustiveProfiler);
            impl cbs_vm::Profiler for Both<'_> {
                fn on_tick(
                    &mut self,
                    clock: u64,
                    thread: cbs_vm::ThreadId,
                    stack: cbs_vm::StackSlice<'_>,
                ) {
                    self.0.on_tick(clock, thread, stack);
                    self.1.on_tick(clock, thread, stack);
                }
                fn on_entry(&mut self, ev: &cbs_vm::CallEvent<'_>) {
                    self.0.on_entry(ev);
                    self.1.on_entry(ev);
                }
                fn on_exit(&mut self, ev: &cbs_vm::CallEvent<'_>) {
                    self.0.on_exit(ev);
                    self.1.on_exit(ev);
                }
                fn on_finish(&mut self, clock: u64) {
                    self.0.on_finish(clock);
                    self.1.on_finish(clock);
                }
            }
            let mut both = Both(&mut cbs, &mut flat_truth);
            Vm::new(&program, VmConfig::default())
                .run(&mut both)
                .map_err(ExperimentError::Vm)?;
        }

        // Pass 2 (identical deterministic execution): exhaustive contexts.
        let mut ctx_truth = ExhaustiveCctProfiler::new();
        Vm::new(&program, VmConfig::default())
            .run(&mut ctx_truth)
            .map_err(ExperimentError::Vm)?;

        use cbs_profiler::CallGraphProfiler as _;
        let flat_acc = cbs_dcg::accuracy(cbs.dcg(), flat_truth.dcg());
        let ctx_acc = overlap_cct(cbs.cct().expect("context mode"), ctx_truth.cct());
        Ok::<_, ExperimentError>(AblationRow {
            benchmark: bench,
            values: vec![
                flat_acc,
                ctx_acc,
                (ctx_truth.cct().num_nodes() - 1) as f64,
                flat_truth.dcg().num_edges() as f64,
            ],
        })
    })?;
    Ok(ContextSensitivity { rows })
}

/// Transitive-inlining (rounds) sensitivity.
#[derive(Debug, Clone)]
pub struct DepthAblation {
    /// Per-benchmark `[speedup_r1, speedup_r2, speedup_r3, growth_r3]`
    /// (speedups in % over trivial-only inlining; growth is the code
    /// size factor at three rounds).
    pub rows: Vec<AblationRow>,
}

impl DepthAblation {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Ablation: transitive inlining rounds (speedup % / growth at 3 rounds)",
            &["Benchmark", "1 round", "2 rounds", "3 rounds", "growth×"],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                f1(r.values[0]),
                f1(r.values[1]),
                f1(r.values[2]),
                format!("{:.2}", r.values[3]),
            ]);
        }
        t.to_string()
    }
}

/// Measures how much of profile-directed inlining's benefit requires
/// *transitive* rounds (sites exposed by earlier splices): the first
/// round captures most of it, mirroring why real inliners bound depth.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn inline_depth_ablation(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
) -> Result<DepthAblation, ExperimentError> {
    inline_depth_ablation_with(scale, benchmarks, Parallelism::SERIAL)
}

/// [`inline_depth_ablation`] with benchmarks sharded across `jobs`
/// worker threads.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn inline_depth_ablation_with(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<DepthAblation, ExperimentError> {
    use cbs_inliner::InlineBudget;

    let default = [Benchmark::Jess, Benchmark::Mtrt];
    let benchmarks = benchmarks.unwrap_or(&default);
    let rows = run_cells(benchmarks.to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let profile_program = cbs_workloads::generator::build(&spec.scaled(5.0))?;
        let m = measure(
            &profile_program,
            VmConfig::default(),
            vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
        )?;
        let dcg = &m.outcomes[0].dcg;

        let baseline = {
            let mut p = program.clone();
            inline_program(
                &mut p,
                None,
                &cbs_inliner::TrivialOnlyPolicy,
                &InlineBudget::default(),
                true,
            );
            Vm::new(&p, VmConfig::default())
                .run_unprofiled()
                .expect("baseline runs")
                .cycles
        };

        let mut values = Vec::new();
        let mut growth3 = 1.0;
        for rounds in 1..=3u32 {
            let mut p = program.clone();
            let report = inline_program(
                &mut p,
                Some(dcg),
                &NewLinearPolicy::default(),
                &InlineBudget {
                    rounds,
                    ..InlineBudget::default()
                },
                true,
            );
            let cycles = Vm::new(&p, VmConfig::default())
                .run_unprofiled()
                .expect("inlined program runs")
                .cycles;
            values.push(100.0 * (baseline as f64 / cycles as f64 - 1.0));
            if rounds == 3 {
                growth3 = report.growth();
            }
        }
        values.push(growth3);
        Ok::<_, ExperimentError>(AblationRow {
            benchmark: bench,
            values,
        })
    })?;
    Ok(DepthAblation { rows })
}
