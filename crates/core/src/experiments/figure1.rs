//! Figure 1: the timer-sampling pathology, demonstrated.

use super::ExperimentError;
use crate::measure::measure;
use crate::render::{f1, TextTable};
use cbs_bytecode::MethodId;
use cbs_dcg::DynamicCallGraph;
use cbs_profiler::{CallGraphProfiler, CbsConfig, CounterBasedSampler, PcSampler, TimerSampler};
use cbs_vm::VmConfig;
use cbs_workloads::adversarial;

/// One profiler's view of the Figure 1 program.
#[derive(Debug, Clone)]
pub struct Figure1Row {
    /// Mechanism name.
    pub profiler: String,
    /// Percent of the profile's weight on edges into `call_1`.
    pub call_1_pct: f64,
    /// Percent of the profile's weight on edges into `call_2`.
    pub call_2_pct: f64,
    /// Overall accuracy against the exhaustive profile.
    pub accuracy: f64,
}

/// Results of the Figure 1 demonstration.
#[derive(Debug, Clone)]
pub struct Figure1Demo {
    /// The true shares (from exhaustive counting).
    pub perfect: (f64, f64),
    /// Per-mechanism rows.
    pub rows: Vec<Figure1Row>,
}

impl Figure1Demo {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 1: timer bias on a long non-call region followed by two short calls",
            &["Profiler", "call_1 %", "call_2 %", "accuracy"],
        );
        t.row([
            "exhaustive (truth)".to_owned(),
            f1(self.perfect.0),
            f1(self.perfect.1),
            f1(100.0),
        ]);
        for r in &self.rows {
            t.row([
                r.profiler.clone(),
                f1(r.call_1_pct),
                f1(r.call_2_pct),
                f1(r.accuracy),
            ]);
        }
        t.to_string()
    }
}

fn incoming_pct(dcg: &DynamicCallGraph, callee: MethodId) -> f64 {
    if dcg.total_weight() <= 0.0 {
        return 0.0;
    }
    100.0 * dcg.incoming_weight(callee) / dcg.total_weight()
}

/// Runs the Figure 1 program under the timer sampler, CBS, and
/// Whaley-style PC sampling, reporting how each attributes weight to the
/// two short calls.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn figure1_demo(non_call_length: u32, iterations: i64) -> Result<Figure1Demo, ExperimentError> {
    let (program, handles) = adversarial::figure1(non_call_length, iterations)?;
    let profilers: Vec<Box<dyn CallGraphProfiler>> = vec![
        Box::new(TimerSampler::new()),
        Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))),
        Box::new(PcSampler::new()),
    ];
    let m = measure(&program, VmConfig::default(), profilers)?;
    let rows = m
        .outcomes
        .iter()
        .map(|o| Figure1Row {
            profiler: o.name.clone(),
            call_1_pct: incoming_pct(&o.dcg, handles.call_1),
            call_2_pct: incoming_pct(&o.dcg, handles.call_2),
            accuracy: o.accuracy,
        })
        .collect();
    Ok(Figure1Demo {
        perfect: (
            incoming_pct(&m.perfect, handles.call_1),
            incoming_pct(&m.perfect, handles.call_2),
        ),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_biased_and_cbs_is_not() {
        let demo = figure1_demo(120, 30_000).unwrap();
        // Truth: the two calls are equally frequent (M's loop edge also
        // counts once, negligibly).
        assert!((demo.perfect.0 - demo.perfect.1).abs() < 1.0, "{demo:?}");

        let timer = demo.rows.iter().find(|r| r.profiler == "timer").unwrap();
        let cbs = demo
            .rows
            .iter()
            .find(|r| r.profiler.starts_with("cbs"))
            .unwrap();
        // The timer sampler lands on the first call after the tick:
        // call_1 dominates hugely.
        assert!(
            timer.call_1_pct > timer.call_2_pct + 30.0,
            "timer bias missing: {timer:?}"
        );
        // CBS recovers a near-balanced distribution and much higher
        // accuracy.
        assert!(
            (cbs.call_1_pct - cbs.call_2_pct).abs() < 10.0,
            "cbs skewed: {cbs:?}"
        );
        assert!(
            cbs.accuracy > timer.accuracy + 15.0,
            "cbs {} vs timer {}",
            cbs.accuracy,
            timer.accuracy
        );
    }

    #[test]
    fn pc_sampler_misses_the_short_calls() {
        let demo = figure1_demo(120, 30_000).unwrap();
        let pc = demo
            .rows
            .iter()
            .find(|r| r.profiler == "pc-sampling")
            .unwrap();
        // The short calls are almost never on the stack at tick time.
        assert!(
            pc.call_1_pct + pc.call_2_pct < 20.0,
            "pc sampling should miss the calls: {pc:?}"
        );
        assert!(demo.render().contains("exhaustive (truth)"));
    }
}
