//! Table 1: benchmark characteristics.

use super::ExperimentError;
use crate::parallel::{run_cells, Parallelism};
use crate::render::{f1, f2, TextTable};
use cbs_vm::{Vm, VmConfig};
use cbs_workloads::{Benchmark, InputSize};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Input size.
    pub size: InputSize,
    /// Simulated running time in seconds.
    pub seconds: f64,
    /// Methods executed at least once.
    pub methods_executed: usize,
    /// Executed bytecode volume in kilobytes.
    pub size_kb: f64,
    /// Dynamic calls executed (not in the paper's table; useful context).
    pub dynamic_calls: u64,
}

/// The reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// All rows, small inputs first.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 1: Benchmarks used in this study",
            &[
                "Benchmark",
                "Input",
                "Time (sec)",
                "Meth exe",
                "Size (K)",
                "Calls",
            ],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                r.size.label().to_owned(),
                f2(r.seconds),
                r.methods_executed.to_string(),
                f1(r.size_kb),
                r.dynamic_calls.to_string(),
            ]);
        }
        t.to_string()
    }
}

/// Reproduces Table 1 by building and running every benchmark at both
/// input sizes.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn table1(scale: f64) -> Result<Table1, ExperimentError> {
    table1_with(scale, Parallelism::SERIAL)
}

/// [`table1`] with benchmark runs sharded across `jobs` worker threads.
/// Rows come back in suite order, so the table is identical to a serial
/// run.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn table1_with(scale: f64, jobs: Parallelism) -> Result<Table1, ExperimentError> {
    let cells: Vec<(InputSize, Benchmark)> = InputSize::both()
        .into_iter()
        .flat_map(|size| Benchmark::all().into_iter().map(move |b| (size, b)))
        .collect();
    let rows = run_cells(cells, jobs, |(size, bench)| {
        let spec = bench.spec(size).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let vm = Vm::new(&program, VmConfig::default());
        let exec = vm.run_unprofiled()?;
        Ok::<_, ExperimentError>(Table1Row {
            benchmark: bench,
            size,
            seconds: exec.seconds,
            methods_executed: exec.methods_executed(),
            size_kb: exec.executed_bytecode_bytes(&program) as f64 / 1024.0,
            dynamic_calls: exec.calls,
        })
    })?;
    Ok(Table1 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_scale_has_all_rows() {
        let t = table1(0.01).unwrap();
        assert_eq!(t.rows.len(), 26);
        for r in &t.rows {
            assert!(r.seconds > 0.0, "{}", r.benchmark);
            assert!(r.methods_executed > 0);
            assert!(r.size_kb > 0.0);
        }
        let text = t.render();
        assert!(text.contains("compress"));
        assert!(text.contains("soot"));
    }

    #[test]
    fn most_methods_execute() {
        // The generator is built so the driver reaches every method; at
        // small scales a few ultra-cold tiers may not fire, but the large
        // majority must.
        let t = table1(0.01).unwrap();
        for r in t.rows.iter().filter(|r| r.size == InputSize::Small) {
            let expected = r.benchmark.spec(InputSize::Small).num_methods as f64;
            assert!(
                r.methods_executed as f64 >= 0.9 * expected,
                "{}: executed {} of {expected}",
                r.benchmark,
                r.methods_executed
            );
        }
    }
}

/// Profile-shape characterization of every benchmark's true DCG.
#[derive(Debug, Clone)]
pub struct WorkloadShapes {
    /// `(benchmark, edges, top-decile share, edges for 90%, gini)` per
    /// small-input benchmark.
    pub rows: Vec<(Benchmark, usize, f64, usize, f64)>,
}

impl WorkloadShapes {
    /// Renders the characterization table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Workload profile shapes (exhaustive DCG, small inputs)",
            &[
                "Benchmark",
                "edges",
                "top-10% share",
                "edges for 90%",
                "gini",
            ],
        );
        for (b, edges, decile, e90, gini) in &self.rows {
            t.row([
                b.name().to_owned(),
                edges.to_string(),
                format!("{decile:.2}"),
                e90.to_string(),
                format!("{gini:.2}"),
            ]);
        }
        t.to_string()
    }
}

/// Characterizes each benchmark's exhaustive edge-weight distribution
/// with the [`cbs_dcg::stats`] shape statistics — the quantities that
/// determine how fast any sampling profiler can converge on it
/// (concentrated `compress` vs long-tailed `javac`/`kawa`).
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn workload_shapes(scale: f64) -> Result<WorkloadShapes, ExperimentError> {
    workload_shapes_with(scale, Parallelism::SERIAL)
}

/// [`workload_shapes`] with per-benchmark runs sharded across `jobs`
/// worker threads.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn workload_shapes_with(
    scale: f64,
    jobs: Parallelism,
) -> Result<WorkloadShapes, ExperimentError> {
    let rows = run_cells(Benchmark::all().to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let m = crate::measure::measure(&program, VmConfig::default(), vec![])?;
        let s = cbs_dcg::stats::shape(&m.perfect);
        Ok::<_, ExperimentError>((
            bench,
            s.edges,
            s.top_decile_share,
            s.edges_for_90pct,
            s.gini,
        ))
    })?;
    Ok(WorkloadShapes { rows })
}

#[cfg(test)]
mod shape_tests {
    use super::*;

    #[test]
    fn shapes_distinguish_concentrated_from_flat() {
        let shapes = workload_shapes(0.05).unwrap();
        assert_eq!(shapes.rows.len(), 13);
        let find = |b: Benchmark| {
            shapes
                .rows
                .iter()
                .find(|(x, ..)| *x == b)
                .expect("benchmark present")
        };
        let compress = find(Benchmark::Compress);
        let kawa = find(Benchmark::Kawa);
        // compress: a small, fairly even DCG (a handful of kernels doing
        // everything); kawa: an order of magnitude more edges whose long
        // cold tail makes the weight distribution far more unequal.
        assert!(compress.1 < kawa.1 / 2, "edge counts: {shapes:?}");
        assert!(
            kawa.4 > compress.4 + 0.1,
            "kawa's cold tail should raise its gini: {shapes:?}"
        );
        // The largest suites have the most edges.
        let max_edges = shapes.rows.iter().map(|r| r.1).max().unwrap();
        assert!(
            max_edges == kawa.1 || max_edges == find(Benchmark::Daikon).1,
            "kawa/daikon have the largest DCGs"
        );
        assert!(shapes.render().contains("gini"));
    }
}
