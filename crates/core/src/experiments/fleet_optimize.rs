//! Fleet exploitation: the pooled profile, served back as an inlining
//! plan, beats the best any single VM can do alone.
//!
//! The collection half of the pipeline (the [`fleet`](super::fleet)
//! experiment) shows pooling decorrelated CBS profiles recovers a more
//! accurate call graph. This experiment closes the paper's loop on the
//! *exploitation* side: `K` VMs run each benchmark under counter-based
//! sampling and stream their profiles — one snapshot frame plus one
//! delta frame each, over real loopback TCP — into the `cbs-profiled`
//! daemon; a client then pulls the daemon's versioned fleet inlining
//! plan (`OP_PLAN`, built server-side with [`cbs_inliner::build_plan`]
//! from the merged snapshot) and a [`FleetAdaptiveController`] applies
//! it to a fresh copy of the benchmark. The fleet-transformed program's
//! cycle count is compared against (a) the untransformed baseline and
//! (b) the *best* of the `K` programs transformed from each VM's own
//! single-VM plan.
//!
//! Pooling recovers call-graph edges and receiver distributions any
//! single sampled profile may miss, so the fleet plan's total cycle
//! count across the suite must be at least as good as the best
//! single-VM plan's — asserted by the tier-1 tests and visible in the
//! rendered table's two speedup columns.
//!
//! Determinism: VM cells and transformed runs go through [`run_cells`]
//! (input-order results), profiles are streamed serially in VM order,
//! plan building is deterministic per snapshot generation, and the
//! simulated clock is exact — the render is bit-identical for any
//! `--jobs` value.

use super::fleet::{transport, FLEET_SIZE, STRIDES};
use super::ExperimentError;
use crate::parallel::{run_cells, Parallelism};
use crate::render::{f2, TextTable};
use cbs_adaptive::{AdaptiveConfig, FleetAdaptiveController};
use cbs_dcg::DynamicCallGraph;
use cbs_inliner::{build_plan, InlinePlan, NewLinearPolicy};
use cbs_profiled::{serve, AggregatorConfig, NetConfig, ProfileClient, ShardedAggregator};
use cbs_profiler::{CbsConfig, CounterBasedSampler};
use cbs_vm::{Value, VmConfig};
use cbs_workloads::{Benchmark, InputSize};
use std::sync::Arc;

/// Samples per CBS window for the exploitation fleet — deliberately in
/// the paper's *low-overhead* operating regime, far sparser than the
/// accuracy experiments: each VM's own profile is individually noisy
/// and incomplete, which is exactly the deployment where pooling pays.
const SPARSE_SAMPLES_PER_WINDOW: u32 = 2;

/// One benchmark's fleet-exploitation outcome.
#[derive(Debug, Clone)]
pub struct FleetOptimizeRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// VMs in this benchmark's fleet.
    pub vms: usize,
    /// Entries in the served fleet plan.
    pub plan_entries: usize,
    /// Snapshot generation the served plan was built from.
    pub generation: u64,
    /// Splices applied when the fleet plan was applied.
    pub fleet_inlines: usize,
    /// Cycles of the untransformed program.
    pub base_cycles: u64,
    /// Cycles of the best program among the `K` single-VM-plan
    /// transformations.
    pub best_single_cycles: u64,
    /// Cycles of the fleet-plan-transformed program.
    pub fleet_cycles: u64,
    /// Whether every transformed program returned the same values as
    /// the baseline.
    pub results_preserved: bool,
}

impl FleetOptimizeRow {
    /// Percent of baseline cycles removed by the best single-VM plan.
    pub fn single_speedup(&self) -> f64 {
        speedup(self.base_cycles, self.best_single_cycles)
    }

    /// Percent of baseline cycles removed by the fleet plan.
    pub fn fleet_speedup(&self) -> f64 {
        speedup(self.base_cycles, self.fleet_cycles)
    }
}

fn speedup(base: u64, transformed: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (base as f64 - transformed as f64) / base as f64
    }
}

/// The fleet-exploitation experiment report.
#[derive(Debug, Clone)]
pub struct FleetOptimize {
    /// Per-benchmark rows, suite order.
    pub rows: Vec<FleetOptimizeRow>,
    /// Suite-total baseline cycles.
    pub total_base: u64,
    /// Suite-total cycles under each benchmark's best single-VM plan.
    pub total_best_single: u64,
    /// Suite-total cycles under the fleet plans.
    pub total_fleet: u64,
}

impl FleetOptimize {
    /// Whether the fleet plan met or beat the best single-VM plan on
    /// suite-total cycles.
    pub fn fleet_wins(&self) -> bool {
        self.total_fleet <= self.total_best_single
    }

    /// Whether every transformed program preserved the baseline's
    /// return values.
    pub fn all_results_preserved(&self) -> bool {
        self.rows.iter().all(|r| r.results_preserved)
    }

    /// Renders the report table with a trailing `MEAN` row and a
    /// pass/fail footer on the pooled-vs-single comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            format!(
                "Fleet exploitation: {FLEET_SIZE} CBS VMs per benchmark stream \
                 profiles to the daemon; programs re-run under the served \
                 OP_PLAN fleet plan vs each VM's own plan"
            ),
            &[
                "Benchmark",
                "VMs",
                "Plan",
                "Inl",
                "Base (cyc)",
                "Single (cyc)",
                "Fleet (cyc)",
                "Single (%)",
                "Fleet (%)",
            ],
        );
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                r.vms.to_string(),
                r.plan_entries.to_string(),
                r.fleet_inlines.to_string(),
                r.base_cycles.to_string(),
                r.best_single_cycles.to_string(),
                r.fleet_cycles.to_string(),
                f2(r.single_speedup()),
                f2(r.fleet_speedup()),
            ]);
        }
        let n = self.rows.len().max(1) as f64;
        t.row([
            "MEAN".to_owned(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            f2(self
                .rows
                .iter()
                .map(FleetOptimizeRow::single_speedup)
                .sum::<f64>()
                / n),
            f2(self
                .rows
                .iter()
                .map(FleetOptimizeRow::fleet_speedup)
                .sum::<f64>()
                / n),
        ]);
        format!(
            "{}total cycles: base {}, best single-VM plan {}, fleet plan {}\n\
             pooled plan meets or beats the best single-VM plan: {}\n\
             transformed programs preserve baseline results: {}\n",
            t,
            self.total_base,
            self.total_best_single,
            self.total_fleet,
            if self.fleet_wins() { "yes" } else { "NO" },
            if self.all_results_preserved() {
                "yes"
            } else {
                "NO"
            },
        )
    }
}

/// Runs one VM replica of `bench` under sparse CBS (a replica-specific
/// stride and timer seed, [`SPARSE_SAMPLES_PER_WINDOW`] samples per
/// window) and returns its sampled call graph.
fn run_sparse_replica(
    bench: Benchmark,
    replica: usize,
    scale: f64,
) -> Result<DynamicCallGraph, ExperimentError> {
    let spec = bench.spec(InputSize::Small).scaled(scale);
    let program = cbs_workloads::generator::build(&spec)?;
    let vm_config = VmConfig {
        // Decorrelate the replicas' timer phases; execution is
        // unaffected.
        timer_seed: 0xF1EE7 + replica as u64,
        ..VmConfig::default()
    };
    let cbs = CounterBasedSampler::new(CbsConfig::new(
        STRIDES[replica % STRIDES.len()],
        SPARSE_SAMPLES_PER_WINDOW,
    ));
    let m = crate::measure::measure(&program, vm_config, vec![Box::new(cbs)])?;
    Ok(m.outcomes[0].dcg.clone())
}

/// Streams one VM's sampled profile over the wire the way a
/// periodically-flushing VM would: the first half of its edges as a
/// snapshot frame, the remainder as one delta frame.
fn stream_over_wire(
    graph: &DynamicCallGraph,
    client: &mut ProfileClient,
) -> Result<(), ExperimentError> {
    let edges: Vec<_> = graph.iter().map(|(e, w)| (*e, w)).collect();
    let split = edges.len() / 2;
    let mut live = DynamicCallGraph::new();
    for &(e, w) in &edges[..split] {
        live.record(e, w);
    }
    client.push_snapshot(&live).map_err(transport)?;
    client.push_delta(&edges[split..]).map_err(transport)?;
    Ok(())
}

/// Serves one benchmark's fleet over loopback TCP and pulls the fleet
/// plan back, checking the served bytes are stable across pulls.
fn pull_fleet_plan(fleet: &[DynamicCallGraph]) -> Result<InlinePlan, ExperimentError> {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
    let server = serve("127.0.0.1:0", agg, NetConfig::default()).map_err(transport)?;
    let mut client =
        ProfileClient::connect(server.addr(), NetConfig::default()).map_err(transport)?;
    for vm in fleet {
        stream_over_wire(vm, &mut client)?;
    }
    let plan = client.pull_plan().map_err(transport)?;
    // The aggregate is unchanged, so the second pull must serve the
    // identical (cached) plan.
    let again = client.pull_plan().map_err(transport)?;
    if again.render() != plan.render() {
        return Err(transport(
            "OP_PLAN served two different plans for one generation",
        ));
    }
    server.shutdown();
    Ok(plan)
}

/// One transformed (or baseline) execution of a benchmark.
struct RunOutcome {
    cycles: u64,
    return_values: Vec<Value>,
    inlines: usize,
}

/// Rebuilds `bench` fresh, optionally applies `plan` through a
/// [`FleetAdaptiveController`], and runs it unprofiled.
fn transformed_run(
    bench: Benchmark,
    scale: f64,
    plan: Option<&InlinePlan>,
) -> Result<RunOutcome, ExperimentError> {
    let spec = bench.spec(InputSize::Small).scaled(scale);
    let program = cbs_workloads::generator::build(&spec)?;
    let mut ctl = FleetAdaptiveController::new(program, AdaptiveConfig::default());
    let mut inlines = 0;
    if let Some(plan) = plan {
        ctl.apply_fleet_plan(plan);
        inlines = ctl
            .last_report()
            .map(cbs_inliner::InlineReport::total_inlines)
            .unwrap_or(0);
    }
    let exec = ctl.run()?;
    Ok(RunOutcome {
        cycles: exec.cycles,
        return_values: exec.return_values,
        inlines,
    })
}

/// Runs the fleet-exploitation experiment serially.
///
/// # Errors
///
/// Propagates generation, VM, or profile-transport failures.
pub fn fleet_optimize(scale: f64) -> Result<FleetOptimize, ExperimentError> {
    fleet_optimize_with(scale, Parallelism::SERIAL)
}

/// [`fleet_optimize`] with VM replicas and transformed runs sharded
/// across `jobs` worker threads. Output is bit-identical for any `jobs`
/// value — see the module docs.
///
/// # Errors
///
/// Propagates generation, VM, or profile-transport failures.
pub fn fleet_optimize_with(
    scale: f64,
    jobs: Parallelism,
) -> Result<FleetOptimize, ExperimentError> {
    // Phase 1: every (benchmark, replica) VM cell, in parallel.
    let cells: Vec<(Benchmark, usize)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| (0..FLEET_SIZE).map(move |r| (b, r)))
        .collect();
    let profiles = run_cells(cells, jobs, |(bench, replica)| {
        run_sparse_replica(bench, replica, scale)
    })?;

    // Phase 2: per benchmark, stream the fleet's profiles through the
    // live service (serially, in VM order) and pull the served plan;
    // build each VM's single-VM plan locally from its own sampled graph
    // with the same policy. Plan building is cheap — only the
    // transformed runs below are worth parallelizing.
    let policy = NewLinearPolicy::default();
    let benchmarks = Benchmark::all();
    let mut fleet_plans = Vec::new();
    let mut single_plans: Vec<Vec<InlinePlan>> = Vec::new();
    for (i, _) in benchmarks.iter().enumerate() {
        let fleet = &profiles[i * FLEET_SIZE..(i + 1) * FLEET_SIZE];
        fleet_plans.push(pull_fleet_plan(fleet)?);
        single_plans.push(fleet.iter().map(|vm| build_plan(vm, &policy, 0)).collect());
    }

    // Phase 3: baseline + fleet + K single-VM transformed runs per
    // benchmark, in parallel (input order keeps results deterministic).
    let variants = 2 + FLEET_SIZE;
    let run_cells_in: Vec<(Benchmark, Option<InlinePlan>)> = benchmarks
        .iter()
        .enumerate()
        .flat_map(|(i, &bench)| {
            let mut v = vec![(bench, None), (bench, Some(fleet_plans[i].clone()))];
            v.extend(single_plans[i].iter().map(|p| (bench, Some(p.clone()))));
            v
        })
        .collect();
    let outcomes = run_cells(run_cells_in, jobs, |(bench, plan)| {
        transformed_run(bench, scale, plan.as_ref())
    })?;

    let mut rows = Vec::new();
    for (i, &bench) in benchmarks.iter().enumerate() {
        let slot = &outcomes[i * variants..(i + 1) * variants];
        let base = &slot[0];
        let fleet = &slot[1];
        let singles = &slot[2..];
        let best_single_cycles = singles
            .iter()
            .map(|o| o.cycles)
            .min()
            .unwrap_or(base.cycles);
        let results_preserved = slot[1..]
            .iter()
            .all(|o| o.return_values == base.return_values);
        rows.push(FleetOptimizeRow {
            benchmark: bench,
            vms: FLEET_SIZE,
            plan_entries: fleet_plans[i].entries.len(),
            generation: fleet_plans[i].generation,
            fleet_inlines: fleet.inlines,
            base_cycles: base.cycles,
            best_single_cycles,
            fleet_cycles: fleet.cycles,
            results_preserved,
        });
    }
    Ok(FleetOptimize {
        total_base: rows.iter().map(|r| r.base_cycles).sum(),
        total_best_single: rows.iter().map(|r| r.best_single_cycles).sum(),
        total_fleet: rows.iter().map(|r| r.fleet_cycles).sum(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_plan_meets_or_beats_the_best_single_vm_plan() {
        let f = fleet_optimize(0.02).unwrap();
        assert_eq!(f.rows.len(), 13);
        for r in &f.rows {
            assert_eq!(r.vms, FLEET_SIZE);
            assert!(r.results_preserved, "{} changed results", r.benchmark);
            assert!(r.base_cycles > 0);
            // Each fleet pushed 4 snapshot + 4 delta frames.
            assert_eq!(r.generation, 2 * FLEET_SIZE as u64);
        }
        // The pooled profile subsumes every single-VM profile, so the
        // served plan must do at least as well in aggregate.
        assert!(
            f.fleet_wins(),
            "fleet {} vs best single {}",
            f.total_fleet,
            f.total_best_single
        );
        assert!(
            f.total_fleet <= f.total_base,
            "fleet plans must not slow the suite"
        );
        // The plans did real work somewhere in the suite.
        assert!(f.rows.iter().map(|r| r.fleet_inlines).sum::<usize>() > 0);
        assert!(f.rows.iter().map(|r| r.plan_entries).sum::<usize>() > 0);
        let text = f.render();
        assert!(text.contains("MEAN"));
        assert!(text.contains("pooled plan meets or beats the best single-VM plan: yes"));
        assert!(text.contains("transformed programs preserve baseline results: yes"));
    }

    #[test]
    fn fleet_optimize_is_bit_identical_for_any_job_count() {
        let serial = fleet_optimize_with(0.01, Parallelism::SERIAL).unwrap();
        for jobs in [2, 5] {
            let par = fleet_optimize_with(0.01, Parallelism::jobs(jobs)).unwrap();
            assert_eq!(par.render(), serial.render(), "jobs={jobs}");
        }
        // Rerunning at the same scale is also bit-identical (plan
        // building, the simulated clock, and generations are all
        // deterministic).
        let again = fleet_optimize(0.01).unwrap();
        assert_eq!(again.render(), serial.render());
    }
}
