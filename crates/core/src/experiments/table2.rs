//! Table 2: overhead and accuracy over the Stride × Samples grid.

use super::ExperimentError;
use crate::measure::measure;
use crate::parallel::{run_cells, Parallelism};
use crate::render::TextTable;
use cbs_profiler::{CbsConfig, CounterBasedSampler, MultiProfiler, SkipPolicy};
use cbs_vm::{VmConfig, VmFlavor};
use cbs_workloads::{Benchmark, InputSize};

/// Grid configuration for [`table2`].
#[derive(Debug, Clone)]
pub struct Table2Options {
    /// Stride values (columns).
    pub strides: Vec<u32>,
    /// Samples-per-timer-interrupt values (rows).
    pub samples: Vec<u32>,
    /// Benchmark/input pairs to average over.
    pub benchmarks: Vec<(Benchmark, InputSize)>,
    /// Running-time scale factor.
    pub scale: f64,
    /// Hosting flavor: [`VmFlavor::Jikes`] reproduces Table 2A,
    /// [`VmFlavor::J9`] Table 2B.
    pub flavor: VmFlavor,
    /// Worker threads for the grid run. Any value produces bit-identical
    /// tables (see [`crate::parallel`]); more workers only shorten the
    /// wall-clock time.
    pub jobs: Parallelism,
}

impl Default for Table2Options {
    fn default() -> Self {
        Self {
            strides: vec![1, 3, 7, 15, 31, 63],
            samples: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 2048, 4096, 8192],
            benchmarks: Benchmark::all()
                .into_iter()
                .flat_map(|b| InputSize::both().map(|s| (b, s)))
                .collect(),
            scale: 1.0,
            flavor: VmFlavor::Jikes,
            jobs: Parallelism::SERIAL,
        }
    }
}

impl Table2Options {
    /// A reduced grid/suite for quick runs and tests.
    pub fn quick(flavor: VmFlavor, scale: f64) -> Self {
        Self {
            strides: vec![1, 3, 15],
            samples: vec![1, 16, 256],
            benchmarks: vec![
                (Benchmark::Jess, InputSize::Small),
                (Benchmark::Javac, InputSize::Small),
                (Benchmark::Mtrt, InputSize::Small),
            ],
            scale,
            flavor,
            jobs: Parallelism::SERIAL,
        }
    }

    /// Sets the worker-thread count.
    pub fn with_jobs(mut self, jobs: Parallelism) -> Self {
        self.jobs = jobs;
        self
    }
}

/// One cell of the grid: averages over the benchmark suite.
#[derive(Debug, Clone, Copy)]
pub struct Table2Cell {
    /// Stride (window spacing).
    pub stride: u32,
    /// Samples per timer interrupt.
    pub samples_per_tick: u32,
    /// Average overhead percentage.
    pub overhead_pct: f64,
    /// Average accuracy (overlap with the perfect profile, 0–100).
    pub accuracy: f64,
}

/// The reproduced Table 2 (A or B depending on the flavor).
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Hosting flavor the grid ran on.
    pub flavor: VmFlavor,
    /// Stride columns.
    pub strides: Vec<u32>,
    /// Samples rows.
    pub samples: Vec<u32>,
    /// Cells in row-major order (samples × strides).
    pub cells: Vec<Table2Cell>,
}

impl Table2 {
    /// Looks up a cell.
    pub fn cell(&self, stride: u32, samples_per_tick: u32) -> Option<&Table2Cell> {
        self.cells
            .iter()
            .find(|c| c.stride == stride && c.samples_per_tick == samples_per_tick)
    }

    /// The overhead/accuracy Pareto frontier of the grid: cells not
    /// dominated by any other cell (strictly better on one axis, at least
    /// as good on the other), sorted by ascending overhead.
    pub fn pareto_frontier(&self) -> Vec<&Table2Cell> {
        let mut frontier: Vec<&Table2Cell> = self
            .cells
            .iter()
            .filter(|c| {
                !self.cells.iter().any(|o| {
                    (o.overhead_pct < c.overhead_pct && o.accuracy >= c.accuracy)
                        || (o.overhead_pct <= c.overhead_pct && o.accuracy > c.accuracy)
                })
            })
            .collect();
        frontier.sort_by(|a, b| a.overhead_pct.partial_cmp(&b.overhead_pct).expect("finite"));
        frontier
    }

    /// The most accurate configuration whose overhead stays below
    /// `max_overhead_pct` — the paper's "reasonable space of parameters
    /// that maximize accuracy while holding overhead to less than 0.5%".
    pub fn best_under(&self, max_overhead_pct: f64) -> Option<&Table2Cell> {
        self.cells
            .iter()
            .filter(|c| c.overhead_pct < max_overhead_pct)
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite"))
    }

    /// Renders the paper-style grid: each cell shows
    /// `overhead% / accuracy`.
    pub fn render(&self) -> String {
        let label = match self.flavor {
            VmFlavor::Jikes => "Table 2A: Jikes RVM flavor (overhead% / accuracy)",
            VmFlavor::J9 => "Table 2B: J9 flavor (overhead% / accuracy)",
        };
        let mut headers: Vec<String> = vec!["Samples\\Stride".to_owned()];
        headers.extend(self.strides.iter().map(|s| s.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = TextTable::new(label, &header_refs);
        for &n in &self.samples {
            let mut row = vec![n.to_string()];
            for &s in &self.strides {
                let c = self.cell(s, n).expect("grid cell");
                row.push(format!("{:.2}/{:.0}", c.overhead_pct, c.accuracy));
            }
            t.row(row);
        }
        t.to_string()
    }
}

/// Reproduces Table 2: runs the CBS configuration grid against every
/// benchmark and averages overhead/accuracy per cell.
///
/// The (benchmark × grid-chunk) cells are sharded across
/// `options.jobs` worker threads — each cell interprets its own `Vm`
/// with its shard of the sampler grid attached. Because attached
/// profilers never interact (see [`MultiProfiler::into_shards`]) and
/// the reduction folds results in stable benchmark order, the table is
/// **bit-identical** for every `jobs` value.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn table2(options: &Table2Options) -> Result<Table2, ExperimentError> {
    let grid: Vec<(u32, u32)> = options
        .samples
        .iter()
        .flat_map(|&n| options.strides.iter().map(move |&s| (s, n)))
        .collect();
    let chunks = options.jobs.get().min(grid.len()).max(1);

    // One cell per (benchmark, contiguous grid chunk), benchmark-major.
    let mut cells: Vec<(Benchmark, InputSize, usize, MultiProfiler)> = Vec::new();
    for &(bench, size) in &options.benchmarks {
        let mut full = MultiProfiler::new();
        for &(stride, samples) in &grid {
            full.attach(Box::new(CounterBasedSampler::new(CbsConfig {
                stride,
                samples_per_tick: samples,
                skip_policy: SkipPolicy::RoundRobin,
                ..CbsConfig::default()
            })));
        }
        let mut offset = 0;
        for shard in full.into_shards(chunks) {
            let len = shard.len();
            cells.push((bench, size, offset, shard));
            offset += len;
        }
    }

    let results = run_cells(cells, options.jobs, |(bench, size, offset, shard)| {
        let spec = bench.spec(size).scaled(options.scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let m = measure(
            &program,
            VmConfig::with_flavor(options.flavor),
            shard.into_inner(),
        )?;
        let scores: Vec<(f64, f64)> = m
            .outcomes
            .iter()
            .map(|o| (o.overhead_pct, o.accuracy))
            .collect();
        Ok::<_, ExperimentError>((offset, scores))
    })?;

    // Fold per-cell scores into per-grid-index sums. Results arrive in
    // cell (benchmark-major) order, so each grid index accumulates its
    // benchmarks in the same sequence regardless of `jobs`.
    let mut sums = vec![(0.0f64, 0.0f64); grid.len()];
    for (offset, scores) in results {
        for (j, (oh, acc)) in scores.into_iter().enumerate() {
            sums[offset + j].0 += oh;
            sums[offset + j].1 += acc;
        }
    }

    let n = options.benchmarks.len().max(1) as f64;
    let cells = grid
        .iter()
        .zip(&sums)
        .map(|(&(stride, samples_per_tick), &(oh, acc))| Table2Cell {
            stride,
            samples_per_tick,
            overhead_pct: oh / n,
            accuracy: acc / n,
        })
        .collect();
    Ok(Table2 {
        flavor: options.flavor,
        strides: options.strides.clone(),
        samples: options.samples.clone(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_shows_the_paper_trends() {
        let t = table2(&Table2Options::quick(VmFlavor::Jikes, 0.05)).unwrap();
        assert_eq!(t.cells.len(), 9);
        let base = t.cell(1, 1).unwrap();
        let tuned = t.cell(3, 16).unwrap();
        let heavy = t.cell(1, 256).unwrap();
        // Accuracy improves as either parameter grows.
        assert!(
            tuned.accuracy > base.accuracy,
            "tuned {} vs base {}",
            tuned.accuracy,
            base.accuracy
        );
        // Overhead grows with samples per tick.
        assert!(heavy.overhead_pct > base.overhead_pct);
        // The render contains the cell separator format.
        assert!(t.render().contains('/'));
    }

    #[test]
    fn pareto_and_best_under() {
        let t = table2(&Table2Options::quick(VmFlavor::Jikes, 0.05)).unwrap();
        let frontier = t.pareto_frontier();
        assert!(!frontier.is_empty());
        // Frontier is sorted by overhead with non-decreasing accuracy.
        for pair in frontier.windows(2) {
            assert!(pair[0].overhead_pct <= pair[1].overhead_pct);
            assert!(pair[0].accuracy <= pair[1].accuracy);
        }
        let best = t.best_under(0.5).expect("some cell fits");
        assert!(best.overhead_pct < 0.5);
        // Nothing under the cap beats it.
        for c in &t.cells {
            if c.overhead_pct < 0.5 {
                assert!(c.accuracy <= best.accuracy);
            }
        }
        assert!(t.best_under(0.0).is_none());
    }

    #[test]
    fn jobs_do_not_change_the_table() {
        let serial = table2(&Table2Options::quick(VmFlavor::Jikes, 0.03)).unwrap();
        let sharded =
            table2(&Table2Options::quick(VmFlavor::Jikes, 0.03).with_jobs(Parallelism::jobs(3)))
                .unwrap();
        assert_eq!(
            serial.render(),
            sharded.render(),
            "parallel grid must render byte-identically"
        );
        for (a, b) in serial.cells.iter().zip(&sharded.cells) {
            assert_eq!(a.overhead_pct.to_bits(), b.overhead_pct.to_bits());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }

    #[test]
    fn j9_flavor_also_runs() {
        let mut opts = Table2Options::quick(VmFlavor::J9, 0.03);
        opts.benchmarks.truncate(1);
        let t = table2(&opts).unwrap();
        assert_eq!(t.flavor, VmFlavor::J9);
        assert!(t.cells.iter().all(|c| (0.0..=100.0).contains(&c.accuracy)));
    }
}
