//! Table 3: per-benchmark overhead and accuracy breakdown.

use super::ExperimentError;
use crate::measure::measure;
use crate::parallel::{run_cells, Parallelism};
use crate::render::{f1, f2, TextTable};
use cbs_profiler::{CallGraphProfiler, CbsConfig, CounterBasedSampler, TimerSampler};
use cbs_vm::{VmConfig, VmFlavor};
use cbs_workloads::{Benchmark, InputSize};

/// The Jikes CBS configuration Table 3 uses.
pub const JIKES_CONFIG: (u32, u32) = (3, 16);
/// The J9 CBS configuration Table 3 uses.
pub const J9_CONFIG: (u32, u32) = (7, 32);

/// One row: a benchmark × input measured on both VMs with the base and
/// chosen CBS profilers.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Input size.
    pub size: InputSize,
    /// Jikes flavor, base (timer) profiler: (overhead%, accuracy).
    pub jikes_base: (f64, f64),
    /// Jikes flavor, CBS(3,16): (overhead%, accuracy).
    pub jikes_cbs: (f64, f64),
    /// J9 flavor, base (CBS(1,1) — J9 has no timer DCG profiler):
    /// (overhead%, accuracy).
    pub j9_base: (f64, f64),
    /// J9 flavor, CBS(7,32): (overhead%, accuracy).
    pub j9_cbs: (f64, f64),
}

/// The reproduced Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// All benchmark rows.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    fn averages(&self, filter: impl Fn(&Table3Row) -> bool) -> [f64; 8] {
        let rows: Vec<&Table3Row> = self.rows.iter().filter(|r| filter(r)).collect();
        let n = rows.len().max(1) as f64;
        let mut sums = [0.0; 8];
        for r in rows {
            for (i, v) in [
                r.jikes_base.0,
                r.jikes_base.1,
                r.jikes_cbs.0,
                r.jikes_cbs.1,
                r.j9_base.0,
                r.j9_base.1,
                r.j9_cbs.0,
                r.j9_cbs.1,
            ]
            .into_iter()
            .enumerate()
            {
                sums[i] += v;
            }
        }
        sums.map(|s| s / n)
    }

    /// Average accuracies for the small inputs:
    /// `[jikes_base, jikes_cbs, j9_base, j9_cbs]`.
    pub fn small_accuracy_averages(&self) -> [f64; 4] {
        let a = self.averages(|r| r.size == InputSize::Small);
        [a[1], a[3], a[5], a[7]]
    }

    /// Average accuracies for the large inputs, same order.
    pub fn large_accuracy_averages(&self) -> [f64; 4] {
        let a = self.averages(|r| r.size == InputSize::Large);
        [a[1], a[3], a[5], a[7]]
    }

    /// Renders the paper-style table with per-size averages.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 3: Overhead and accuracy breakdown (overhead% | accuracy)",
            &[
                "Benchmark",
                "JikesBase oh",
                "JikesBase acc",
                "JikesCBS oh",
                "JikesCBS acc",
                "J9Base oh",
                "J9Base acc",
                "J9CBS oh",
                "J9CBS acc",
            ],
        );
        let emit_avg = |t: &mut TextTable, label: &str, a: [f64; 8]| {
            t.row([
                label.to_owned(),
                f2(a[0]),
                f1(a[1]),
                f2(a[2]),
                f1(a[3]),
                f2(a[4]),
                f1(a[5]),
                f2(a[6]),
                f1(a[7]),
            ]);
        };
        for size in InputSize::both() {
            for r in self.rows.iter().filter(|r| r.size == size) {
                t.row([
                    format!("{}-{}", r.benchmark.name(), r.size.label()),
                    f2(r.jikes_base.0),
                    f1(r.jikes_base.1),
                    f2(r.jikes_cbs.0),
                    f1(r.jikes_cbs.1),
                    f2(r.j9_base.0),
                    f1(r.j9_base.1),
                    f2(r.j9_cbs.0),
                    f1(r.j9_cbs.1),
                ]);
            }
            let label = format!("Average {}", size.label());
            emit_avg(&mut t, &label, self.averages(|r| r.size == size));
        }
        emit_avg(&mut t, "Average All", self.averages(|_| true));
        t.to_string()
    }
}

/// `(overhead%, accuracy)` for the base profiler and the CBS profiler.
type PairResult = ((f64, f64), (f64, f64));

fn profile_pair(
    program: &cbs_bytecode::Program,
    flavor: VmFlavor,
    base: Box<dyn CallGraphProfiler>,
    cbs: (u32, u32),
) -> Result<PairResult, ExperimentError> {
    let m = measure(
        program,
        VmConfig::with_flavor(flavor),
        vec![
            base,
            Box::new(CounterBasedSampler::new(CbsConfig::new(cbs.0, cbs.1))),
        ],
    )?;
    let b = &m.outcomes[0];
    let c = &m.outcomes[1];
    Ok(((b.overhead_pct, b.accuracy), (c.overhead_pct, c.accuracy)))
}

/// Reproduces Table 3 over the given benchmarks (defaults to the full
/// suite when `benchmarks` is `None`).
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn table3(scale: f64, benchmarks: Option<&[Benchmark]>) -> Result<Table3, ExperimentError> {
    table3_with(scale, benchmarks, Parallelism::SERIAL)
}

/// [`table3`] with benchmark rows sharded across `jobs` worker threads.
/// Rows come back in suite order, so the table is identical to a serial
/// run.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn table3_with(
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<Table3, ExperimentError> {
    let all = Benchmark::all();
    let benchmarks = benchmarks.unwrap_or(&all);
    let cells: Vec<(InputSize, Benchmark)> = InputSize::both()
        .into_iter()
        .flat_map(|size| benchmarks.iter().map(move |&b| (size, b)))
        .collect();
    let rows = run_cells(cells, jobs, |(size, bench)| {
        let spec = bench.spec(size).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        let (jikes_base, jikes_cbs) = profile_pair(
            &program,
            VmFlavor::Jikes,
            Box::new(TimerSampler::new()),
            JIKES_CONFIG,
        )?;
        // J9 has no timer-based call graph profiler; CBS(1,1) is the
        // base, as in the paper.
        let (j9_base, j9_cbs) = profile_pair(
            &program,
            VmFlavor::J9,
            Box::new(CounterBasedSampler::new(CbsConfig::new(1, 1))),
            J9_CONFIG,
        )?;
        Ok::<_, ExperimentError>(Table3Row {
            benchmark: bench,
            size,
            jikes_base,
            jikes_cbs,
            j9_base,
            j9_cbs,
        })
    })?;
    Ok(Table3 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbs_beats_base_on_average() {
        let t = table3(0.05, Some(&[Benchmark::Jess, Benchmark::Javac])).unwrap();
        assert_eq!(t.rows.len(), 4);
        let small = t.small_accuracy_averages();
        assert!(
            small[1] > small[0],
            "Jikes CBS {} must beat base {}",
            small[1],
            small[0]
        );
        assert!(
            small[3] > small[2],
            "J9 CBS {} must beat base {}",
            small[3],
            small[2]
        );
        // Overheads stay low for the chosen configurations.
        for r in &t.rows {
            assert!(r.jikes_cbs.0 < 2.0, "{:?}", r);
            assert!(r.j9_cbs.0 < 2.0, "{:?}", r);
        }
        assert!(t.render().contains("Average All"));
    }

    #[test]
    fn large_inputs_converge_further() {
        let t = table3(0.05, Some(&[Benchmark::Jess])).unwrap();
        let small = t.small_accuracy_averages();
        let large = t.large_accuracy_averages();
        assert!(
            large[1] >= small[1] * 0.9,
            "large-input CBS accuracy should not collapse: {large:?} vs {small:?}"
        );
    }
}
