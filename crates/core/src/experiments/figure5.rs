//! Figure 5: steady-state speedup from profile-directed inlining.
//!
//! Protocol (per benchmark): run a profiling pass collecting both a
//! timer-based DCG and a CBS DCG from the same execution; feed each
//! profile (and no profile, as the baseline) to the VM's inliner; apply
//! the inlining transform + optimizer; re-run and compare simulated
//! cycles. Speedups are therefore *computed* consequences of the inlining
//! decisions, exactly like the paper's steady-state measurements.

use super::ExperimentError;
use crate::measure::measure;
use crate::parallel::{run_cells, Parallelism};
use crate::render::{f1, TextTable};
use cbs_bytecode::Program;
use cbs_dcg::DynamicCallGraph;
use cbs_inliner::{
    inline_program, CompileTimeModel, InlineBudget, InlinePolicy, J9Policy, NewLinearPolicy,
};
use cbs_profiler::{CallGraphProfiler, CbsConfig, CounterBasedSampler, TimerSampler};
use cbs_vm::{Vm, VmConfig, VmFlavor};
use cbs_workloads::{Benchmark, InputSize};

/// The benchmarks Figure 5 reports (the SPECjvm98 suite plus jbb).
pub const FIGURE5_BENCHMARKS: [Benchmark; 8] = [
    Benchmark::Compress,
    Benchmark::Jess,
    Benchmark::Db,
    Benchmark::Javac,
    Benchmark::Mpegaudio,
    Benchmark::Mtrt,
    Benchmark::Jack,
    Benchmark::Jbb,
];

/// One benchmark's speedups.
#[derive(Debug, Clone)]
pub struct Figure5Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Speedup (%) of timer-profile-directed inlining over the baseline.
    pub timer_speedup_pct: f64,
    /// Speedup (%) of CBS-profile-directed inlining over the baseline.
    pub cbs_speedup_pct: f64,
    /// Compile-cost change (%) of the CBS-directed configuration relative
    /// to the baseline (negative = cheaper compilation).
    pub cbs_compile_delta_pct: f64,
}

/// The reproduced Figure 5 (left = Jikes flavor, right = J9 flavor).
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// Which VM's inlining discipline was used.
    pub flavor: VmFlavor,
    /// Per-benchmark speedups.
    pub rows: Vec<Figure5Row>,
}

impl Figure5 {
    /// Average CBS speedup across benchmarks.
    pub fn average_cbs_speedup(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows.iter().map(|r| r.cbs_speedup_pct).sum::<f64>() / n
    }

    /// Average timer-only speedup across benchmarks.
    pub fn average_timer_speedup(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows.iter().map(|r| r.timer_speedup_pct).sum::<f64>() / n
    }

    /// Average compile-cost change of the CBS-directed configuration.
    pub fn average_compile_delta(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows
            .iter()
            .map(|r| r.cbs_compile_delta_pct)
            .sum::<f64>()
            / n
    }

    /// Renders the per-benchmark speedup table.
    pub fn render(&self) -> String {
        let label = match self.flavor {
            VmFlavor::Jikes => {
                "Figure 5 (left): Jikes RVM — % speedup of profile-directed inlining"
            }
            VmFlavor::J9 => "Figure 5 (right): J9 — % speedup over static heuristics",
        };
        let mut t = TextTable::new(label, &["Benchmark", "timer-only", "cbs", "cbs compile Δ%"]);
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                f1(r.timer_speedup_pct),
                f1(r.cbs_speedup_pct),
                f1(r.cbs_compile_delta_pct),
            ]);
        }
        t.row([
            "average".to_owned(),
            f1(self.average_timer_speedup()),
            f1(self.average_cbs_speedup()),
            f1(self.average_compile_delta()),
        ]);
        t.to_string()
    }
}

/// How much longer the profiling pass runs than the measured pass,
/// modeling the paper's steady-state protocol (iterate for two minutes,
/// measure the second minute: profiles accumulate over many iterations
/// before the inliner consumes them).
const PROFILE_RUN_SCALE: f64 = 5.0;

/// Profiles, inlines and re-measures one benchmark under one VM
/// discipline.
fn speedup_for(
    program: &Program,
    profile_program: &Program,
    flavor: VmFlavor,
) -> Result<(f64, f64, f64), ExperimentError> {
    // 1. Profiling pass: both mechanisms observe the same (long) run.
    let (base_cbs, tuned) = match flavor {
        VmFlavor::Jikes => ((1, 1), (3, 16)),
        VmFlavor::J9 => ((1, 1), (7, 32)),
    };
    let profilers: Vec<Box<dyn CallGraphProfiler>> = match flavor {
        VmFlavor::Jikes => vec![
            Box::new(TimerSampler::new()),
            Box::new(CounterBasedSampler::new(CbsConfig::new(tuned.0, tuned.1))),
        ],
        VmFlavor::J9 => vec![
            Box::new(CounterBasedSampler::new(CbsConfig::new(
                base_cbs.0, base_cbs.1,
            ))),
            Box::new(CounterBasedSampler::new(CbsConfig::new(tuned.0, tuned.1))),
        ],
    };
    let m = measure(profile_program, VmConfig::with_flavor(flavor), profilers)?;
    let timer_dcg = m.outcomes[0].dcg.clone();
    let cbs_dcg = m.outcomes[1].dcg.clone();

    // 2. Build the three inlined configurations.
    let budget = InlineBudget::default();
    let compile = CompileTimeModel::default();
    let build_variant = |dcg: Option<&DynamicCallGraph>| -> (u64, f64) {
        let mut p = program.clone();
        let policy: Box<dyn InlinePolicy> = match flavor {
            VmFlavor::Jikes => Box::new(NewLinearPolicy::default()),
            VmFlavor::J9 => {
                if dcg.is_some() {
                    Box::new(J9Policy::default())
                } else {
                    Box::new(J9Policy::static_only())
                }
            }
        };
        inline_program(&mut p, dcg, policy.as_ref(), &budget, true);
        let exec = Vm::new(&p, VmConfig::with_flavor(flavor))
            .run_unprofiled()
            .expect("inlined program must still run");
        // JIT-only configuration: every method is compiled once, so total
        // compilation work is the whole-program cost (inlining fattens
        // callers without removing callee methods).
        let cost = compile.total_cost(&p);
        (exec.cycles, cost)
    };

    let (base_cycles, base_compile) = build_variant(None);
    let (timer_cycles, _) = build_variant(Some(&timer_dcg));
    let (cbs_cycles, cbs_compile) = build_variant(Some(&cbs_dcg));

    let speedup = |c: u64| 100.0 * (base_cycles as f64 / c as f64 - 1.0);
    let compile_delta = 100.0 * (cbs_compile / base_compile - 1.0);
    Ok((speedup(timer_cycles), speedup(cbs_cycles), compile_delta))
}

/// Reproduces one side of Figure 5.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn figure5(
    flavor: VmFlavor,
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
) -> Result<Figure5, ExperimentError> {
    figure5_with(flavor, scale, benchmarks, Parallelism::SERIAL)
}

/// [`figure5`] with the per-benchmark profile→inline→re-measure
/// pipelines sharded across `jobs` worker threads. Rows come back in
/// suite order, so the figure is identical to a serial run.
///
/// # Errors
///
/// Propagates generation or VM failures.
pub fn figure5_with(
    flavor: VmFlavor,
    scale: f64,
    benchmarks: Option<&[Benchmark]>,
    jobs: Parallelism,
) -> Result<Figure5, ExperimentError> {
    let benchmarks = benchmarks.unwrap_or(&FIGURE5_BENCHMARKS);
    let rows = run_cells(benchmarks.to_vec(), jobs, |bench| {
        let spec = bench.spec(InputSize::Small).scaled(scale);
        let program = cbs_workloads::generator::build(&spec)?;
        // The profiling pass observes a longer run of the same program:
        // scaling only changes the driver's iteration constant, so every
        // method and call-site id is identical and the collected DCG
        // applies directly to the measured program.
        let profile_program = cbs_workloads::generator::build(&spec.scaled(PROFILE_RUN_SCALE))?;
        let (timer_speedup_pct, cbs_speedup_pct, cbs_compile_delta_pct) =
            speedup_for(&program, &profile_program, flavor)?;
        Ok::<_, ExperimentError>(Figure5Row {
            benchmark: bench,
            timer_speedup_pct,
            cbs_speedup_pct,
            cbs_compile_delta_pct,
        })
    })?;
    Ok(Figure5 { flavor, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jikes_cbs_inlining_speeds_up() {
        let f = figure5(
            VmFlavor::Jikes,
            0.2,
            Some(&[Benchmark::Jess, Benchmark::Mtrt]),
        )
        .unwrap();
        assert_eq!(f.rows.len(), 2);
        for r in &f.rows {
            assert!(
                r.cbs_speedup_pct > 0.0,
                "{}: cbs-directed inlining must win over static: {r:?}",
                r.benchmark
            );
        }
        assert!(
            f.average_cbs_speedup() >= f.average_timer_speedup() - 0.5,
            "cbs {} vs timer {}",
            f.average_cbs_speedup(),
            f.average_timer_speedup()
        );
        assert!(f.render().contains("average"));
    }

    #[test]
    fn j9_dynamic_heuristics_reduce_compilation() {
        let f = figure5(
            VmFlavor::J9,
            0.2,
            Some(&[Benchmark::Jess, Benchmark::Javac]),
        )
        .unwrap();
        // Dynamic heuristics suppress cold-site inlining, so the compiled
        // volume (and thus compile cost) drops relative to the static
        // baseline.
        assert!(
            f.average_compile_delta() < 0.0,
            "compile delta {}",
            f.average_compile_delta()
        );
    }
}
