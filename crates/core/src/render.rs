//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal place (`3.1`), the paper's table
/// style.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(["a", "1.0"]);
        t.row(["long-name", "22.5"]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.lines().count() >= 4);
        let lines: Vec<&str> = s.lines().collect();
        // lines: 0 = title, 1 = headers, 2 = rule, 3.. = data rows.
        assert!(lines[3].ends_with("1.0"), "{s}");
        assert!(lines[4].ends_with("22.5"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("", &["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        let _ = t.to_string(); // must not panic
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(3.148_59), "3.1");
        assert_eq!(f2(3.148_59), "3.15");
        assert_eq!(f1(-0.04), "-0.0");
    }
}
