//! # cbs-core
//!
//! Facade and experiment harness for the reproduction of *Arnold & Grove,
//! "Collecting and Exploiting High-Accuracy Call Graph Profiles in
//! Virtual Machines"* (CGO 2005).
//!
//! The workspace implements the paper's full stack from scratch:
//!
//! * [`bytecode`] — a JVM-like stack ISA with classes, vtables and
//!   call-site identities;
//! * [`vm`] — a cycle-accurate simulated VM with yieldpoints, a jittered
//!   timer, and profiler hooks (Jikes RVM and J9 hosting flavors);
//! * [`dcg`] — dynamic call graphs, the overlap accuracy metric, calling
//!   context trees;
//! * [`profiler`] — **counter-based sampling** (the contribution) plus
//!   every baseline: timer sampling, PC sampling, exhaustive counting,
//!   code-patching bursts;
//! * [`opt`] / [`inliner`] — a real optimizer and inlining transform with
//!   the paper's three inliner policies;
//! * [`adaptive`] — a full adaptive optimization system;
//! * [`profiled`] — fleet-scale profile collection: a binary wire
//!   codec, a sharded aggregation service, and its TCP server/client;
//! * [`store`] — the durable profile store: write-ahead log,
//!   checkpoints, and bit-identical crash recovery for the server;
//! * [`workloads`] — the 13-benchmark synthetic suite and adversarial
//!   programs;
//! * [`experiments`] — functions regenerating **every table and figure**
//!   of the evaluation.
//!
//! ## Quick start
//!
//! ```
//! use cbs_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a workload, attach the paper's sampler, measure accuracy.
//! let program = Benchmark::Jess.build(InputSize::Small)?;
//! let measurement = measure(
//!     &program,
//!     VmConfig::default(),
//!     vec![Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16)))],
//! )?;
//! let cbs = &measurement.outcomes[0];
//! assert!(cbs.accuracy > 0.0 && cbs.accuracy <= 100.0);
//! assert!(cbs.overhead_pct < 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod measure;
pub mod parallel;
mod render;

pub use measure::{measure, Measurement, ProfilerOutcome};
pub use parallel::{run_cells, Parallelism};
pub use render::{f1, f2, TextTable};

pub use cbs_adaptive as adaptive;
pub use cbs_bytecode as bytecode;
pub use cbs_dcg as dcg;
pub use cbs_inliner as inliner;
pub use cbs_opt as opt;
pub use cbs_profiled as profiled;
pub use cbs_profiler as profiler;
pub use cbs_store as store;
pub use cbs_telemetry as telemetry;
pub use cbs_vm as vm;
pub use cbs_workloads as workloads;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use crate::measure::{measure, Measurement, ProfilerOutcome};
    pub use crate::parallel::{run_cells, Parallelism};
    pub use cbs_adaptive::{AdaptiveConfig, AdaptiveSystem};
    pub use cbs_bytecode::{Program, ProgramBuilder};
    pub use cbs_dcg::{accuracy, overlap, CallEdge, DynamicCallGraph};
    pub use cbs_inliner::{
        inline_program, InlineBudget, J9Policy, NewLinearPolicy, OldJikesPolicy, TrivialOnlyPolicy,
    };
    pub use cbs_profiler::{
        CallGraphProfiler, CbsConfig, CodePatchingProfiler, CounterBasedSampler,
        ExhaustiveProfiler, MultiProfiler, PcSampler, SkipPolicy, TimerSampler,
    };
    pub use cbs_vm::{Vm, VmConfig, VmFlavor};
    pub use cbs_workloads::{Benchmark, InputSize};
}
