//! A sharded experiment runner on scoped threads.
//!
//! Experiments are grids of independent *cells* (benchmark × sampler
//! configuration); each cell builds its own workload, VM, and profilers,
//! so cells can run on worker threads with no shared mutable state. This
//! module provides the scheduling half of that story:
//!
//! * [`Parallelism`] — a worker-count knob carried by experiment options
//!   and the `--jobs` flag of the `repro`/`dcgtool` binaries;
//! * [`run_cells`] — runs a list of cells across up to `jobs` scoped
//!   worker threads and returns their results **in input order**.
//!
//! ## Determinism
//!
//! Parallel runs produce bit-identical results to serial runs, by
//! construction:
//!
//! 1. every cell is a pure function of its input (own `Vm`, own
//!    profilers, own seeded PRNG streams — nothing is shared);
//! 2. results are returned in input order regardless of completion
//!    order, so reductions (e.g. [`DynamicCallGraph::merge_all`], grid
//!    averaging) always fold in the same stable cell order;
//! 3. the call graphs being reduced iterate edges in `BTreeMap` order,
//!    so every floating-point reduction sees the same operand sequence.
//!
//! [`DynamicCallGraph::merge_all`]: cbs_dcg::DynamicCallGraph::merge_all

use std::num::NonZeroUsize;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for sharded experiment runs.
///
/// `Parallelism(1)` (the default) runs cells inline on the caller's
/// thread; larger values spread cells over that many scoped worker
/// threads. Output is bit-identical either way — see the
/// [module docs](self) for why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// Serial execution: all cells run on the calling thread.
    pub const SERIAL: Self = Self(NonZeroUsize::MIN);

    /// Uses up to `n` worker threads (`0` is treated as `1`).
    pub fn jobs(n: usize) -> Self {
        Self(NonZeroUsize::new(n.max(1)).expect("max(1) is nonzero"))
    }

    /// One worker per available CPU, falling back to serial when the
    /// core count cannot be determined.
    pub fn auto() -> Self {
        std::thread::available_parallelism()
            .map(Self)
            .unwrap_or(Self::SERIAL)
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// `true` when this runs everything on the calling thread.
    pub fn is_serial(self) -> bool {
        self.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::SERIAL
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

impl FromStr for Parallelism {
    type Err = String;

    /// Parses a `--jobs` value: a positive integer, or `auto` for one
    /// worker per CPU.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(Self::auto());
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Self::jobs(n)),
            _ => Err(format!(
                "invalid jobs value `{s}` (expected a positive integer or `auto`)"
            )),
        }
    }
}

/// Runs `f` over every cell, sharded across up to `parallelism.get()`
/// scoped worker threads, and returns the results **in input order**.
///
/// Workers pull cells from a shared cursor, so uneven cell costs
/// balance automatically. If any cell fails, the error of the
/// *earliest* failing cell (by input index, not completion time) is
/// returned — exactly what a serial left-to-right run would report.
/// Cells may still be in flight when one fails; they run to completion
/// (the scope joins all workers) but their results are discarded.
///
/// With `Parallelism::SERIAL` the cells run inline on the calling
/// thread with no thread or lock machinery, preserving exact serial
/// semantics (later cells are not evaluated after an error).
///
/// # Panics
///
/// Propagates panics from `f` after all workers have stopped.
pub fn run_cells<T, R, E, F>(cells: Vec<T>, parallelism: Parallelism, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    if parallelism.is_serial() || cells.len() <= 1 {
        return cells.into_iter().map(&f).collect();
    }

    let num_cells = cells.len();
    let workers = parallelism.get().min(num_cells);
    // Cells move into worker threads through an indexed queue; each
    // worker claims the next unclaimed index. Option lets a worker take
    // ownership of one cell without consuming the vector.
    let queue: Vec<Mutex<Option<T>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<R, E>>>> =
        (0..num_cells).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= num_cells {
                    return;
                }
                let cell = queue[i]
                    .lock()
                    .expect("queue lock")
                    .take()
                    .expect("each index is claimed once");
                let r = f(cell);
                *results[i].lock().expect("result lock") = Some(r);
            });
        }
    });

    let mut out = Vec::with_capacity(num_cells);
    for slot in results {
        match slot.into_inner().expect("workers joined") {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("scope joins all workers, so every cell completed"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_knob_parses_and_clamps() {
        assert_eq!(Parallelism::default(), Parallelism::SERIAL);
        assert!(Parallelism::SERIAL.is_serial());
        assert_eq!(Parallelism::jobs(0).get(), 1);
        assert_eq!(Parallelism::jobs(4).get(), 4);
        assert!(!Parallelism::jobs(4).is_serial());
        assert!(Parallelism::auto().get() >= 1);
        assert_eq!("3".parse::<Parallelism>().unwrap(), Parallelism::jobs(3));
        assert_eq!("AUTO".parse::<Parallelism>().unwrap(), Parallelism::auto());
        assert!("0".parse::<Parallelism>().is_err());
        assert!("-2".parse::<Parallelism>().is_err());
        assert!("lots".parse::<Parallelism>().is_err());
        assert_eq!(Parallelism::jobs(7).to_string(), "7");
    }

    #[test]
    fn results_come_back_in_input_order() {
        for jobs in [1, 2, 4, 16] {
            let cells: Vec<u64> = (0..40).collect();
            // Uneven per-cell cost: later cells finish first under
            // parallel scheduling, but order must be preserved.
            let out = run_cells(cells, Parallelism::jobs(jobs), |i| {
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                Ok::<u64, ()>(i * i)
            })
            .unwrap();
            assert_eq!(out, (0..40).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn earliest_error_by_index_wins() {
        let cells: Vec<u32> = (0..32).collect();
        let err = run_cells(cells, Parallelism::jobs(4), |i| {
            if i >= 5 && i % 2 == 1 {
                Err(i)
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, 5, "first failing index, not first to complete");
    }

    #[test]
    fn serial_path_short_circuits_like_a_for_loop() {
        let evaluated = AtomicUsize::new(0);
        let err = run_cells((0..10).collect(), Parallelism::SERIAL, |i: u32| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                Err("boom")
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(evaluated.load(Ordering::Relaxed), 4, "stops at the failure");
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let out = run_cells(vec![1, 2], Parallelism::jobs(64), |i| Ok::<i32, ()>(i + 1)).unwrap();
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = run_cells(Vec::<u8>::new(), Parallelism::jobs(8), Ok::<u8, ()>).unwrap();
        assert!(out.is_empty());
    }
}
