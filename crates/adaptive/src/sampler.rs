//! Hot-method detection via timer sampling.

use cbs_bytecode::MethodId;
use cbs_vm::{Profiler, StackSlice, ThreadId};

/// Records which method is executing at each timer tick — the classic
/// Jikes RVM "method listener" that drives recompilation decisions.
///
/// Note this is the *right* use of a time-based trigger: it estimates
/// where time is spent, which is exactly what recompilation wants (and
/// exactly what a DCG profiler must *not* use it for — §3.3).
#[derive(Debug, Default)]
pub struct HotMethodSampler {
    samples: Vec<u64>,
    total: u64,
}

impl HotMethodSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Timer samples attributed to `method`.
    pub fn samples_of(&self, method: MethodId) -> u64 {
        self.samples.get(method.index()).copied().unwrap_or(0)
    }

    /// Total timer samples taken.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Methods with at least `min_samples`, hottest first.
    pub fn hot_methods(&self, min_samples: u64) -> Vec<(MethodId, u64)> {
        let mut v: Vec<(MethodId, u64)> = self
            .samples
            .iter()
            .enumerate()
            .filter(|(_, &n)| n >= min_samples && n > 0)
            .map(|(i, &n)| (MethodId::new(i as u32), n))
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Clears all counts (e.g. between adaptive iterations with decay).
    pub fn reset(&mut self) {
        self.samples.clear();
        self.total = 0;
    }
}

impl Profiler for HotMethodSampler {
    fn on_tick(&mut self, _clock: u64, _thread: ThreadId, stack: StackSlice<'_>) {
        let m = stack.top().method;
        if m.index() >= self.samples.len() {
            self.samples.resize(m.index() + 1, 0);
        }
        self.samples[m.index()] += 1;
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_vm::Frame;

    #[test]
    fn attributes_ticks_to_top_of_stack() {
        let mut s = HotMethodSampler::new();
        let frames = vec![
            Frame::new(MethodId::new(0), 0),
            Frame::new(MethodId::new(3), 0),
        ];
        for _ in 0..5 {
            s.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        }
        assert_eq!(s.samples_of(MethodId::new(3)), 5);
        assert_eq!(s.samples_of(MethodId::new(0)), 0);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn hot_methods_sorted_and_thresholded() {
        let mut s = HotMethodSampler::new();
        let a = vec![Frame::new(MethodId::new(1), 0)];
        let b = vec![Frame::new(MethodId::new(2), 0)];
        for _ in 0..3 {
            s.on_tick(0, ThreadId(0), StackSlice::for_testing(&a));
        }
        s.on_tick(0, ThreadId(0), StackSlice::for_testing(&b));
        assert_eq!(
            s.hot_methods(1),
            vec![(MethodId::new(1), 3), (MethodId::new(2), 1)]
        );
        assert_eq!(s.hot_methods(2).len(), 1);
        s.reset();
        assert_eq!(s.total(), 0);
    }
}
