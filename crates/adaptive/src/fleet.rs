//! The fleet-plan consumption mode of the adaptive system.
//!
//! Where [`AdaptiveSystem`](crate::AdaptiveSystem) closes the loop
//! locally — profile this VM, inline from this VM's call graph — the
//! [`FleetAdaptiveController`] closes it against the *fleet*: the VM
//! pulls a versioned [`InlinePlan`] (built server-side from the pooled
//! profile by `cbs-profiled`) and applies it through the same
//! plan/apply/optimize machinery the local inliner uses
//! ([`cbs_inliner::apply_plan`], which drives
//! `plan_round`-shaped candidate selection and `apply_decision`
//! splicing). Size thresholds and growth budgets are re-checked here
//! against the actual program; the plan only supplies the pooled edge
//! weights and the 40%-rule receiver selections.

use crate::controller::AdaptiveConfig;
use cbs_bytecode::Program;
use cbs_inliner::{apply_plan, InlinePlan, InlinePolicy, InlineReport};
use cbs_vm::{ExecReport, Vm, VmError};

/// An adaptive controller in fleet mode: owns an evolving program that
/// is transformed by pulled fleet plans instead of a local DCG.
#[derive(Debug)]
pub struct FleetAdaptiveController {
    program: Program,
    config: AdaptiveConfig,
    applied_generation: Option<u64>,
    last_report: Option<InlineReport>,
}

impl FleetAdaptiveController {
    /// Creates a controller around an untransformed program.
    pub fn new(program: Program, config: AdaptiveConfig) -> Self {
        Self {
            program,
            config,
            applied_generation: None,
            last_report: None,
        }
    }

    /// The program as currently compiled.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The generation of the last plan applied, if any.
    pub fn applied_generation(&self) -> Option<u64> {
        self.applied_generation
    }

    /// The report of the last plan application, if any.
    pub fn last_report(&self) -> Option<&InlineReport> {
        self.last_report.as_ref()
    }

    /// Applies a pulled fleet plan to the program via the shared
    /// inlining pipeline, using the controller's configured policy and
    /// budget.
    ///
    /// Idempotent per generation: re-offering the plan generation that
    /// is already applied is a no-op (plans are deterministic per
    /// generation, and the splices already happened), so a VM can poll
    /// `pull_plan` freely and hand every answer here.
    ///
    /// Returns whether the plan was applied (false for the
    /// same-generation no-op).
    pub fn apply_fleet_plan(&mut self, plan: &InlinePlan) -> bool {
        if self.applied_generation == Some(plan.generation) {
            return false;
        }
        let report = apply_plan(
            &mut self.program,
            plan,
            &self.config.inline_policy as &dyn InlinePolicy,
            &self.config.inline_budget,
            true,
        );
        self.applied_generation = Some(plan.generation);
        self.last_report = Some(report);
        true
    }

    /// Runs the (transformed) program unprofiled, returning the
    /// execution report.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] trap from the program.
    pub fn run(&self) -> Result<ExecReport, VmError> {
        Vm::new(&self.program, self.config.vm.clone()).run_unprofiled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;
    use cbs_dcg::DynamicCallGraph;
    use cbs_inliner::{build_plan, NewLinearPolicy};

    fn chain_program() -> Program {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 1);
        let getter = b
            .function("getter", cls, 1, 0, |c| {
                c.load(0).get_field(0).ret();
            })
            .unwrap();
        let helper = b
            .function("helper", cls, 1, 0, |c| {
                c.load(0).call(getter).const_(1).add().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 3, |c| {
                c.new_object(cls).store(1);
                c.counted_loop(0, 100, |c| {
                    c.load(1).call(helper).store(2);
                });
                c.load(2).ret();
            })
            .unwrap();
        b.set_entry(main);
        b.build().unwrap()
    }

    fn profile_of(program: &Program) -> DynamicCallGraph {
        #[derive(Default)]
        struct Exhaustive {
            dcg: DynamicCallGraph,
        }
        impl cbs_vm::Profiler for Exhaustive {
            fn on_entry(&mut self, event: &cbs_vm::CallEvent<'_>) {
                self.dcg.record_sample(event.edge);
            }
        }
        let mut ex = Exhaustive::default();
        Vm::new(program, cbs_vm::VmConfig::default())
            .run(&mut ex)
            .unwrap();
        ex.dcg
    }

    #[test]
    fn fleet_plan_speeds_up_the_program_and_preserves_results() {
        let program = chain_program();
        let dcg = profile_of(&program);
        let plan = build_plan(&dcg, &NewLinearPolicy::default(), 5);

        let mut ctl = FleetAdaptiveController::new(program, AdaptiveConfig::default());
        let before = ctl.run().unwrap();
        assert!(ctl.apply_fleet_plan(&plan));
        assert_eq!(ctl.applied_generation(), Some(5));
        let report = ctl.last_report().unwrap();
        assert!(report.total_inlines() >= 2, "report: {report:?}");
        let after = ctl.run().unwrap();
        assert_eq!(before.return_values, after.return_values);
        assert!(
            after.cycles < before.cycles,
            "fleet inlining must reduce simulated time: {} -> {}",
            before.cycles,
            after.cycles
        );
    }

    #[test]
    fn reapplying_the_same_generation_is_a_no_op() {
        let program = chain_program();
        let dcg = profile_of(&program);
        let plan = build_plan(&dcg, &NewLinearPolicy::default(), 1);
        let mut ctl = FleetAdaptiveController::new(program, AdaptiveConfig::default());
        assert!(ctl.apply_fleet_plan(&plan));
        let cycles = ctl.run().unwrap().cycles;
        assert!(!ctl.apply_fleet_plan(&plan), "same generation: no-op");
        assert_eq!(ctl.run().unwrap().cycles, cycles);
        // A new generation is applied again (even if the entries match).
        let plan2 = build_plan(&dcg, &NewLinearPolicy::default(), 2);
        assert!(ctl.apply_fleet_plan(&plan2));
    }
}
