//! Optimization levels.

use std::fmt;

/// A method's compilation level in the adaptive system.
///
/// Mirrors the structure of Jikes RVM's adaptive optimization system: all
/// methods start at the non-optimizing baseline; sampling promotes hot
/// methods through successively more expensive levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// Non-optimizing baseline compiler (trivial inlining only).
    #[default]
    Baseline,
    /// Local optimizations (the `cbs-opt` pass pipeline).
    Opt1,
    /// Profile-directed inlining plus local optimizations.
    Opt2,
}

impl OptLevel {
    /// The next level up, or `None` at the top.
    pub fn next(self) -> Option<OptLevel> {
        match self {
            OptLevel::Baseline => Some(OptLevel::Opt1),
            OptLevel::Opt1 => Some(OptLevel::Opt2),
            OptLevel::Opt2 => None,
        }
    }

    /// Relative compilation expense of this level (scales the
    /// compile-time model).
    pub fn compile_expense(self) -> f64 {
        match self {
            OptLevel::Baseline => 1.0,
            OptLevel::Opt1 => 3.0,
            OptLevel::Opt2 => 8.0,
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::Baseline => write!(f, "base"),
            OptLevel::Opt1 => write!(f, "O1"),
            OptLevel::Opt2 => write!(f, "O2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(OptLevel::Baseline < OptLevel::Opt1);
        assert!(OptLevel::Opt1 < OptLevel::Opt2);
    }

    #[test]
    fn next_walks_the_ladder() {
        assert_eq!(OptLevel::Baseline.next(), Some(OptLevel::Opt1));
        assert_eq!(OptLevel::Opt1.next(), Some(OptLevel::Opt2));
        assert_eq!(OptLevel::Opt2.next(), None);
    }

    #[test]
    fn expense_grows_with_level() {
        assert!(OptLevel::Opt2.compile_expense() > OptLevel::Opt1.compile_expense());
        assert!(OptLevel::Opt1.compile_expense() > OptLevel::Baseline.compile_expense());
    }
}
