//! # cbs-adaptive
//!
//! A Jikes-RVM-style adaptive optimization system for the Arnold–Grove
//! CGO'05 reproduction.
//!
//! The paper's accuracy experiments deliberately run *JIT-only* (a fixed
//! optimization level) because an adaptive system makes profile accuracy
//! hard to compare; its *performance* experiments, however, live inside
//! exactly this feedback loop. This crate provides that loop:
//!
//! * [`HotMethodSampler`] — timer-based "where is time spent" sampling
//!   (the correct use of a time trigger, per §3.3);
//! * [`OptLevel`] — the baseline/O1/O2 recompilation ladder;
//! * [`AdaptiveSystem`] — run → sample → promote → recompile iterations,
//!   where O2 applies profile-directed inlining using the continuously
//!   collected (and decayed) CBS call graph;
//! * [`FleetAdaptiveController`] — the fleet mode: the VM applies a
//!   pulled, versioned fleet inlining plan (built from the pooled
//!   profile by the `cbs-profiled` daemon) instead of its local DCG.
//!
//! ## Example
//!
//! ```no_run
//! use cbs_adaptive::{AdaptiveConfig, AdaptiveSystem};
//! use cbs_workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Benchmark::Jess.build(cbs_workloads::InputSize::Small)?;
//! let mut system = AdaptiveSystem::new(program, AdaptiveConfig::default());
//! let first = system.run_iteration()?.exec.cycles;
//! for _ in 0..5 {
//!     system.run_iteration()?;
//! }
//! let steady = system.run_iteration()?.exec.cycles;
//! assert!(steady <= first);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod fleet;
mod levels;
mod sampler;

pub use controller::{AdaptiveConfig, AdaptiveSystem, IterationReport};
pub use fleet::FleetAdaptiveController;
pub use levels::OptLevel;
pub use sampler::HotMethodSampler;
