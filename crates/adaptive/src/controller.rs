//! The adaptive optimization controller.
//!
//! Drives the feedback loop of a Jikes-RVM-style adaptive optimization
//! system over repeated program iterations (modeling the steady-state
//! methodology of §6.3: iterate the workload, let the system warm up,
//! measure late iterations):
//!
//! 1. run the program with a [`HotMethodSampler`] (where is time spent?)
//!    and a DCG profiler (where do calls go?);
//! 2. promote methods whose sample counts justify recompilation, using a
//!    cost/benefit test in the spirit of Arnold–Hind;
//! 3. recompile: `Opt1` runs the local optimizer on the method, `Opt2`
//!    additionally applies profile-directed inlining into it;
//! 4. repeat — later iterations execute the *transformed* program, so
//!    speedups are computed, not asserted.

use crate::levels::OptLevel;
use crate::sampler::HotMethodSampler;
use cbs_bytecode::{MethodId, Program};
use cbs_dcg::DynamicCallGraph;
use cbs_inliner::{
    apply_decision, plan_round, CompileTimeModel, InlineBudget, InlinePolicy, NewLinearPolicy,
};
use cbs_opt::Optimizer;
use cbs_profiler::{CallGraphProfiler, CbsConfig, CounterBasedSampler};
use cbs_vm::{ExecReport, Vm, VmConfig, VmError};
use std::collections::HashSet;

/// Configuration of the adaptive system.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// VM configuration used for every iteration.
    pub vm: VmConfig,
    /// DCG profiler configuration (the paper's CBS feeds the inliner).
    pub cbs: CbsConfig,
    /// Timer samples a method needs before promotion to `Opt1`.
    pub promote_o1_samples: u64,
    /// Timer samples a method needs before promotion to `Opt2`.
    pub promote_o2_samples: u64,
    /// Inlining policy used at `Opt2`.
    pub inline_policy: NewLinearPolicy,
    /// Inlining budget at `Opt2`.
    pub inline_budget: InlineBudget,
    /// Compile-time model for the cost side of the ledger.
    pub compile_model: CompileTimeModel,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            vm: VmConfig::default(),
            cbs: CbsConfig::default(),
            promote_o1_samples: 2,
            promote_o2_samples: 8,
            inline_policy: NewLinearPolicy::default(),
            inline_budget: InlineBudget::default(),
            compile_model: CompileTimeModel::default(),
        }
    }
}

/// Result of one adaptive iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Execution report for this iteration (of the program as compiled at
    /// iteration start).
    pub exec: ExecReport,
    /// Methods promoted after this iteration, with their new levels.
    pub promotions: Vec<(MethodId, OptLevel)>,
    /// Simulated cycles spent recompiling after this iteration.
    pub compile_cycles: f64,
    /// Profiling overhead cycles accrued this iteration.
    pub profile_overhead_cycles: u64,
}

/// The adaptive optimization system: owns an evolving program.
#[derive(Debug)]
pub struct AdaptiveSystem {
    program: Program,
    config: AdaptiveConfig,
    levels: Vec<OptLevel>,
    samples: Vec<u64>,
    dcg: DynamicCallGraph,
    guarded_sites: HashSet<cbs_bytecode::CallSiteId>,
    iterations_run: usize,
    total_compile_cycles: f64,
}

impl AdaptiveSystem {
    /// Creates a system around a program; all methods start at baseline.
    pub fn new(program: Program, config: AdaptiveConfig) -> Self {
        let n = program.num_methods();
        Self {
            program,
            config,
            levels: vec![OptLevel::Baseline; n],
            samples: vec![0; n],
            dcg: DynamicCallGraph::new(),
            guarded_sites: HashSet::new(),
            iterations_run: 0,
            total_compile_cycles: 0.0,
        }
    }

    /// The program as currently compiled.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A method's current level.
    pub fn level(&self, method: MethodId) -> OptLevel {
        self.levels.get(method.index()).copied().unwrap_or_default()
    }

    /// The accumulated dynamic call graph.
    pub fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    /// Iterations run so far.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// Total simulated recompilation cycles so far.
    pub fn total_compile_cycles(&self) -> f64 {
        self.total_compile_cycles
    }

    /// Runs one iteration: execute, sample, promote, recompile.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] trap from the program.
    pub fn run_iteration(&mut self) -> Result<IterationReport, VmError> {
        // 1. Execute with both profilers attached.
        let mut profilers = IterationProfilers {
            hot: HotMethodSampler::new(),
            cbs: CounterBasedSampler::new(self.config.cbs.clone()),
        };
        let exec = Vm::new(&self.program, self.config.vm.clone()).run(&mut profilers)?;

        let profile_overhead = profilers.cbs.overhead_cycles();
        // Merge this iteration's DCG into the continuous profile (the
        // paper's mechanism profiles continuously; old data decays).
        self.dcg.decay(0.9, 1e-6);
        self.dcg.merge(&profilers.cbs.take_dcg());
        let hot = profilers.hot;

        // 2. Accumulate method samples and decide promotions.
        for (m, n) in hot.hot_methods(1) {
            self.samples[m.index()] += n;
        }
        let mut promotions = Vec::new();
        let mut compile_cycles = 0.0;
        for i in 0..self.program.num_methods() {
            let m = MethodId::new(i as u32);
            let s = self.samples[i];
            let target = if s >= self.config.promote_o2_samples {
                OptLevel::Opt2
            } else if s >= self.config.promote_o1_samples {
                OptLevel::Opt1
            } else {
                OptLevel::Baseline
            };
            while self.levels[i] < target {
                let next = self.levels[i].next().expect("target above current");
                compile_cycles += self.recompile(m, next);
                self.levels[i] = next;
                promotions.push((m, next));
            }
        }

        self.iterations_run += 1;
        self.total_compile_cycles += compile_cycles;
        Ok(IterationReport {
            exec,
            promotions,
            compile_cycles,
            profile_overhead_cycles: profile_overhead,
        })
    }

    /// Recompiles `method` at `level`, returning the simulated compile
    /// cost.
    fn recompile(&mut self, method: MethodId, level: OptLevel) -> f64 {
        match level {
            OptLevel::Baseline => {}
            OptLevel::Opt1 => {
                Optimizer::new().optimize_method(&mut self.program, method);
            }
            OptLevel::Opt2 => {
                // Profile-directed inlining into this method only.
                let decisions: Vec<_> = plan_round(
                    &self.program,
                    Some(&self.dcg),
                    &self.config.inline_policy as &dyn InlinePolicy,
                    &self.config.inline_budget,
                    &self.guarded_sites,
                )
                .into_iter()
                .filter(|d| d.caller == method)
                .collect();
                let mut ds = decisions;
                ds.sort_unstable_by_key(|d| std::cmp::Reverse(d.pc));
                for d in ds {
                    if let cbs_inliner::InlineKind::Guarded { .. } = d.kind {
                        if let Some(op) = self.program.method(d.caller).code().get(d.pc as usize) {
                            if let Some(site) = op.call_site() {
                                self.guarded_sites.insert(site);
                            }
                        }
                    }
                    let _ = apply_decision(&mut self.program, &d);
                }
                Optimizer::new().optimize_method(&mut self.program, method);
            }
        }
        self.config
            .compile_model
            .method_cost(self.program.method(method).size_bytes())
            * level.compile_expense()
    }
}

/// The pair of profilers one adaptive iteration runs with: a hot-method
/// sampler for recompilation decisions and a CBS sampler for the DCG.
#[derive(Debug)]
struct IterationProfilers {
    hot: HotMethodSampler,
    cbs: CounterBasedSampler,
}

impl cbs_vm::Profiler for IterationProfilers {
    fn on_tick(&mut self, clock: u64, thread: cbs_vm::ThreadId, stack: cbs_vm::StackSlice<'_>) {
        self.hot.on_tick(clock, thread, stack);
        self.cbs.on_tick(clock, thread, stack);
    }
    fn on_entry(&mut self, event: &cbs_vm::CallEvent<'_>) {
        self.cbs.on_entry(event);
    }
    fn on_exit(&mut self, event: &cbs_vm::CallEvent<'_>) {
        self.cbs.on_exit(event);
    }
    fn on_finish(&mut self, clock: u64) {
        self.hot.on_finish(clock);
        self.cbs.on_finish(clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;

    fn hot_loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 1);
        let getter = b
            .function("getter", cls, 1, 0, |c| {
                c.load(0).get_field(0).ret();
            })
            .unwrap();
        let work = b
            .function("work", cls, 1, 1, |c| {
                c.load(0).call(getter).const_(3).mul().store(1);
                c.load(1).const_(1).add().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 3, |c| {
                c.new_object(cls).store(1);
                c.counted_loop(0, 300_000, |c| {
                    c.load(1).call(work).store(2);
                });
                c.load(2).ret();
            })
            .unwrap();
        b.set_entry(main);
        let _ = work;
        b.build().unwrap()
    }

    #[test]
    fn adaptive_system_promotes_and_speeds_up() {
        let mut sys = AdaptiveSystem::new(hot_loop_program(), AdaptiveConfig::default());
        let first = sys.run_iteration().unwrap();
        // Enough ticks must have occurred to find the hot loop.
        assert!(first.exec.ticks > 10);
        let mut last = first.exec.cycles;
        for _ in 0..3 {
            last = sys.run_iteration().unwrap().exec.cycles;
        }
        assert!(sys.iterations_run() == 4);
        let main = sys.program().entry();
        assert!(
            sys.level(main) >= OptLevel::Opt1,
            "hot entry method promoted, got {}",
            sys.level(main)
        );
        assert!(
            last < first.exec.cycles,
            "steady state must be faster: first={} last={last}",
            first.exec.cycles
        );
        assert!(sys.total_compile_cycles() > 0.0);
    }

    #[test]
    fn results_stay_correct_across_recompilation() {
        let mut sys = AdaptiveSystem::new(hot_loop_program(), AdaptiveConfig::default());
        let first = sys.run_iteration().unwrap().exec.return_values;
        for _ in 0..3 {
            let r = sys.run_iteration().unwrap();
            assert_eq!(
                r.exec.return_values, first,
                "recompilation changed semantics"
            );
        }
    }

    #[test]
    fn cold_methods_stay_at_baseline() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let cold = b
            .function("cold", cls, 0, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.call(cold).pop();
                c.counted_loop(0, 100_000, |c| {
                    c.const_(1).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut sys = AdaptiveSystem::new(b.build().unwrap(), AdaptiveConfig::default());
        for _ in 0..2 {
            sys.run_iteration().unwrap();
        }
        assert_eq!(sys.level(cold), OptLevel::Baseline);
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;

    #[test]
    fn promotion_thresholds_are_respected() {
        // With an unreachable O2 threshold, nothing passes Opt1.
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 400_000, |c| {
                    c.const_(1).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let config = AdaptiveConfig {
            promote_o1_samples: 1,
            promote_o2_samples: u64::MAX,
            ..AdaptiveConfig::default()
        };
        let mut sys = AdaptiveSystem::new(b.build().unwrap(), config);
        for _ in 0..3 {
            sys.run_iteration().unwrap();
        }
        assert_eq!(sys.level(main), OptLevel::Opt1);
    }

    #[test]
    fn iteration_report_accounts_profiling_overhead() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 200_000, |c| {
                    c.call(f).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut sys = AdaptiveSystem::new(b.build().unwrap(), AdaptiveConfig::default());
        let r = sys.run_iteration().unwrap();
        assert!(
            r.profile_overhead_cycles > 0,
            "CBS sampled, so it cost something"
        );
        assert!(
            (r.profile_overhead_cycles as f64) < r.exec.cycles as f64 * 0.02,
            "profiling stays under 2%: {} of {}",
            r.profile_overhead_cycles,
            r.exec.cycles
        );
    }
}
