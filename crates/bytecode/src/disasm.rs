//! Human-readable program listings.

use crate::ids::MethodId;
use crate::program::Program;
use std::fmt::Write as _;

/// Renders one method as an assembly-style listing.
///
/// ```
/// # use cbs_bytecode::{ProgramBuilder, disasm};
/// # fn main() -> Result<(), cbs_bytecode::BuildError> {
/// let mut b = ProgramBuilder::new();
/// let cls = b.add_class("C", 0);
/// let main = b.function("main", cls, 0, 0, |c| { c.const_(1).ret(); })?;
/// b.set_entry(main);
/// let p = b.build()?;
/// let listing = disasm::method(&p, main);
/// assert!(listing.contains("const 1"));
/// # Ok(())
/// # }
/// ```
pub fn method(program: &Program, id: MethodId) -> String {
    let m = program.method(id);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} `{}` class={} params={} locals={} size={}B",
        m.id(),
        m.name(),
        m.class(),
        m.num_params(),
        m.num_locals(),
        m.size_bytes()
    );
    for (pc, op) in m.code().iter().enumerate() {
        let annot = match op {
            op if op.is_backedge_from(pc as u32) => "  ; backedge",
            crate::op::Op::Call { target, .. } => {
                let _ = writeln!(
                    out,
                    "  {pc:4}: {op}  ; -> {}",
                    program.method(*target).name()
                );
                continue;
            }
            _ => "",
        };
        let _ = writeln!(out, "  {pc:4}: {op}{annot}");
    }
    out
}

/// Renders the whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program: {} classes, {} methods, {} call sites, entry={}",
        p.num_classes(),
        p.num_methods(),
        p.num_call_sites(),
        p.entry()
    );
    for c in p.classes() {
        let vt: Vec<String> = c.vtable().iter().map(|m| m.to_string()).collect();
        let _ = writeln!(
            out,
            "class {} `{}` fields={} vtable=[{}]",
            c.id(),
            c.name(),
            c.num_fields(),
            vt.join(", ")
        );
    }
    for m in p.methods() {
        out.push_str(&method(p, m.id()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn listing_contains_annotations() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("helper", cls, 0, 0, |c| {
                c.const_(3).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 2, |c| {
                    c.call(f).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let text = program(&p);
        assert!(
            text.contains("-> helper"),
            "call annotation missing:\n{text}"
        );
        assert!(
            text.contains("backedge"),
            "backedge annotation missing:\n{text}"
        );
        assert!(text.contains("class c0"));
    }
}
