//! # cbs-bytecode
//!
//! The bytecode substrate for the reproduction of *Arnold & Grove,
//! "Collecting and Exploiting High-Accuracy Call Graph Profiles in Virtual
//! Machines"* (CGO 2005).
//!
//! This crate defines a small stack-based, JVM-like intermediate language:
//!
//! * [`Op`] — the instruction set (arithmetic, locals, fields, objects,
//!   direct and virtual calls, guards, simulated I/O);
//! * [`Method`], [`Class`], [`Program`] — the program model, with virtual
//!   dispatch tables and per-instruction call-site identities;
//! * [`ProgramBuilder`] / [`CodeBuilder`] — fluent construction with labels
//!   and forward references;
//! * [`verify`](mod@verify) — a bytecode verifier (jump ranges, stack
//!   discipline, dispatch resolvability);
//! * [`disasm`] — human-readable listings.
//!
//! Everything downstream — the simulated VM, the call-graph profilers, the
//! inliners — operates on these types.
//!
//! ## Example
//!
//! ```
//! use cbs_bytecode::{ProgramBuilder, VirtualSlot};
//!
//! # fn main() -> Result<(), cbs_bytecode::BuildError> {
//! let mut b = ProgramBuilder::new();
//! let shape = b.add_class("Shape", 1);
//! let area = b.function("Shape.area", shape, 1, 0, |c| {
//!     c.load(0).get_field(0).ret();
//! })?;
//! b.set_vtable(shape, VirtualSlot::new(0), area);
//! let main = b.function("main", shape, 0, 1, |c| {
//!     c.new_object(shape).store(0);
//!     c.load(0).call_virtual(VirtualSlot::new(0), 1).ret();
//! })?;
//! b.set_entry(main);
//! let program = b.build()?;
//! assert_eq!(program.num_call_sites(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod class;
mod ids;
mod method;
mod op;
mod program;

pub mod asm;
pub mod disasm;
pub mod verify;

pub use asm::{assemble, disassemble, AsmError};
pub use builder::{BuildError, CodeBuilder, Label, ProgramBuilder};
pub use class::Class;
pub use ids::{CallSiteId, ClassId, MethodId, VirtualSlot};
pub use method::Method;
pub use op::Op;
pub use program::Program;
pub use verify::VerifyError;
