//! A textual assembler for programs.
//!
//! Lets test programs and small case studies be written as text instead of
//! builder calls:
//!
//! ```text
//! class Shape fields=1
//! class Square extends=Shape fields=0
//!
//! method Shape.area class=Shape params=1 locals=0 {
//!     load 0
//!     getfield 0
//!     ret
//! }
//!
//! method main class=Shape params=0 locals=1 {
//!     new Square
//!     store 0
//! loop:
//!     load 0
//!     callvirt 0 1
//!     ret
//! }
//!
//! vtable Shape 0 Shape.area
//! vtable Square 0 Shape.area
//! entry main
//! ```
//!
//! Grammar (line-oriented; `#` starts a comment):
//!
//! * `class NAME fields=N [extends=PARENT]` — classes, in order; a parent
//!   must be declared first;
//! * `method NAME class=CLS params=N locals=M { … }` — `locals` counts
//!   extra (non-parameter) slots; bodies may reference methods declared
//!   later;
//! * `LABEL:` lines bind jump targets; jumps reference labels by name;
//! * `vtable CLS SLOT METHOD` and `entry METHOD` wire dispatch and the
//!   entry point.

use crate::builder::{BuildError, Label, ProgramBuilder};
use crate::ids::{ClassId, MethodId, VirtualSlot};
use crate::program::Program;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm: {}", self.message)
        } else {
            write!(f, "asm line {}: {}", self.line, self.message)
        }
    }
}

impl Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> Self {
        AsmError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parses `key=value` out of a token.
fn kv<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, AsmError> {
    token
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| err(line, format!("expected `{key}=…`, found `{token}`")))
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, AsmError> {
    s.parse()
        .map_err(|_| err(line, format!("`{s}` is not a valid number")))
}

#[derive(Debug)]
struct MethodSource {
    id: MethodId,
    extra_locals: u16,
    /// `(line_number, text)` of body lines.
    body: Vec<(usize, String)>,
}

/// Assembles a program from its textual form.
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the first malformed line, or
/// wrapping the verifier error if the assembled program is invalid.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut classes: HashMap<String, ClassId> = HashMap::new();
    let mut methods: HashMap<String, MethodId> = HashMap::new();
    let mut sources: Vec<MethodSource> = Vec::new();
    let mut vtables: Vec<(usize, String, u16, String)> = Vec::new();
    let mut entry: Option<(usize, String)> = None;

    // Pass 1: declarations, collected bodies.
    let mut lines = source.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "class" => {
                if tokens.len() < 3 {
                    return Err(err(line_no, "class NAME fields=N [extends=PARENT]"));
                }
                let name = tokens[1];
                let mut fields: Option<u16> = None;
                let mut parent: Option<ClassId> = None;
                for token in &tokens[2..] {
                    if let Some(v) = token.strip_prefix("fields=") {
                        fields = Some(parse_num(v, line_no)?);
                    } else if let Some(parent_name) = token.strip_prefix("extends=") {
                        parent = Some(*classes.get(parent_name).ok_or_else(|| {
                            err(line_no, format!("unknown parent `{parent_name}`"))
                        })?);
                    } else {
                        return Err(err(line_no, format!("unexpected `{token}`")));
                    }
                }
                let fields = fields.ok_or_else(|| err(line_no, "class is missing `fields=N`"))?;
                let id = match parent {
                    Some(parent) => b.add_subclass(name, parent, fields),
                    None => b.add_class(name, fields),
                };
                if classes.insert(name.to_owned(), id).is_some() {
                    return Err(err(line_no, format!("duplicate class `{name}`")));
                }
            }
            "method" => {
                if tokens.len() < 6 || tokens[5] != "{" {
                    return Err(err(line_no, "method NAME class=CLS params=N locals=M {"));
                }
                let name = tokens[1];
                let cls_name = kv(tokens[2], "class", line_no)?;
                let cls = *classes
                    .get(cls_name)
                    .ok_or_else(|| err(line_no, format!("unknown class `{cls_name}`")))?;
                let params: u16 = parse_num(kv(tokens[3], "params", line_no)?, line_no)?;
                let extra_locals: u16 = parse_num(kv(tokens[4], "locals", line_no)?, line_no)?;
                let id = b.declare(name, cls, params);
                if methods.insert(name.to_owned(), id).is_some() {
                    return Err(err(line_no, format!("duplicate method `{name}`")));
                }
                let mut body = Vec::new();
                let mut closed = false;
                for (bidx, braw) in lines.by_ref() {
                    let bline = strip_comment(braw);
                    if bline == "}" {
                        closed = true;
                        break;
                    }
                    if !bline.is_empty() {
                        body.push((bidx + 1, bline.to_owned()));
                    }
                }
                if !closed {
                    return Err(err(line_no, format!("method `{name}` missing `}}`")));
                }
                sources.push(MethodSource {
                    id,
                    extra_locals,
                    body,
                });
            }
            "vtable" => {
                if tokens.len() != 4 {
                    return Err(err(line_no, "vtable CLS SLOT METHOD"));
                }
                vtables.push((
                    line_no,
                    tokens[1].to_owned(),
                    parse_num(tokens[2], line_no)?,
                    tokens[3].to_owned(),
                ));
            }
            "entry" => {
                if tokens.len() != 2 {
                    return Err(err(line_no, "entry METHOD"));
                }
                entry = Some((line_no, tokens[1].to_owned()));
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }

    // Pass 2: assemble bodies (methods and classes all known now).
    for src in sources {
        assemble_body(&mut b, &src, &classes, &methods)?;
    }
    for (line_no, cls_name, slot, method_name) in vtables {
        let cls = *classes
            .get(&cls_name)
            .ok_or_else(|| err(line_no, format!("unknown class `{cls_name}`")))?;
        let m = *methods
            .get(&method_name)
            .ok_or_else(|| err(line_no, format!("unknown method `{method_name}`")))?;
        b.set_vtable(cls, VirtualSlot::new(slot), m);
    }
    let (line_no, entry_name) = entry.ok_or_else(|| err(0, "missing `entry` directive"))?;
    let entry_id = *methods
        .get(&entry_name)
        .ok_or_else(|| err(line_no, format!("unknown entry method `{entry_name}`")))?;
    b.set_entry(entry_id);
    Ok(b.build()?)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

fn assemble_body(
    b: &mut ProgramBuilder,
    src: &MethodSource,
    classes: &HashMap<String, ClassId>,
    methods: &HashMap<String, MethodId>,
) -> Result<(), AsmError> {
    // Pre-scan labels so jumps can reference them in any order.
    let mut failed: Option<AsmError> = None;
    b.define(src.id, src.extra_locals, |c| {
        let mut labels: HashMap<&str, Label> = HashMap::new();
        for (_, text) in &src.body {
            if let Some(name) = text.strip_suffix(':') {
                labels.entry(name.trim()).or_insert_with(|| c.label());
            }
        }
        for (line_no, text) in &src.body {
            let line_no = *line_no;
            if let Some(name) = text.strip_suffix(':') {
                let label = labels[name.trim()];
                c.bind(label);
                continue;
            }
            let t: Vec<&str> = text.split_whitespace().collect();
            let op = t[0];
            let arg = |i: usize| -> Result<&str, AsmError> {
                t.get(i)
                    .copied()
                    .ok_or_else(|| err(line_no, format!("`{op}` needs an operand")))
            };
            let label_of = |name: &str| -> Result<Label, AsmError> {
                labels
                    .get(name)
                    .copied()
                    .ok_or_else(|| err(line_no, format!("unknown label `{name}`")))
            };
            let result: Result<(), AsmError> = (|| {
                match op {
                    "const" => {
                        c.const_(parse_num(arg(1)?, line_no)?);
                    }
                    "load" => {
                        c.load(parse_num(arg(1)?, line_no)?);
                    }
                    "store" => {
                        c.store(parse_num(arg(1)?, line_no)?);
                    }
                    "dup" => {
                        c.dup();
                    }
                    "pop" => {
                        c.pop();
                    }
                    "swap" => {
                        c.swap();
                    }
                    "add" => {
                        c.add();
                    }
                    "sub" => {
                        c.sub();
                    }
                    "mul" => {
                        c.mul();
                    }
                    "div" => {
                        c.div();
                    }
                    "rem" => {
                        c.rem();
                    }
                    "neg" => {
                        c.neg();
                    }
                    "and" => {
                        c.band();
                    }
                    "or" => {
                        c.bor();
                    }
                    "xor" => {
                        c.bxor();
                    }
                    "shl" => {
                        c.shl();
                    }
                    "shr" => {
                        c.shr();
                    }
                    "cmpeq" => {
                        c.cmp_eq();
                    }
                    "cmplt" => {
                        c.cmp_lt();
                    }
                    "cmpgt" => {
                        c.cmp_gt();
                    }
                    "jump" => {
                        let l = label_of(arg(1)?)?;
                        c.jump(l);
                    }
                    "jz" => {
                        let l = label_of(arg(1)?)?;
                        c.jump_if_zero(l);
                    }
                    "jnz" => {
                        let l = label_of(arg(1)?)?;
                        c.jump_if_non_zero(l);
                    }
                    "call" => {
                        let name = arg(1)?;
                        let m = *methods
                            .get(name)
                            .ok_or_else(|| err(line_no, format!("unknown method `{name}`")))?;
                        c.call(m);
                    }
                    "callvirt" => {
                        let slot: u16 = parse_num(arg(1)?, line_no)?;
                        let arity: u16 = parse_num(arg(2)?, line_no)?;
                        c.call_virtual(VirtualSlot::new(slot), arity);
                    }
                    "ret" => {
                        c.ret();
                    }
                    "getfield" => {
                        c.get_field(parse_num(arg(1)?, line_no)?);
                    }
                    "putfield" => {
                        c.put_field(parse_num(arg(1)?, line_no)?);
                    }
                    "new" => {
                        let name = arg(1)?;
                        let cls = *classes
                            .get(name)
                            .ok_or_else(|| err(line_no, format!("unknown class `{name}`")))?;
                        c.new_object(cls);
                    }
                    "guard" => {
                        let name = arg(1)?;
                        let cls = *classes
                            .get(name)
                            .ok_or_else(|| err(line_no, format!("unknown class `{name}`")))?;
                        let l = label_of(arg(2)?)?;
                        c.guard_class(cls, l);
                    }
                    "io" => {
                        c.io(parse_num(arg(1)?, line_no)?);
                    }
                    "nop" => {
                        c.nop();
                    }
                    other => return Err(err(line_no, format!("unknown instruction `{other}`"))),
                }
                Ok(())
            })();
            if let Err(e) = result {
                failed.get_or_insert(e);
                return;
            }
        }
    })?;
    match failed {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPES: &str = r#"
# A tiny polymorphic program.
class Shape fields=1
class Square extends=Shape fields=0

method Shape.area class=Shape params=1 locals=0 {
    load 0
    getfield 0
    ret
}

method Square.area class=Square params=1 locals=0 {
    load 0
    getfield 0
    dup
    mul
    ret
}

method main class=Shape params=0 locals=2 {
    new Square
    store 0
    load 0
    const 5
    putfield 0
    load 0
    callvirt 0 1
    ret
}

vtable Shape 0 Shape.area
vtable Square 0 Square.area
entry main
"#;

    #[test]
    fn assembles_and_runs_shapes() {
        let p = assemble(SHAPES).unwrap();
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.num_methods(), 3);
        assert_eq!(p.method_by_name("main").unwrap().id(), p.entry());
    }

    #[test]
    fn labels_and_loops() {
        let src = r#"
class C fields=0
method main class=C params=0 locals=2 {
    const 5
    store 0
head:
    load 0
    jz done
    load 1
    load 0
    add
    store 1
    load 0
    const 1
    sub
    store 0
    jump head
done:
    load 1
    ret
}
entry main
"#;
        let p = assemble(src).unwrap();
        assert!(p.method_by_name("main").unwrap().has_loop());
    }

    #[test]
    fn forward_method_references_work() {
        let src = r#"
class C fields=0
method main class=C params=0 locals=0 {
    call later
    ret
}
method later class=C params=0 locals=0 {
    const 7
    ret
}
entry main
"#;
        let p = assemble(src).unwrap();
        assert_eq!(p.num_methods(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("bogus directive\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bogus"));

        let src = "class C fields=0\nmethod m class=C params=0 locals=0 {\n  flub\n}\nentry m\n";
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("flub"));

        let src = "class C fields=0\nmethod m class=C params=0 locals=0 {\n  jump nowhere\n  ret\n}\nentry m\n";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn missing_entry_rejected() {
        let e = assemble("class C fields=0\n").unwrap_err();
        assert!(e.message.contains("entry"));
    }

    #[test]
    fn unknown_parent_rejected() {
        let e = assemble("class D fields=0 extends=Missing\n").unwrap_err();
        assert!(e.message.contains("Missing"));
    }

    #[test]
    fn unclosed_method_rejected() {
        let e = assemble("class C fields=0\nmethod m class=C params=0 locals=0 {\n  ret\n")
            .unwrap_err();
        assert!(e.message.contains('}'));
    }

    #[test]
    fn verifier_errors_surface() {
        // Body pops from an empty stack.
        let src = "class C fields=0\nmethod m class=C params=0 locals=0 {\n  pop\n  const 0\n  ret\n}\nentry m\n";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("verification"), "{e}");
    }
}

/// Emits a program back into the textual assembly grammar accepted by
/// [`assemble`], enabling save/load of programs and round-trip testing.
///
/// Method and class *names* must not contain whitespace or `#` for the
/// round trip to succeed (builder- and generator-produced names never
/// do). Call-site identities are not part of the text format, so a
/// reassembled program is behaviorally identical but may number its call
/// sites differently.
pub fn disassemble(program: &Program) -> String {
    use std::collections::HashSet;
    use std::fmt::Write as _;

    let mut out = String::new();
    for class in program.classes() {
        let base_fields = class
            .super_class()
            .map(|p| program.class(p).num_fields())
            .unwrap_or(0);
        match class.super_class() {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "class {} fields={} extends={}",
                    class.name(),
                    class.num_fields() - base_fields,
                    program.class(p).name()
                );
            }
            None => {
                let _ = writeln!(out, "class {} fields={}", class.name(), class.num_fields());
            }
        }
    }
    out.push('\n');

    for method in program.methods() {
        let _ = writeln!(
            out,
            "method {} class={} params={} locals={} {{",
            method.name(),
            program.class(method.class()).name(),
            method.num_params(),
            method.num_locals() - method.num_params(),
        );
        // Label every jump target.
        let targets: HashSet<u32> = method
            .code()
            .iter()
            .filter_map(crate::op::Op::jump_target)
            .collect();
        for (pc, op) in method.code().iter().enumerate() {
            if targets.contains(&(pc as u32)) {
                let _ = writeln!(out, "L{pc}:");
            }
            let line = match *op {
                crate::op::Op::Jump(t) => format!("jump L{t}"),
                crate::op::Op::JumpIfZero(t) => format!("jz L{t}"),
                crate::op::Op::JumpIfNonZero(t) => format!("jnz L{t}"),
                crate::op::Op::Call { target, .. } => {
                    format!("call {}", program.method(target).name())
                }
                crate::op::Op::CallVirtual { slot, arity, .. } => {
                    format!("callvirt {} {}", slot.index(), arity)
                }
                crate::op::Op::New(c) => format!("new {}", program.class(c).name()),
                crate::op::Op::GuardClass { class, not_taken } => {
                    format!("guard {} L{not_taken}", program.class(class).name())
                }
                crate::op::Op::Const(v) => format!("const {v}"),
                crate::op::Op::Load(n) => format!("load {n}"),
                crate::op::Op::Store(n) => format!("store {n}"),
                crate::op::Op::GetField(n) => format!("getfield {n}"),
                crate::op::Op::PutField(n) => format!("putfield {n}"),
                crate::op::Op::Io(n) => format!("io {n}"),
                crate::op::Op::Dup => "dup".to_owned(),
                crate::op::Op::Pop => "pop".to_owned(),
                crate::op::Op::Swap => "swap".to_owned(),
                crate::op::Op::Add => "add".to_owned(),
                crate::op::Op::Sub => "sub".to_owned(),
                crate::op::Op::Mul => "mul".to_owned(),
                crate::op::Op::Div => "div".to_owned(),
                crate::op::Op::Rem => "rem".to_owned(),
                crate::op::Op::Neg => "neg".to_owned(),
                crate::op::Op::And => "and".to_owned(),
                crate::op::Op::Or => "or".to_owned(),
                crate::op::Op::Xor => "xor".to_owned(),
                crate::op::Op::Shl => "shl".to_owned(),
                crate::op::Op::Shr => "shr".to_owned(),
                crate::op::Op::CmpEq => "cmpeq".to_owned(),
                crate::op::Op::CmpLt => "cmplt".to_owned(),
                crate::op::Op::CmpGt => "cmpgt".to_owned(),
                crate::op::Op::Return => "ret".to_owned(),
                crate::op::Op::Nop => "nop".to_owned(),
            };
            let _ = writeln!(out, "    {line}");
        }
        out.push_str("}\n\n");
    }

    for class in program.classes() {
        for (slot, m) in class.vtable().iter().enumerate() {
            let _ = writeln!(
                out,
                "vtable {} {} {}",
                class.name(),
                slot,
                program.method(*m).name()
            );
        }
    }
    let _ = writeln!(out, "entry {}", program.method(program.entry()).name());
    out
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn builder_program_round_trips_through_text() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 1);
        let f = b
            .function("Base.f", base, 1, 1, |c| {
                let done = c.label();
                c.load(0).get_field(0).store(1);
                c.load(1).jump_if_zero(done);
                c.load(1).const_(2).mul().store(1);
                c.bind(done).load(1).ret();
            })
            .unwrap();
        b.set_vtable(base, crate::ids::VirtualSlot::new(0), f);
        let sub = b.add_subclass("Sub", base, 1);
        let g = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.load(0).get_field(1).ret();
            })
            .unwrap();
        b.set_vtable(sub, crate::ids::VirtualSlot::new(0), g);
        let main = b
            .function("main", base, 0, 1, |c| {
                c.new_object(sub).store(0);
                c.load(0).call_virtual(crate::ids::VirtualSlot::new(0), 1);
                c.ret();
            })
            .unwrap();
        b.set_entry(main);
        let original = b.build().unwrap();

        let text = disassemble(&original);
        let rebuilt = assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));

        assert_eq!(rebuilt.num_classes(), original.num_classes());
        assert_eq!(rebuilt.num_methods(), original.num_methods());
        for (a, b) in original.methods().iter().zip(rebuilt.methods()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.num_params(), b.num_params());
            assert_eq!(a.num_locals(), b.num_locals());
            assert_eq!(a.len(), b.len(), "{}: {}", a.name(), disassemble(&rebuilt));
        }
        for (a, b) in original.classes().iter().zip(rebuilt.classes()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.num_fields(), b.num_fields());
            assert_eq!(a.vtable().len(), b.vtable().len());
        }
    }
}
