//! Class model: fields and virtual dispatch tables.

use crate::ids::{ClassId, MethodId, VirtualSlot};

/// A class: a field count and a vtable mapping virtual slots to methods.
///
/// Single inheritance is supported; a subclass starts from a copy of its
/// superclass's vtable and may override individual slots, which is what
/// produces the skewed receiver distributions the 40%-rule experiments need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    id: ClassId,
    name: String,
    super_class: Option<ClassId>,
    num_fields: u16,
    vtable: Vec<MethodId>,
}

impl Class {
    /// Creates a class. Prefer [`ProgramBuilder`](crate::ProgramBuilder).
    pub fn new(
        id: ClassId,
        name: impl Into<String>,
        super_class: Option<ClassId>,
        num_fields: u16,
        vtable: Vec<MethodId>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            super_class,
            num_fields,
            vtable,
        }
    }

    /// This class's identity.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Superclass, if any.
    pub fn super_class(&self) -> Option<ClassId> {
        self.super_class
    }

    /// Number of instance fields.
    pub fn num_fields(&self) -> u16 {
        self.num_fields
    }

    /// The virtual dispatch table (slot index → implementing method).
    pub fn vtable(&self) -> &[MethodId] {
        &self.vtable
    }

    /// Resolves a virtual slot to the implementing method.
    ///
    /// Returns `None` when the slot is out of range for this class.
    pub fn resolve(&self, slot: VirtualSlot) -> Option<MethodId> {
        self.vtable.get(slot.index()).copied()
    }

    /// Overrides (or appends) a vtable slot. Used by the builder.
    pub(crate) fn set_slot(&mut self, slot: VirtualSlot, method: MethodId) {
        let idx = slot.index();
        if idx >= self.vtable.len() {
            // Fill any gap with the method itself; the verifier rejects
            // programs that dispatch through a never-assigned slot.
            self.vtable.resize(idx + 1, method);
        }
        self.vtable[idx] = method;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_in_and_out_of_range() {
        let c = Class::new(
            ClassId::new(0),
            "A",
            None,
            2,
            vec![MethodId::new(3), MethodId::new(4)],
        );
        assert_eq!(c.resolve(VirtualSlot::new(0)), Some(MethodId::new(3)));
        assert_eq!(c.resolve(VirtualSlot::new(1)), Some(MethodId::new(4)));
        assert_eq!(c.resolve(VirtualSlot::new(2)), None);
    }

    #[test]
    fn set_slot_overrides_and_extends() {
        let mut c = Class::new(ClassId::new(0), "A", None, 0, vec![MethodId::new(1)]);
        c.set_slot(VirtualSlot::new(0), MethodId::new(9));
        assert_eq!(c.resolve(VirtualSlot::new(0)), Some(MethodId::new(9)));
        c.set_slot(VirtualSlot::new(2), MethodId::new(5));
        assert_eq!(c.vtable().len(), 3);
        assert_eq!(c.resolve(VirtualSlot::new(2)), Some(MethodId::new(5)));
    }

    #[test]
    fn metadata_accessors() {
        let c = Class::new(ClassId::new(7), "B", Some(ClassId::new(1)), 4, vec![]);
        assert_eq!(c.id(), ClassId::new(7));
        assert_eq!(c.name(), "B");
        assert_eq!(c.super_class(), Some(ClassId::new(1)));
        assert_eq!(c.num_fields(), 4);
    }
}
