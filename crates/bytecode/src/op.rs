//! The bytecode instruction set.
//!
//! The ISA is a small stack machine modeled on Java bytecode: operands live
//! on a per-frame operand stack, locals are indexed slots (parameters occupy
//! the first slots), and calls pass arguments by popping them from the
//! caller's stack into the callee's locals.
//!
//! Two properties matter for the profiling study and are reflected in the
//! design:
//!
//! 1. Every call instruction carries a [`CallSiteId`] so a dynamic call graph
//!    edge `(caller, site, callee)` can be attributed to a static site.
//! 2. There is no explicit yieldpoint instruction. As in Jikes RVM and J9,
//!    yieldpoints are implicit in method prologues, epilogues and loop
//!    backedges; the VM materializes them while interpreting.

use crate::ids::{CallSiteId, ClassId, MethodId, VirtualSlot};
use std::fmt;

/// A single bytecode instruction.
///
/// Jump targets are absolute instruction indices within the enclosing
/// method's code array. A jump whose target is `<=` its own index is a
/// *backedge* (see [`Op::is_backedge_from`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Push a constant integer.
    Const(i64),
    /// Push the value of local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the top two stack values.
    Swap,

    /// Pop two integers, push their sum.
    Add,
    /// Pop two integers, push `lhs - rhs`.
    Sub,
    /// Pop two integers, push their product.
    Mul,
    /// Pop two integers, push `lhs / rhs` (traps on division by zero).
    Div,
    /// Pop two integers, push `lhs % rhs` (traps on division by zero).
    Rem,
    /// Negate the top of stack.
    Neg,
    /// Pop two integers, push bitwise and.
    And,
    /// Pop two integers, push bitwise or.
    Or,
    /// Pop two integers, push bitwise xor.
    Xor,
    /// Pop two integers, push `lhs << (rhs & 63)`.
    Shl,
    /// Pop two integers, push `lhs >> (rhs & 63)` (arithmetic).
    Shr,

    /// Pop two integers, push 1 if equal else 0.
    CmpEq,
    /// Pop two integers, push 1 if `lhs < rhs` else 0.
    CmpLt,
    /// Pop two integers, push 1 if `lhs > rhs` else 0.
    CmpGt,

    /// Unconditional jump to the absolute instruction index.
    Jump(u32),
    /// Pop an integer; jump if it is zero.
    JumpIfZero(u32),
    /// Pop an integer; jump if it is non-zero.
    JumpIfNonZero(u32),

    /// Direct (statically bound) call.
    ///
    /// Pops the callee's `num_params` arguments (last argument on top) and
    /// transfers control. The callee's single return value is pushed on
    /// return.
    Call {
        /// Static identity of this call site.
        site: CallSiteId,
        /// The statically bound callee.
        target: MethodId,
    },
    /// Virtual (receiver-dispatched) call.
    ///
    /// Pops `arity` values where the *first* popped-last value (deepest) is
    /// the receiver reference; dispatches through the receiver class's
    /// vtable at `slot`.
    CallVirtual {
        /// Static identity of this call site.
        site: CallSiteId,
        /// Vtable slot to dispatch through.
        slot: VirtualSlot,
        /// Total argument count including the receiver.
        arity: u16,
    },
    /// Pop one value and return it to the caller.
    Return,

    /// Pop a receiver reference, push the value of its field `n`.
    GetField(u16),
    /// Pop a value then a receiver reference; store the value into field `n`.
    PutField(u16),
    /// Allocate a new object of the class, push its reference.
    New(ClassId),

    /// Pop a receiver reference; if its class is exactly the named class,
    /// fall through, otherwise jump to the target.
    ///
    /// This is the class-test guard the inliner emits in front of a
    /// guarded-inlined virtual call body.
    GuardClass {
        /// Expected exact receiver class.
        class: ClassId,
        /// Absolute jump target taken when the guard fails.
        not_taken: u32,
    },

    /// Simulated long-latency operation (I/O, system call).
    ///
    /// Costs `cost` I/O units of simulated time and pushes 0. Used by
    /// adversarial workloads: time-based samplers are drawn toward the
    /// instruction that follows a long-latency region.
    Io(u32),

    /// No operation (occupies simulated time like any other instruction).
    Nop,
}

impl Op {
    /// Returns `true` if this instruction is a call of either kind.
    pub fn is_call(&self) -> bool {
        matches!(self, Op::Call { .. } | Op::CallVirtual { .. })
    }

    /// Returns the call-site identity if this instruction is a call.
    pub fn call_site(&self) -> Option<CallSiteId> {
        match self {
            Op::Call { site, .. } | Op::CallVirtual { site, .. } => Some(*site),
            _ => None,
        }
    }

    /// Returns the jump target if this instruction can transfer control
    /// non-sequentially (excluding calls and returns).
    pub fn jump_target(&self) -> Option<u32> {
        match self {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNonZero(t) => Some(*t),
            Op::GuardClass { not_taken, .. } => Some(*not_taken),
            _ => None,
        }
    }

    /// Returns a copy of this instruction with its jump target replaced.
    ///
    /// Returns the instruction unchanged when it has no target. Used by code
    /// transformations that relocate instructions.
    pub fn with_jump_target(self, target: u32) -> Op {
        match self {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfZero(_) => Op::JumpIfZero(target),
            Op::JumpIfNonZero(_) => Op::JumpIfNonZero(target),
            Op::GuardClass { class, .. } => Op::GuardClass {
                class,
                not_taken: target,
            },
            other => other,
        }
    }

    /// Returns `true` if this instruction, located at index `pc`, is a loop
    /// backedge (a jump whose target does not move forward).
    pub fn is_backedge_from(&self, pc: u32) -> bool {
        self.jump_target().is_some_and(|t| t <= pc)
    }

    /// Returns `true` if control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Op::Jump(_) | Op::Return)
    }

    /// Net operand-stack effect (pushes minus pops), given callee arity
    /// resolution via `arity_of` for direct calls.
    ///
    /// Virtual calls carry their arity inline so `arity_of` is consulted
    /// only for [`Op::Call`].
    pub fn stack_effect<F: Fn(MethodId) -> u16>(&self, arity_of: F) -> i32 {
        match self {
            Op::Const(_) | Op::Load(_) | Op::New(_) | Op::Dup | Op::Io(_) => 1,
            Op::Store(_)
            | Op::Pop
            | Op::Return
            | Op::JumpIfZero(_)
            | Op::JumpIfNonZero(_)
            | Op::GuardClass { .. } => -1,
            Op::Swap | Op::Nop | Op::Jump(_) | Op::Neg | Op::GetField(_) => 0,
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::CmpEq
            | Op::CmpLt
            | Op::CmpGt => -1,
            Op::PutField(_) => -2,
            Op::Call { target, .. } => 1 - i32::from(arity_of(*target)),
            Op::CallVirtual { arity, .. } => 1 - i32::from(*arity),
        }
    }

    /// Modeled encoded size of this instruction in bytes.
    ///
    /// The study reports per-benchmark code sizes in kilobytes (Table 1) and
    /// the inliners reason in "bytecode bytes"; this models a plausible
    /// JVM-style encoding.
    pub fn encoded_size(&self) -> u32 {
        match self {
            Op::Nop | Op::Dup | Op::Pop | Op::Swap | Op::Return => 1,
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::Neg
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::CmpEq
            | Op::CmpLt
            | Op::CmpGt => 1,
            Op::Load(_) | Op::Store(_) => 2,
            Op::Const(_) => 3,
            Op::GetField(_) | Op::PutField(_) => 3,
            Op::Jump(_) | Op::JumpIfZero(_) | Op::JumpIfNonZero(_) => 3,
            Op::New(_) => 3,
            Op::Io(_) => 3,
            Op::Call { .. } => 3,
            Op::CallVirtual { .. } => 3,
            Op::GuardClass { .. } => 4,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const(v) => write!(f, "const {v}"),
            Op::Load(n) => write!(f, "load {n}"),
            Op::Store(n) => write!(f, "store {n}"),
            Op::Dup => write!(f, "dup"),
            Op::Pop => write!(f, "pop"),
            Op::Swap => write!(f, "swap"),
            Op::Add => write!(f, "add"),
            Op::Sub => write!(f, "sub"),
            Op::Mul => write!(f, "mul"),
            Op::Div => write!(f, "div"),
            Op::Rem => write!(f, "rem"),
            Op::Neg => write!(f, "neg"),
            Op::And => write!(f, "and"),
            Op::Or => write!(f, "or"),
            Op::Xor => write!(f, "xor"),
            Op::Shl => write!(f, "shl"),
            Op::Shr => write!(f, "shr"),
            Op::CmpEq => write!(f, "cmpeq"),
            Op::CmpLt => write!(f, "cmplt"),
            Op::CmpGt => write!(f, "cmpgt"),
            Op::Jump(t) => write!(f, "jump @{t}"),
            Op::JumpIfZero(t) => write!(f, "jz @{t}"),
            Op::JumpIfNonZero(t) => write!(f, "jnz @{t}"),
            Op::Call { site, target } => write!(f, "call {target} [{site}]"),
            Op::CallVirtual { site, slot, arity } => {
                write!(f, "callvirt {slot}/{arity} [{site}]")
            }
            Op::Return => write!(f, "return"),
            Op::GetField(n) => write!(f, "getfield {n}"),
            Op::PutField(n) => write!(f, "putfield {n}"),
            Op::New(c) => write!(f, "new {c}"),
            Op::GuardClass { class, not_taken } => {
                write!(f, "guard {class} else @{not_taken}")
            }
            Op::Io(cost) => write!(f, "io {cost}"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_predicates() {
        let c = Op::Call {
            site: CallSiteId::new(5),
            target: MethodId::new(1),
        };
        assert!(c.is_call());
        assert_eq!(c.call_site(), Some(CallSiteId::new(5)));
        assert!(!Op::Add.is_call());
        assert_eq!(Op::Add.call_site(), None);
    }

    #[test]
    fn backedge_detection() {
        assert!(Op::Jump(3).is_backedge_from(3));
        assert!(Op::Jump(0).is_backedge_from(10));
        assert!(!Op::Jump(11).is_backedge_from(10));
        assert!(!Op::Add.is_backedge_from(0));
    }

    #[test]
    fn jump_target_rewrite() {
        assert_eq!(Op::Jump(1).with_jump_target(9), Op::Jump(9));
        assert_eq!(Op::JumpIfZero(1).with_jump_target(9), Op::JumpIfZero(9));
        let g = Op::GuardClass {
            class: ClassId::new(2),
            not_taken: 4,
        };
        assert_eq!(
            g.with_jump_target(7),
            Op::GuardClass {
                class: ClassId::new(2),
                not_taken: 7
            }
        );
        // Non-jumps pass through unchanged.
        assert_eq!(Op::Mul.with_jump_target(9), Op::Mul);
    }

    #[test]
    fn stack_effects() {
        let arity = |_m: MethodId| 2u16;
        assert_eq!(Op::Const(1).stack_effect(arity), 1);
        assert_eq!(Op::Add.stack_effect(arity), -1);
        assert_eq!(Op::PutField(0).stack_effect(arity), -2);
        assert_eq!(
            Op::Call {
                site: CallSiteId::new(0),
                target: MethodId::new(0)
            }
            .stack_effect(arity),
            -1 // pops 2 args, pushes 1 result
        );
        assert_eq!(
            Op::CallVirtual {
                site: CallSiteId::new(0),
                slot: VirtualSlot::new(0),
                arity: 1
            }
            .stack_effect(arity),
            0 // pops receiver, pushes result
        );
    }

    #[test]
    fn fall_through() {
        assert!(!Op::Jump(0).falls_through());
        assert!(!Op::Return.falls_through());
        assert!(Op::JumpIfZero(0).falls_through());
        assert!(Op::Add.falls_through());
    }

    #[test]
    fn encoded_sizes_are_positive() {
        let ops = [
            Op::Nop,
            Op::Const(0),
            Op::Load(0),
            Op::GetField(1),
            Op::Jump(0),
            Op::Call {
                site: CallSiteId::new(0),
                target: MethodId::new(0),
            },
            Op::GuardClass {
                class: ClassId::new(0),
                not_taken: 0,
            },
        ];
        for op in ops {
            assert!(op.encoded_size() >= 1, "{op} has zero size");
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Op::Nop.to_string(), "nop");
        assert_eq!(Op::Const(7).to_string(), "const 7");
        assert_eq!(
            Op::CallVirtual {
                site: CallSiteId::new(1),
                slot: VirtualSlot::new(2),
                arity: 3
            }
            .to_string(),
            "callvirt v2/3 [s1]"
        );
    }
}
