//! Bytecode verification.
//!
//! The verifier enforces the structural invariants the interpreter relies
//! on, so the interpreter itself can trust (and cheaply `debug_assert`)
//! rather than re-validate:
//!
//! * jump targets stay within the method body,
//! * local slot indices stay within the declared frame,
//! * call targets exist and virtual slots resolve in every class that could
//!   flow to them,
//! * the operand stack has a single consistent depth at every instruction
//!   (computed by abstract interpretation) and never underflows,
//! * every path ends in `return`.

use crate::ids::MethodId;
use crate::op::Op;
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// A verification failure, pinpointing the offending method and pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A jump target is outside the method body.
    JumpOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A local slot index is outside the declared frame.
    LocalOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
        /// The out-of-range slot.
        slot: u16,
    },
    /// A direct call names a method id the program does not contain.
    UnknownCallTarget {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
    },
    /// A virtual call dispatches through a slot no class implements.
    UnresolvableSlot {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
        /// The dead slot index.
        slot: u16,
    },
    /// A `new` names a class id the program does not contain.
    UnknownClass {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
    },
    /// The operand stack would underflow at this instruction.
    StackUnderflow {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
    },
    /// Two control-flow paths reach an instruction with different stack
    /// depths.
    InconsistentStackDepth {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
        /// Depth recorded first.
        expected: u32,
        /// Conflicting depth.
        found: u32,
    },
    /// Control can fall off the end of the method body.
    FallsOffEnd {
        /// Offending method.
        method: MethodId,
    },
    /// A virtual call's declared arity disagrees with a resolvable target's
    /// parameter count.
    ArityMismatch {
        /// Offending method.
        method: MethodId,
        /// Offending instruction index.
        pc: u32,
    },
    /// The entry method takes parameters (the VM starts it with none).
    EntryHasParams,
    /// A method body is empty.
    EmptyBody {
        /// Offending method.
        method: MethodId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::JumpOutOfRange { method, pc, target } => {
                write!(f, "{method}@{pc}: jump target {target} out of range")
            }
            VerifyError::LocalOutOfRange { method, pc, slot } => {
                write!(f, "{method}@{pc}: local slot {slot} out of range")
            }
            VerifyError::UnknownCallTarget { method, pc } => {
                write!(f, "{method}@{pc}: unknown call target")
            }
            VerifyError::UnresolvableSlot { method, pc, slot } => {
                write!(f, "{method}@{pc}: no class implements virtual slot {slot}")
            }
            VerifyError::UnknownClass { method, pc } => {
                write!(f, "{method}@{pc}: unknown class")
            }
            VerifyError::StackUnderflow { method, pc } => {
                write!(f, "{method}@{pc}: operand stack underflow")
            }
            VerifyError::InconsistentStackDepth {
                method,
                pc,
                expected,
                found,
            } => write!(
                f,
                "{method}@{pc}: inconsistent stack depth ({expected} vs {found})"
            ),
            VerifyError::FallsOffEnd { method } => {
                write!(f, "{method}: control falls off the end of the body")
            }
            VerifyError::ArityMismatch { method, pc } => {
                write!(f, "{method}@{pc}: virtual call arity mismatch")
            }
            VerifyError::EntryHasParams => {
                write!(f, "entry method must take no parameters")
            }
            VerifyError::EmptyBody { method } => write!(f, "{method}: empty body"),
        }
    }
}

impl Error for VerifyError {}

/// Verifies every method of `program`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    if program.method(program.entry()).num_params() != 0 {
        return Err(VerifyError::EntryHasParams);
    }
    for m in program.methods() {
        verify_method(program, m.id())?;
    }
    Ok(())
}

/// Verifies a single method (used after per-method transformations).
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered in the method body.
pub fn verify_method(program: &Program, id: MethodId) -> Result<(), VerifyError> {
    let m = program.method(id);
    let code = m.code();
    if code.is_empty() {
        return Err(VerifyError::EmptyBody { method: id });
    }
    let len = code.len() as u32;

    // Structural checks.
    for (pc, op) in code.iter().enumerate() {
        let pc = pc as u32;
        if let Some(t) = op.jump_target() {
            if t >= len {
                return Err(VerifyError::JumpOutOfRange {
                    method: id,
                    pc,
                    target: t,
                });
            }
        }
        match *op {
            Op::Load(slot) | Op::Store(slot) if slot >= m.num_locals() => {
                return Err(VerifyError::LocalOutOfRange {
                    method: id,
                    pc,
                    slot,
                });
            }
            Op::Call { target, .. } if target.index() >= program.num_methods() => {
                return Err(VerifyError::UnknownCallTarget { method: id, pc });
            }
            Op::CallVirtual { slot, arity, .. } => {
                let targets = program.virtual_targets(slot);
                if targets.is_empty() {
                    return Err(VerifyError::UnresolvableSlot {
                        method: id,
                        pc,
                        slot: slot.0,
                    });
                }
                if targets
                    .iter()
                    .any(|t| program.method(*t).num_params() != arity)
                {
                    return Err(VerifyError::ArityMismatch { method: id, pc });
                }
            }
            Op::New(class) | Op::GuardClass { class, .. }
                if class.index() >= program.num_classes() =>
            {
                return Err(VerifyError::UnknownClass { method: id, pc });
            }
            _ => {}
        }
    }

    // Stack-depth abstract interpretation.
    let arity_of = |t: MethodId| program.method(t).num_params();
    let mut depth_at: Vec<Option<u32>> = vec![None; code.len()];
    let mut worklist = vec![(0u32, 0u32)];
    while let Some((pc, depth)) = worklist.pop() {
        match depth_at[pc as usize] {
            Some(d) if d == depth => continue,
            Some(d) => {
                return Err(VerifyError::InconsistentStackDepth {
                    method: id,
                    pc,
                    expected: d,
                    found: depth,
                });
            }
            None => depth_at[pc as usize] = Some(depth),
        }
        let op = &code[pc as usize];
        let pops = pops_of(op, arity_of);
        if depth < pops {
            return Err(VerifyError::StackUnderflow { method: id, pc });
        }
        let next_depth = (depth as i64 + i64::from(op.stack_effect(arity_of))) as u32;
        if op.falls_through() {
            if pc + 1 >= len {
                return Err(VerifyError::FallsOffEnd { method: id });
            }
            worklist.push((pc + 1, next_depth));
        }
        if let Some(t) = op.jump_target() {
            worklist.push((t, next_depth));
        }
    }
    Ok(())
}

fn pops_of<F: Fn(MethodId) -> u16>(op: &Op, arity_of: F) -> u32 {
    match *op {
        Op::Const(_) | Op::Load(_) | Op::New(_) | Op::Nop | Op::Jump(_) | Op::Io(_) => 0,
        Op::Store(_)
        | Op::Pop
        | Op::Return
        | Op::JumpIfZero(_)
        | Op::JumpIfNonZero(_)
        | Op::Neg
        | Op::Dup
        | Op::GetField(_)
        | Op::GuardClass { .. } => 1,
        Op::Swap
        | Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::Shl
        | Op::Shr
        | Op::CmpEq
        | Op::CmpLt
        | Op::CmpGt
        | Op::PutField(_) => 2,
        Op::Call { target, .. } => u32::from(arity_of(target)),
        Op::CallVirtual { arity, .. } => u32::from(arity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::Class;
    use crate::ids::{CallSiteId, ClassId};
    use crate::method::Method;

    fn raw_program(code: Vec<Op>, num_locals: u16) -> Program {
        let m = Method::new(
            MethodId::new(0),
            "main",
            ClassId::new(0),
            0,
            num_locals,
            code,
        );
        let c = Class::new(ClassId::new(0), "C", None, 1, vec![]);
        Program::from_parts(vec![c], vec![m], MethodId::new(0), 0)
    }

    #[test]
    fn accepts_valid_program() {
        let p = raw_program(vec![Op::Const(1), Op::Return], 0);
        verify(&p).unwrap();
    }

    #[test]
    fn rejects_jump_out_of_range() {
        let p = raw_program(vec![Op::Jump(9), Op::Const(0), Op::Return], 0);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::JumpOutOfRange { target: 9, .. })
        ));
    }

    #[test]
    fn rejects_local_out_of_range() {
        let p = raw_program(vec![Op::Load(3), Op::Return], 1);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::LocalOutOfRange { slot: 3, .. })
        ));
    }

    #[test]
    fn rejects_unknown_call_target() {
        let p = raw_program(
            vec![
                Op::Call {
                    site: CallSiteId::new(0),
                    target: MethodId::new(42),
                },
                Op::Return,
            ],
            0,
        );
        assert!(matches!(
            verify(&p),
            Err(VerifyError::UnknownCallTarget { .. })
        ));
    }

    #[test]
    fn rejects_stack_underflow() {
        let p = raw_program(vec![Op::Add, Op::Return], 0);
        assert!(matches!(
            verify(&p),
            Err(VerifyError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn rejects_fall_off_end() {
        let p = raw_program(vec![Op::Const(1), Op::Pop], 0);
        assert!(matches!(verify(&p), Err(VerifyError::FallsOffEnd { .. })));
    }

    #[test]
    fn rejects_inconsistent_depths() {
        // Two paths reach pc 4 with different stack depths:
        //   0: const 1
        //   1: jz @3     (pops; depth 0 -> jumps to 3 at depth 0)
        //   2: const 5   (depth 1 at pc 3 via fallthrough)
        //   3: const 7   <- reached at depth 0 (jump) and depth 1 (fall)
        //   4: return
        let p = raw_program(
            vec![
                Op::Const(1),
                Op::JumpIfZero(3),
                Op::Const(5),
                Op::Const(7),
                Op::Return,
            ],
            0,
        );
        assert!(matches!(
            verify(&p),
            Err(VerifyError::InconsistentStackDepth { .. })
        ));
    }

    #[test]
    fn rejects_empty_body() {
        let p = raw_program(vec![], 0);
        assert!(matches!(verify(&p), Err(VerifyError::EmptyBody { .. })));
    }

    #[test]
    fn rejects_entry_with_params() {
        let m = Method::new(
            MethodId::new(0),
            "main",
            ClassId::new(0),
            1,
            1,
            vec![Op::Const(1), Op::Return],
        );
        let c = Class::new(ClassId::new(0), "C", None, 0, vec![]);
        let p = Program::from_parts(vec![c], vec![m], MethodId::new(0), 0);
        assert_eq!(verify(&p), Err(VerifyError::EntryHasParams));
    }

    #[test]
    fn rejects_unresolvable_virtual_slot() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.new_object(cls)
                    .call_virtual(crate::ids::VirtualSlot::new(5), 1)
                    .ret();
            })
            .unwrap();
        b.set_entry(main);
        match b.build() {
            Err(crate::builder::BuildError::Verify(VerifyError::UnresolvableSlot {
                slot, ..
            })) => assert_eq!(slot, 5),
            other => panic!("expected UnresolvableSlot, got {other:?}"),
        }
    }

    #[test]
    fn rejects_virtual_arity_mismatch() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 2, 0, |c| {
                c.const_(0).ret();
            })
            .unwrap();
        b.set_vtable(cls, crate::ids::VirtualSlot::new(0), f);
        let main = b
            .function("main", cls, 0, 0, |c| {
                // arity 1, but target takes 2 params
                c.new_object(cls)
                    .call_virtual(crate::ids::VirtualSlot::new(0), 1)
                    .ret();
            })
            .unwrap();
        b.set_entry(main);
        assert!(matches!(
            b.build(),
            Err(crate::builder::BuildError::Verify(
                VerifyError::ArityMismatch { .. }
            ))
        ));
    }

    #[test]
    fn verify_method_checks_single_method() {
        let mut p = raw_program(vec![Op::Const(1), Op::Return], 0);
        verify_method(&p, MethodId::new(0)).unwrap();
        p.replace_method(MethodId::new(0), vec![Op::Pop, Op::Return]);
        assert!(verify_method(&p, MethodId::new(0)).is_err());
    }
}
