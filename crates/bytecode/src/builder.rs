//! Fluent construction of [`Program`]s.
//!
//! The builder supports forward references (declare a method id first, define
//! its body later), label-based control flow, and automatic allocation of
//! call-site identities.
//!
//! ```
//! use cbs_bytecode::{ProgramBuilder, VirtualSlot};
//!
//! # fn main() -> Result<(), cbs_bytecode::BuildError> {
//! let mut b = ProgramBuilder::new();
//! let cls = b.add_class("Main", 0);
//! let add1 = b.declare("Main.add1", cls, 1);
//! let main = b.declare("Main.main", cls, 0);
//! b.define(add1, 1, |c| {
//!     c.load(0).const_(1).add().ret();
//! })?;
//! b.define(main, 0, |c| {
//!     c.const_(41).call(add1).ret();
//! })?;
//! b.set_entry(main);
//! let program = b.build()?;
//! assert_eq!(program.num_methods(), 2);
//! # Ok(())
//! # }
//! ```

use crate::class::Class;
use crate::ids::{CallSiteId, ClassId, MethodId, VirtualSlot};
use crate::method::Method;
use crate::op::Op;
use crate::program::Program;
use crate::verify::{self, VerifyError};
use std::error::Error;
use std::fmt;

/// Error produced while assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A declared method was never given a body.
    UndefinedMethod(String),
    /// `set_entry` was never called.
    NoEntry,
    /// A label was referenced but never bound.
    UnboundLabel {
        /// Method whose body references the label.
        method: String,
        /// Index of the unbound label.
        label: usize,
    },
    /// The assembled program failed bytecode verification.
    Verify(VerifyError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedMethod(name) => {
                write!(f, "method `{name}` was declared but never defined")
            }
            BuildError::NoEntry => write!(f, "no entry method was set"),
            BuildError::UnboundLabel { method, label } => {
                write!(f, "label {label} in method `{method}` was never bound")
            }
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifyError> for BuildError {
    fn from(e: VerifyError) -> Self {
        BuildError::Verify(e)
    }
}

/// A forward-referenceable code label used by [`CodeBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug)]
struct PendingMethod {
    name: String,
    class: ClassId,
    num_params: u16,
    body: Option<(u16, Vec<Op>)>, // (num_locals, code)
}

/// Incremental builder for [`Program`]s.
///
/// Supports forward references (declare, then define), label-based
/// control flow through [`CodeBuilder`], and automatic call-site
/// allocation; see the doctest on [`ProgramBuilder::define`]'s module for
/// a complete example, or write programs textually with
/// [`assemble`](crate::asm::assemble).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<PendingMethod>,
    entry: Option<MethodId>,
    next_site: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a root class with `num_fields` instance fields.
    pub fn add_class(&mut self, name: impl Into<String>, num_fields: u16) -> ClassId {
        let id = ClassId::new(self.classes.len() as u32);
        self.classes
            .push(Class::new(id, name, None, num_fields, Vec::new()));
        id
    }

    /// Adds a subclass. The subclass inherits its parent's vtable and field
    /// count (plus `extra_fields`).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a class of this builder.
    pub fn add_subclass(
        &mut self,
        name: impl Into<String>,
        parent: ClassId,
        extra_fields: u16,
    ) -> ClassId {
        let id = ClassId::new(self.classes.len() as u32);
        let p = &self.classes[parent.index()];
        let vtable = p.vtable().to_vec();
        let fields = p.num_fields() + extra_fields;
        self.classes
            .push(Class::new(id, name, Some(parent), fields, vtable));
        id
    }

    /// Declares a method without a body, returning an id usable in call
    /// instructions (enables recursion and forward references).
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        class: ClassId,
        num_params: u16,
    ) -> MethodId {
        let id = MethodId::new(self.methods.len() as u32);
        self.methods.push(PendingMethod {
            name: name.into(),
            class,
            num_params,
            body: None,
        });
        id
    }

    /// Defines the body of a previously declared method.
    ///
    /// `extra_locals` is the number of non-parameter local slots. The
    /// closure receives a [`CodeBuilder`] to emit instructions.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if the body references a label
    /// that was never bound.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared on this builder.
    pub fn define(
        &mut self,
        id: MethodId,
        extra_locals: u16,
        f: impl FnOnce(&mut CodeBuilder<'_>),
    ) -> Result<(), BuildError> {
        let num_params = self.methods[id.index()].num_params;
        let mut cb = CodeBuilder {
            ops: Vec::new(),
            labels: Vec::new(),
            next_site: &mut self.next_site,
        };
        f(&mut cb);
        let CodeBuilder { ops, labels, .. } = cb;
        // Resolve label placeholders: jump targets were recorded as label
        // ids offset by LABEL_BASE.
        let mut code = Vec::with_capacity(ops.len());
        for op in ops {
            let resolved = match op.jump_target() {
                Some(t) if t >= LABEL_BASE => {
                    let label = (t - LABEL_BASE) as usize;
                    let target = labels.get(label).copied().flatten().ok_or_else(|| {
                        BuildError::UnboundLabel {
                            method: self.methods[id.index()].name.clone(),
                            label,
                        }
                    })?;
                    op.with_jump_target(target)
                }
                _ => op,
            };
            code.push(resolved);
        }
        self.methods[id.index()].body = Some((num_params + extra_locals, code));
        Ok(())
    }

    /// Declares and defines a method in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::UnboundLabel`] from [`Self::define`].
    pub fn function(
        &mut self,
        name: impl Into<String>,
        class: ClassId,
        num_params: u16,
        extra_locals: u16,
        f: impl FnOnce(&mut CodeBuilder<'_>),
    ) -> Result<MethodId, BuildError> {
        let id = self.declare(name, class, num_params);
        self.define(id, extra_locals, f)?;
        Ok(id)
    }

    /// Installs `method` into `class`'s vtable at `slot` (override or
    /// extend).
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a class of this builder.
    pub fn set_vtable(&mut self, class: ClassId, slot: VirtualSlot, method: MethodId) {
        self.classes[class.index()].set_slot(slot, method);
    }

    /// Sets the entry method.
    pub fn set_entry(&mut self, entry: MethodId) {
        self.entry = Some(entry);
    }

    /// Number of call sites allocated so far.
    pub fn num_call_sites(&self) -> u32 {
        self.next_site
    }

    /// Finishes the program, running the bytecode verifier.
    ///
    /// # Errors
    ///
    /// Returns an error if a declared method lacks a body, no entry was
    /// set, or verification fails.
    pub fn build(self) -> Result<Program, BuildError> {
        let entry = self.entry.ok_or(BuildError::NoEntry)?;
        let mut methods = Vec::with_capacity(self.methods.len());
        for (i, pm) in self.methods.into_iter().enumerate() {
            let (num_locals, code) = pm
                .body
                .ok_or_else(|| BuildError::UndefinedMethod(pm.name.clone()))?;
            methods.push(Method::new(
                MethodId::new(i as u32),
                pm.name,
                pm.class,
                pm.num_params,
                num_locals,
                code,
            ));
        }
        let program = Program::from_parts(self.classes, methods, entry, self.next_site);
        verify::verify(&program)?;
        Ok(program)
    }
}

/// Sentinel offset distinguishing unresolved label references from real
/// instruction indices while a body is being built. No method body may reach
/// this many instructions.
const LABEL_BASE: u32 = 1 << 30;

/// Emits instructions for one method body.
///
/// All emit methods return `&mut Self` for chaining. Control flow uses
/// [`Label`]s created by [`CodeBuilder::label`] and placed by
/// [`CodeBuilder::bind`].
#[derive(Debug)]
pub struct CodeBuilder<'a> {
    ops: Vec<Op>,
    labels: Vec<Option<u32>>,
    next_site: &'a mut u32,
}

impl CodeBuilder<'_> {
    /// Current instruction index (where the next emitted op will land).
    pub fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        self.labels[label.0] = Some(self.here());
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    fn site(&mut self) -> CallSiteId {
        let s = CallSiteId::new(*self.next_site);
        *self.next_site += 1;
        s
    }

    /// Emits `const`.
    pub fn const_(&mut self, v: i64) -> &mut Self {
        self.emit(Op::Const(v))
    }

    /// Emits `load`.
    pub fn load(&mut self, slot: u16) -> &mut Self {
        self.emit(Op::Load(slot))
    }

    /// Emits `store`.
    pub fn store(&mut self, slot: u16) -> &mut Self {
        self.emit(Op::Store(slot))
    }

    /// Emits `dup`.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Op::Dup)
    }

    /// Emits `pop`.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Op::Pop)
    }

    /// Emits `swap`.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Op::Swap)
    }

    /// Emits `add`.
    pub fn add(&mut self) -> &mut Self {
        self.emit(Op::Add)
    }

    /// Emits `sub`.
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Op::Sub)
    }

    /// Emits `mul`.
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Op::Mul)
    }

    /// Emits `div`.
    pub fn div(&mut self) -> &mut Self {
        self.emit(Op::Div)
    }

    /// Emits `rem`.
    pub fn rem(&mut self) -> &mut Self {
        self.emit(Op::Rem)
    }

    /// Emits `neg`.
    pub fn neg(&mut self) -> &mut Self {
        self.emit(Op::Neg)
    }

    /// Emits `and`.
    pub fn band(&mut self) -> &mut Self {
        self.emit(Op::And)
    }

    /// Emits `or`.
    pub fn bor(&mut self) -> &mut Self {
        self.emit(Op::Or)
    }

    /// Emits `xor`.
    pub fn bxor(&mut self) -> &mut Self {
        self.emit(Op::Xor)
    }

    /// Emits `shl`.
    pub fn shl(&mut self) -> &mut Self {
        self.emit(Op::Shl)
    }

    /// Emits `shr`.
    pub fn shr(&mut self) -> &mut Self {
        self.emit(Op::Shr)
    }

    /// Emits `cmpeq`.
    pub fn cmp_eq(&mut self) -> &mut Self {
        self.emit(Op::CmpEq)
    }

    /// Emits `cmplt`.
    pub fn cmp_lt(&mut self) -> &mut Self {
        self.emit(Op::CmpLt)
    }

    /// Emits `cmpgt`.
    pub fn cmp_gt(&mut self) -> &mut Self {
        self.emit(Op::CmpGt)
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.emit(Op::Jump(LABEL_BASE + label.0 as u32))
    }

    /// Emits a jump-if-zero to `label`.
    pub fn jump_if_zero(&mut self, label: Label) -> &mut Self {
        self.emit(Op::JumpIfZero(LABEL_BASE + label.0 as u32))
    }

    /// Emits a jump-if-non-zero to `label`.
    pub fn jump_if_non_zero(&mut self, label: Label) -> &mut Self {
        self.emit(Op::JumpIfNonZero(LABEL_BASE + label.0 as u32))
    }

    /// Emits a direct call to `target`, allocating a fresh call site.
    pub fn call(&mut self, target: MethodId) -> &mut Self {
        let site = self.site();
        self.emit(Op::Call { site, target })
    }

    /// Emits a virtual call through `slot` with `arity` arguments
    /// (receiver included), allocating a fresh call site.
    pub fn call_virtual(&mut self, slot: VirtualSlot, arity: u16) -> &mut Self {
        let site = self.site();
        self.emit(Op::CallVirtual { site, slot, arity })
    }

    /// Emits `return`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Op::Return)
    }

    /// Emits `getfield`.
    pub fn get_field(&mut self, field: u16) -> &mut Self {
        self.emit(Op::GetField(field))
    }

    /// Emits `putfield`.
    pub fn put_field(&mut self, field: u16) -> &mut Self {
        self.emit(Op::PutField(field))
    }

    /// Emits `new`.
    pub fn new_object(&mut self, class: ClassId) -> &mut Self {
        self.emit(Op::New(class))
    }

    /// Emits a class guard that jumps to `not_taken` on mismatch.
    pub fn guard_class(&mut self, class: ClassId, not_taken: Label) -> &mut Self {
        self.emit(Op::GuardClass {
            class,
            not_taken: LABEL_BASE + not_taken.0 as u32,
        })
    }

    /// Emits a simulated I/O operation of the given cost.
    pub fn io(&mut self, cost: u32) -> &mut Self {
        self.emit(Op::Io(cost))
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Op::Nop)
    }

    /// Emits `n` consecutive nops (useful for padding non-call regions in
    /// adversarial workloads).
    pub fn nops(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.emit(Op::Nop);
        }
        self
    }

    /// Emits a counted loop running `count` times around the body emitted
    /// by `body`, using `counter_slot` as the induction variable.
    ///
    /// The loop structure is `counter = count; while (counter != 0) { body;
    /// counter -= 1 }`, producing a backedge yieldpoint per iteration.
    pub fn counted_loop(
        &mut self,
        counter_slot: u16,
        count: i64,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let head = self.label();
        let exit = self.label();
        self.const_(count).store(counter_slot);
        self.bind(head);
        self.load(counter_slot).jump_if_zero(exit);
        body(self);
        self.load(counter_slot).const_(1).sub().store(counter_slot);
        self.jump(head);
        self.bind(exit);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_program_with_forward_reference() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b.declare("f", cls, 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.call(f).ret();
            })
            .unwrap();
        b.define(f, 0, |c| {
            c.const_(1).ret();
        })
        .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        assert_eq!(p.num_methods(), 2);
        assert_eq!(p.num_call_sites(), 1);
    }

    #[test]
    fn undefined_method_is_an_error() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b.declare("ghost", cls, 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.call(f).ret();
            })
            .unwrap();
        b.set_entry(main);
        match b.build() {
            Err(BuildError::UndefinedMethod(name)) => assert_eq!(name, "ghost"),
            other => panic!("expected UndefinedMethod, got {other:?}"),
        }
    }

    #[test]
    fn missing_entry_is_an_error() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        b.function("f", cls, 0, 0, |c| {
            c.const_(0).ret();
        })
        .unwrap();
        assert_eq!(b.build().unwrap_err(), BuildError::NoEntry);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b.declare("f", cls, 0);
        let err = b
            .define(f, 0, |c| {
                let l = c.label();
                c.jump(l).const_(0).ret();
            })
            .unwrap_err();
        assert!(matches!(err, BuildError::UnboundLabel { label: 0, .. }));
    }

    #[test]
    fn labels_resolve_to_bound_positions() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 3, |c| {
                    c.nop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let code = p.method(main).code();
        // Every jump target is a real instruction index now.
        for op in code {
            if let Some(t) = op.jump_target() {
                assert!((t as usize) <= code.len(), "unresolved target in {op}");
                assert!(t < LABEL_BASE);
            }
        }
    }

    #[test]
    fn subclass_inherits_vtable() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 1);
        let f = b
            .function("Base.f", base, 1, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        b.set_vtable(base, VirtualSlot::new(0), f);
        let sub = b.add_subclass("Sub", base, 2);
        let g = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.const_(2).ret();
            })
            .unwrap();
        let main = b
            .function("main", base, 0, 0, |c| {
                c.new_object(sub).call_virtual(VirtualSlot::new(0), 1).ret();
            })
            .unwrap();
        b.set_vtable(sub, VirtualSlot::new(0), g);
        b.set_entry(main);
        let p = b.build().unwrap();
        assert_eq!(
            p.class(sub).resolve(VirtualSlot::new(0)),
            Some(g),
            "override should land in subclass vtable"
        );
        assert_eq!(p.class(base).resolve(VirtualSlot::new(0)), Some(f));
        assert_eq!(p.class(sub).num_fields(), 3);
    }

    #[test]
    fn call_sites_are_unique_across_methods() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.const_(0).ret();
            })
            .unwrap();
        let g = b
            .function("g", cls, 0, 0, |c| {
                c.call(f).call(f).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.call(g).call(f).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let mut sites: Vec<_> = p
            .methods()
            .iter()
            .flat_map(|m| m.call_instructions().map(|(_, s, _)| s))
            .collect();
        sites.sort_unstable();
        let before = sites.len();
        sites.dedup();
        assert_eq!(before, sites.len(), "duplicate call sites");
        assert_eq!(before as u32, p.num_call_sites());
    }
}
