//! Strongly-typed identifiers for program entities.
//!
//! Every entity a profiler can observe — a method, a class, a call site —
//! gets its own newtype so that indices cannot be confused with one another
//! ([C-NEWTYPE]). All identifiers are dense indices assigned by
//! [`ProgramBuilder`](crate::ProgramBuilder).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw dense index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type! {
    /// Identifies a method within a [`Program`](crate::Program).
    ///
    /// `MethodId`s are dense: they index directly into
    /// [`Program::methods`](crate::Program::methods).
    MethodId, "m"
}

id_type! {
    /// Identifies a class within a [`Program`](crate::Program).
    ClassId, "c"
}

id_type! {
    /// Identifies a *static occurrence* of a call instruction.
    ///
    /// Call sites are the middle component of a dynamic-call-graph edge
    /// `(caller, site, callee)`. Site identity is preserved across program
    /// transformations (e.g. when the inliner duplicates a call instruction
    /// into an inlined body, the duplicate keeps the original site id so
    /// profile data stays attributable).
    CallSiteId, "s"
}

/// Index of a virtual-dispatch slot in a class's vtable.
///
/// A [`CallVirtual`](crate::Op::CallVirtual) instruction names a slot; the
/// receiver object's class maps the slot to a concrete [`MethodId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualSlot(pub u16);

impl VirtualSlot {
    /// Creates a slot from a raw vtable index.
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// Returns the raw vtable index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VirtualSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(MethodId::new(3).to_string(), "m3");
        assert_eq!(ClassId::new(0).to_string(), "c0");
        assert_eq!(CallSiteId::new(42).to_string(), "s42");
        assert_eq!(VirtualSlot::new(7).to_string(), "v7");
    }

    #[test]
    fn ids_round_trip_index() {
        assert_eq!(MethodId::new(9).index(), 9);
        assert_eq!(u32::from(CallSiteId::new(11)), 11);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(MethodId::new(1));
        set.insert(MethodId::new(1));
        set.insert(MethodId::new(2));
        assert_eq!(set.len(), 2);
        assert!(MethodId::new(1) < MethodId::new(2));
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: MethodId and ClassId are distinct types.
        // This test documents the intent; the assertion is trivially true.
        let m = MethodId::new(0);
        let c = ClassId::new(0);
        assert_eq!(m.index(), c.index());
    }
}
