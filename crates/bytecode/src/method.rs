//! Method representation.

use crate::ids::{CallSiteId, ClassId, MethodId};
use crate::op::Op;

/// A compiled method: metadata plus its bytecode body.
///
/// Methods are owned by a [`Program`](crate::Program) and referenced by
/// [`MethodId`]. The first `num_params` local slots hold the arguments; for
/// virtual methods local 0 is the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    id: MethodId,
    name: String,
    class: ClassId,
    num_params: u16,
    num_locals: u16,
    code: Vec<Op>,
}

impl Method {
    /// Creates a method. Prefer building through
    /// [`ProgramBuilder`](crate::ProgramBuilder), which assigns ids and call
    /// sites consistently.
    pub fn new(
        id: MethodId,
        name: impl Into<String>,
        class: ClassId,
        num_params: u16,
        num_locals: u16,
        code: Vec<Op>,
    ) -> Self {
        debug_assert!(num_locals >= num_params, "locals must include params");
        Self {
            id,
            name: name.into(),
            class,
            num_params,
            num_locals,
            code,
        }
    }

    /// This method's identity.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// Human-readable name (e.g. `"Parser.parseExpr"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declaring class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of parameters (receiver included for virtual methods).
    pub fn num_params(&self) -> u16 {
        self.num_params
    }

    /// Total local slots (parameters occupy the first slots).
    pub fn num_locals(&self) -> u16 {
        self.num_locals
    }

    /// The bytecode body.
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// Replaces the bytecode body (used by program transformations).
    ///
    /// The caller is responsible for re-verifying the program afterwards.
    pub fn set_code(&mut self, code: Vec<Op>) {
        self.code = code;
    }

    /// Grows the local-variable frame to at least `n` slots (used by the
    /// inliner when splicing callee locals into a caller frame).
    pub fn ensure_locals(&mut self, n: u16) {
        self.num_locals = self.num_locals.max(n);
    }

    /// Modeled size of this method's body in bytecode bytes.
    ///
    /// This is the quantity the paper's inlining heuristics threshold on.
    pub fn size_bytes(&self) -> u32 {
        self.code.iter().map(Op::encoded_size).sum()
    }

    /// Number of instructions in the body.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` for the degenerate empty body.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Returns `true` if the body contains a loop backedge.
    ///
    /// Loop-free methods never execute a backedge yieldpoint, which matters
    /// for where timer samples can land.
    pub fn has_loop(&self) -> bool {
        self.code
            .iter()
            .enumerate()
            .any(|(pc, op)| op.is_backedge_from(pc as u32))
    }

    /// Iterates over the call instructions in this body as
    /// `(pc, site, op)` triples.
    pub fn call_instructions(&self) -> impl Iterator<Item = (u32, CallSiteId, &Op)> + '_ {
        self.code
            .iter()
            .enumerate()
            .filter_map(|(pc, op)| op.call_site().map(|site| (pc as u32, site, op)))
    }

    /// Returns `true` if this method is "trivial" under the study's
    /// baseline configuration: a body no larger than a calling sequence
    /// (`threshold` bytes) containing no calls of its own.
    ///
    /// Trivial methods are inlined even at the lowest optimization level, so
    /// they never appear as DCG callees in the JIT-only configuration.
    pub fn is_trivial(&self, threshold: u32) -> bool {
        self.size_bytes() <= threshold && !self.code.iter().any(Op::is_call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VirtualSlot;

    fn sample_method() -> Method {
        Method::new(
            MethodId::new(0),
            "A.f",
            ClassId::new(0),
            1,
            3,
            vec![
                Op::Load(0),
                Op::Const(1),
                Op::Add,
                Op::Store(1),
                Op::Load(1),
                Op::JumpIfNonZero(0),
                Op::Const(0),
                Op::Return,
            ],
        )
    }

    #[test]
    fn accessors() {
        let m = sample_method();
        assert_eq!(m.id(), MethodId::new(0));
        assert_eq!(m.name(), "A.f");
        assert_eq!(m.class(), ClassId::new(0));
        assert_eq!(m.num_params(), 1);
        assert_eq!(m.num_locals(), 3);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
    }

    #[test]
    fn loop_detection() {
        let m = sample_method();
        assert!(m.has_loop());
        let straight = Method::new(
            MethodId::new(1),
            "g",
            ClassId::new(0),
            0,
            0,
            vec![Op::Const(1), Op::Return],
        );
        assert!(!straight.has_loop());
    }

    #[test]
    fn size_accumulates_encoded_sizes() {
        let m = Method::new(
            MethodId::new(0),
            "f",
            ClassId::new(0),
            0,
            0,
            vec![Op::Const(1), Op::Return],
        );
        assert_eq!(m.size_bytes(), 3 + 1);
    }

    #[test]
    fn call_instruction_iteration() {
        let m = Method::new(
            MethodId::new(0),
            "f",
            ClassId::new(0),
            0,
            1,
            vec![
                Op::Const(1),
                Op::Call {
                    site: CallSiteId::new(7),
                    target: MethodId::new(1),
                },
                Op::New(ClassId::new(0)),
                Op::CallVirtual {
                    site: CallSiteId::new(8),
                    slot: VirtualSlot::new(0),
                    arity: 1,
                },
                Op::Return,
            ],
        );
        let sites: Vec<_> = m.call_instructions().map(|(pc, s, _)| (pc, s)).collect();
        assert_eq!(
            sites,
            vec![(1, CallSiteId::new(7)), (3, CallSiteId::new(8))]
        );
    }

    #[test]
    fn triviality() {
        let tiny = Method::new(
            MethodId::new(0),
            "getter",
            ClassId::new(0),
            1,
            1,
            vec![Op::Load(0), Op::GetField(0), Op::Return],
        );
        assert!(tiny.is_trivial(10));
        assert!(!tiny.is_trivial(3));
        let calls = Method::new(
            MethodId::new(1),
            "f",
            ClassId::new(0),
            0,
            0,
            vec![
                Op::Call {
                    site: CallSiteId::new(0),
                    target: MethodId::new(0),
                },
                Op::Return,
            ],
        );
        assert!(!calls.is_trivial(100), "methods with calls are not trivial");
    }

    #[test]
    fn ensure_locals_grows_only() {
        let mut m = sample_method();
        m.ensure_locals(10);
        assert_eq!(m.num_locals(), 10);
        m.ensure_locals(2);
        assert_eq!(m.num_locals(), 10);
    }
}
