//! Whole-program container.

use crate::class::Class;
use crate::ids::{CallSiteId, ClassId, MethodId};
use crate::method::Method;
use crate::op::Op;
use std::collections::HashMap;

/// A complete executable program: classes, methods and an entry method.
///
/// Programs are immutable once built except through explicit transformation
/// APIs ([`Program::replace_method`], [`Program::add_method`]) used by the
/// optimizer and inliner, which must be followed by re-verification
/// ([`crate::verify::verify`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    classes: Vec<Class>,
    methods: Vec<Method>,
    entry: MethodId,
    /// Total number of distinct call sites ever allocated; transformations
    /// allocate fresh sites from here.
    next_site: u32,
}

impl Program {
    /// Assembles a program from parts. Prefer
    /// [`ProgramBuilder`](crate::ProgramBuilder).
    pub fn from_parts(
        classes: Vec<Class>,
        methods: Vec<Method>,
        entry: MethodId,
        next_site: u32,
    ) -> Self {
        Self {
            classes,
            methods,
            entry,
            next_site,
        }
    }

    /// All classes, indexed by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// All methods, indexed by [`MethodId`].
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// The entry method executed by the VM.
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Looks up a method.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated for this program.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Mutable method lookup for transformation passes.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated for this program.
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.index()]
    }

    /// Looks up a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated for this program.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up a method by name, if present.
    pub fn method_by_name(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name() == name)
    }

    /// Number of methods.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total modeled bytecode size in bytes (Table 1's "Size" column is
    /// this quantity restricted to *executed* methods, which the VM
    /// reports).
    pub fn total_size_bytes(&self) -> u64 {
        self.methods.iter().map(|m| u64::from(m.size_bytes())).sum()
    }

    /// Number of distinct call sites allocated so far.
    pub fn num_call_sites(&self) -> u32 {
        self.next_site
    }

    /// Allocates a fresh call-site identity (for transformations that
    /// introduce new call instructions).
    pub fn alloc_call_site(&mut self) -> CallSiteId {
        let id = CallSiteId::new(self.next_site);
        self.next_site += 1;
        id
    }

    /// Replaces a method body wholesale (optimizer / inliner output).
    pub fn replace_method(&mut self, id: MethodId, code: Vec<Op>) {
        self.methods[id.index()].set_code(code);
    }

    /// Adds a new method (e.g. an outlined cold path) and returns its id.
    pub fn add_method(
        &mut self,
        name: impl Into<String>,
        class: ClassId,
        num_params: u16,
        num_locals: u16,
        code: Vec<Op>,
    ) -> MethodId {
        let id = MethodId::new(self.methods.len() as u32);
        self.methods
            .push(Method::new(id, name, class, num_params, num_locals, code));
        id
    }

    /// Builds the static map from call site to its owning method and pc.
    ///
    /// A site can appear in several methods after inlining duplicates call
    /// instructions; the map records every occurrence.
    pub fn call_site_locations(&self) -> HashMap<CallSiteId, Vec<(MethodId, u32)>> {
        let mut map: HashMap<CallSiteId, Vec<(MethodId, u32)>> = HashMap::new();
        for m in &self.methods {
            for (pc, site, _) in m.call_instructions() {
                map.entry(site).or_default().push((m.id(), pc));
            }
        }
        map
    }

    /// The set of classes whose vtable maps `slot` to each method — i.e. the
    /// static possible targets of a virtual dispatch through `slot`.
    pub fn virtual_targets(&self, slot: crate::ids::VirtualSlot) -> Vec<MethodId> {
        let mut targets: Vec<MethodId> = self
            .classes
            .iter()
            .filter_map(|c| c.resolve(slot))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VirtualSlot;

    fn tiny_program() -> Program {
        let main = Method::new(
            MethodId::new(0),
            "main",
            ClassId::new(0),
            0,
            0,
            vec![
                Op::Call {
                    site: CallSiteId::new(0),
                    target: MethodId::new(1),
                },
                Op::Return,
            ],
        );
        let callee = Method::new(
            MethodId::new(1),
            "f",
            ClassId::new(0),
            0,
            0,
            vec![Op::Const(7), Op::Return],
        );
        let class = Class::new(ClassId::new(0), "Main", None, 0, vec![MethodId::new(1)]);
        Program::from_parts(vec![class], vec![main, callee], MethodId::new(0), 1)
    }

    #[test]
    fn lookup_and_counts() {
        let p = tiny_program();
        assert_eq!(p.num_methods(), 2);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.entry(), MethodId::new(0));
        assert_eq!(p.method(MethodId::new(1)).name(), "f");
        assert_eq!(p.method_by_name("main").unwrap().id(), MethodId::new(0));
        assert!(p.method_by_name("missing").is_none());
    }

    #[test]
    fn call_site_allocation_is_monotonic() {
        let mut p = tiny_program();
        assert_eq!(p.num_call_sites(), 1);
        let s1 = p.alloc_call_site();
        let s2 = p.alloc_call_site();
        assert_eq!(s1, CallSiteId::new(1));
        assert_eq!(s2, CallSiteId::new(2));
        assert_eq!(p.num_call_sites(), 3);
    }

    #[test]
    fn call_site_locations_finds_sites() {
        let p = tiny_program();
        let map = p.call_site_locations();
        assert_eq!(map.len(), 1);
        assert_eq!(map[&CallSiteId::new(0)], vec![(MethodId::new(0), 0)]);
    }

    #[test]
    fn virtual_targets_dedup() {
        let p = tiny_program();
        assert_eq!(
            p.virtual_targets(VirtualSlot::new(0)),
            vec![MethodId::new(1)]
        );
        assert!(p.virtual_targets(VirtualSlot::new(9)).is_empty());
    }

    #[test]
    fn add_and_replace_method() {
        let mut p = tiny_program();
        let id = p.add_method("g", ClassId::new(0), 0, 0, vec![Op::Const(1), Op::Return]);
        assert_eq!(id, MethodId::new(2));
        assert_eq!(p.method(id).name(), "g");
        p.replace_method(id, vec![Op::Const(2), Op::Return]);
        assert_eq!(p.method(id).code()[0], Op::Const(2));
    }

    #[test]
    fn total_size_sums_methods() {
        let p = tiny_program();
        let expected: u64 = p.methods().iter().map(|m| u64::from(m.size_bytes())).sum();
        assert_eq!(p.total_size_bytes(), expected);
    }
}
