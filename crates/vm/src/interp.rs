//! The bytecode interpreter: a cycle-accurate simulated VM.
//!
//! The interpreter executes a verified [`Program`] on a virtual clock
//! (every instruction charges its [`CostModel`](crate::CostModel) cycles),
//! fires timer interrupts at the configured frequency, and reports every
//! profiler-observable event to the attached [`Profiler`]. Green threads
//! are scheduled cooperatively: a timer interrupt requests a switch, which
//! happens at the next yieldpoint (call, return or backedge) — mirroring
//! how Jikes RVM's thread scheduler interacts with its yieldpoints.

use crate::config::VmConfig;
use crate::error::VmError;
use crate::events::{CallEvent, NullProfiler, Profiler, StackSlice, ThreadId};
use crate::frame::Frame;
use crate::metrics::VmMetrics;
use crate::report::ExecReport;
use crate::value::{Heap, Value};
use cbs_bytecode::{MethodId, Op, Program};
use cbs_dcg::CallEdge;

/// Run-local fused-dispatch tally, flushed to telemetry on drop so every
/// exit path — clean completion, traps, `OutOfFuel` — reports. Keeping
/// the counts in plain fields means the superinstruction fast path never
/// touches an atomic; the two `fetch_add`s happen once per `run_with`.
#[derive(Default)]
struct FusedTally {
    runs: u64,
    bails: u64,
}

impl Drop for FusedTally {
    fn drop(&mut self) {
        if self.runs != 0 || self.bails != 0 {
            let m = VmMetrics::get();
            m.fused_runs.add(self.runs);
            m.fused_bails.add(self.bails);
        }
    }
}

/// A configured virtual machine, ready to run a program.
///
/// `Vm` is stateless across runs: [`Vm::run`] builds all execution state
/// locally, so one `Vm` can run its program repeatedly (e.g. once per
/// profiler configuration) with identical results.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    /// Per-method instruction cost rows, precomputed once at
    /// construction: `cost_rows[m][pc]` is the charge for executing
    /// `methods[m].code()[pc]`, so the hot path reads a table instead of
    /// re-matching [`CostModel::op_cost`](crate::CostModel::op_cost) on
    /// every instruction.
    cost_rows: Vec<Vec<u64>>,
    /// Per-method superinstruction tables: `fused_rows[m][pc]` is the
    /// fused run starting at that pc, if the code matches one of the
    /// [`FusedKind`] templates. See [`scan_fused`].
    fused_rows: Vec<Vec<Option<Box<Fused>>>>,
}

/// A superinstruction: a straight-line run of ops that [`Vm::run_with`]
/// executes as one dispatch when no timer tick or fuel boundary can land
/// inside it (`next_tick > clock + total_cost` and
/// `clock + total_cost <= budget`). Under that guard the run contains no
/// profiler-observable point — no tick, no trap, no call/return/backedge
/// yieldpoint — so collapsing it changes nothing a profiler or the
/// [`ExecReport`] can see: the clock advances by the same total, the
/// instruction count by the same number of ops, and the frame ends in the
/// same state the per-op path leaves. If the guard fails (or an operand
/// is not an `Int`, where the per-op path could trap), the interpreter
/// falls back to per-op execution of the very same ops.
#[derive(Debug, Clone)]
struct Fused {
    /// Sum of the constituent ops' costs.
    total_cost: u64,
    /// Number of constituent ops (for the `instructions` counter).
    num_ops: u64,
    /// pc after the run (fall-through pc for [`FusedKind::TestBranch`]).
    next_pc: u32,
    kind: FusedKind,
}

#[derive(Debug, Clone)]
enum FusedKind {
    /// One or more `Load(s), Const(k), <int binop>, Store(s)` quads on a
    /// single slot — the dominant straight-line pattern in generated
    /// workloads — folded into the local in registers.
    WorkRun { slot: u16, steps: Box<[(Op, i64)]> },
    /// `Load(s), <int binop>, Store(s)`: folds the value on top of the
    /// operand stack into a local (`s = v <op> s`), the accumulate idiom
    /// emitted after every call.
    FoldAccum { slot: u16, op: Op },
    /// `Load(s), Const(k), <op>, JumpIfZero/NonZero(target)` with a
    /// *forward* target — a guard branch. Forward jumps are not
    /// backedges, so the per-op path fires no yieldpoint here either.
    TestBranch {
        slot: u16,
        k: i64,
        op: Op,
        target: u32,
        jump_if_zero: bool,
    },
}

/// Integer binops whose fused evaluation cannot trap and exactly matches
/// the per-op arms when both operands are `Int`.
fn fusible_int_binop(op: Op) -> bool {
    matches!(
        op,
        Op::Add
            | Op::Sub
            | Op::Mul
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::CmpLt
            | Op::CmpGt
    )
}

/// Evaluates `a <op> b` exactly as the corresponding per-op arm does.
fn apply_int(op: Op, a: i64, b: i64) -> i64 {
    match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Shl => a.wrapping_shl(b as u32 & 63),
        Op::Shr => a.wrapping_shr(b as u32 & 63),
        Op::CmpLt => i64::from(a < b),
        Op::CmpGt => i64::from(a > b),
        Op::CmpEq => i64::from(a == b),
        Op::Div => a.wrapping_div(b),
        Op::Rem => a.wrapping_rem(b),
        _ => unreachable!("scan_fused only admits int binops"),
    }
}

/// Builds the superinstruction table for one method: a maximal-munch
/// linear scan for the [`FusedKind`] templates. Runs are recorded only at
/// their first pc; a jump that lands inside a run simply executes per-op
/// from there (correct, just not fused).
fn scan_fused(code: &[Op], costs: &[u64]) -> Vec<Option<Box<Fused>>> {
    let mut out: Vec<Option<Box<Fused>>> = vec![None; code.len()];
    let mut p = 0usize;
    while p < code.len() {
        let Op::Load(slot) = code[p] else {
            p += 1;
            continue;
        };

        // WorkRun: maximal run of Load/Const/binop/Store quads on `slot`.
        let mut q = p;
        let mut steps: Vec<(Op, i64)> = Vec::new();
        let mut total = 0u64;
        while q + 3 < code.len() {
            let (Op::Load(a), Op::Const(k)) = (code[q], code[q + 1]) else {
                break;
            };
            let op3 = code[q + 2];
            let Op::Store(b) = code[q + 3] else {
                break;
            };
            // Div/Rem by a non-zero constant cannot trap either.
            let fusible = fusible_int_binop(op3) || (matches!(op3, Op::Div | Op::Rem) && k != 0);
            if a != slot || b != slot || !fusible {
                break;
            }
            steps.push((op3, k));
            total += costs[q] + costs[q + 1] + costs[q + 2] + costs[q + 3];
            q += 4;
        }
        if !steps.is_empty() {
            out[p] = Some(Box::new(Fused {
                total_cost: total,
                num_ops: (q - p) as u64,
                next_pc: q as u32,
                kind: FusedKind::WorkRun {
                    slot,
                    steps: steps.into_boxed_slice(),
                },
            }));
            p = q;
            continue;
        }

        // TestBranch: Load/Const/op/forward-JumpIf*.
        if p + 3 < code.len() {
            if let Op::Const(k) = code[p + 1] {
                let op3 = code[p + 2];
                if fusible_int_binop(op3) || matches!(op3, Op::CmpEq) {
                    let jump = match code[p + 3] {
                        Op::JumpIfZero(t) => Some((t, true)),
                        Op::JumpIfNonZero(t) => Some((t, false)),
                        _ => None,
                    };
                    let jump_pc = (p + 3) as u32;
                    if let Some((target, jump_if_zero)) = jump {
                        if target > jump_pc {
                            out[p] = Some(Box::new(Fused {
                                total_cost: costs[p..=p + 3].iter().sum(),
                                num_ops: 4,
                                next_pc: jump_pc + 1,
                                kind: FusedKind::TestBranch {
                                    slot,
                                    k,
                                    op: op3,
                                    target,
                                    jump_if_zero,
                                },
                            }));
                            p += 4;
                            continue;
                        }
                    }
                }
            }
        }

        // FoldAccum: Load/binop/Store on the same slot.
        if p + 2 < code.len() {
            let op2 = code[p + 1];
            if fusible_int_binop(op2) && matches!(code[p + 2], Op::Store(b) if b == slot) {
                out[p] = Some(Box::new(Fused {
                    total_cost: costs[p..=p + 2].iter().sum(),
                    num_ops: 3,
                    next_pc: (p + 3) as u32,
                    kind: FusedKind::FoldAccum { slot, op: op2 },
                }));
                p += 3;
                continue;
            }
        }

        p += 1;
    }
    out
}

#[derive(Debug)]
struct ThreadState {
    frames: Vec<Frame>,
    done: bool,
    result: Value,
    /// Retired frames recycled by calls, so the steady-state call path
    /// performs no heap allocation (see [`push_callee`]).
    pool: Vec<Frame>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program`.
    ///
    /// The program is assumed verified (as [`ProgramBuilder::build`]
    /// guarantees); the interpreter traps rather than panics on dynamic
    /// faults, but structural faults in unverified code may still panic.
    ///
    /// [`ProgramBuilder::build`]: cbs_bytecode::ProgramBuilder::build
    pub fn new(program: &'p Program, config: VmConfig) -> Self {
        let cost = &config.cost;
        let cost_rows: Vec<Vec<u64>> = program
            .methods()
            .iter()
            .map(|m| m.code().iter().map(|op| cost.op_cost(op)).collect())
            .collect();
        let fused_rows = program
            .methods()
            .iter()
            .zip(&cost_rows)
            .map(|(m, costs)| scan_fused(m.code(), costs))
            .collect();
        Self {
            program,
            config,
            cost_rows,
            fused_rows,
        }
    }

    /// The program under execution.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Runs the program to completion with no profiler attached.
    ///
    /// Monomorphized over [`NullProfiler`], so the event hooks compile to
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime trap.
    pub fn run_unprofiled(&self) -> Result<ExecReport, VmError> {
        self.run_with(&mut NullProfiler)
    }

    /// Runs the program to completion, reporting events to `profiler`.
    ///
    /// Thin wrapper over [`Vm::run_with`] for callers that hold a
    /// `&mut dyn Profiler`; callers with a concrete profiler type should
    /// prefer `run_with`, which monomorphizes the event hooks away.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on division by zero, type mismatch, stack
    /// overflow, out-of-range field access, unresolvable dispatch, or an
    /// exhausted cycle budget.
    pub fn run(&self, profiler: &mut dyn Profiler) -> Result<ExecReport, VmError> {
        self.run_with(profiler)
    }

    /// Runs the program to completion, reporting events to `profiler`.
    ///
    /// This is the hot path of every experiment. It is generic over the
    /// profiler (`?Sized`, so `P = dyn Profiler` also works) and applies
    /// four micro-architectural optimizations relative to the reference
    /// interpreter ([`Vm::run_reference`]), none of which change any
    /// observable behavior — reports, event sequences and trap points are
    /// bit-identical (pinned by `tests/dispatch_equivalence.rs`):
    ///
    /// 1. **Monomorphized dispatch** — with a concrete `P`, profiler
    ///    hooks inline; for [`NullProfiler`] they vanish entirely.
    /// 2. **Cached code cursor, detached top frame** — the running
    ///    thread's top frame is popped off the frame stack and held in a
    ///    local along with its pc and the executing method's code slice
    ///    and precomputed cost row (built once in [`Vm::new`]), so the
    ///    per-op path performs no `Vec` accesses, no frame pc
    ///    loads/stores, and no `CostModel::op_cost` re-match. The frame
    ///    is reattached (pc written back) wherever the stack is
    ///    observable: tick delivery, call entry/exit, thread switch.
    /// 3. **Cheap liveness / budget checks** — a live-thread counter
    ///    replaces the per-slice `threads.iter().any(..)` scan, and an
    ///    absent `max_cycles` budget becomes `u64::MAX` so the per-op
    ///    fuel check is one always-false compare instead of an `Option`
    ///    test.
    /// 4. **Frame pooling** — returned frames are recycled through a
    ///    per-thread pool, so steady-state calls do not heap-allocate.
    /// 5. **Superinstruction fusion** — straight-line op runs matching
    ///    the [`FusedKind`] templates (detected once in [`Vm::new`])
    ///    execute as a single dispatch whenever no timer tick or fuel
    ///    boundary can land inside the run; otherwise the same ops run
    ///    through the ordinary per-op path, so every observable event
    ///    falls at exactly the same cycle either way.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on division by zero, type mismatch, stack
    /// overflow, out-of-range field access, unresolvable dispatch, or an
    /// exhausted cycle budget.
    pub fn run_with<P: Profiler + ?Sized>(&self, profiler: &mut P) -> Result<ExecReport, VmError> {
        let program = self.program;
        let flavor = self.config.flavor;
        let period = self.config.timer_period();
        let entry = program.entry();
        let entry_locals = program.method(entry).num_locals();
        let cost_rows = self.cost_rows.as_slice();

        let mut heap = Heap::new();
        let mut invocations = vec![0u64; program.num_methods()];
        let mut threads: Vec<ThreadState> = (0..self.config.num_threads.max(1))
            .map(|_| {
                invocations[entry.index()] += 1;
                ThreadState {
                    frames: vec![Frame::new(entry, entry_locals)],
                    done: false,
                    result: Value::default(),
                    pool: Vec::new(),
                }
            })
            .collect();

        let jitter = self.config.timer_jitter.min(period.saturating_sub(1));
        let mut jitter_state = self.config.timer_seed | 1;
        let mut draw_period = move || {
            if jitter == 0 {
                return period;
            }
            // xorshift64: deterministic, cheap, seeded.
            jitter_state ^= jitter_state << 13;
            jitter_state ^= jitter_state >> 7;
            jitter_state ^= jitter_state << 17;
            period - jitter + jitter_state % (2 * jitter + 1)
        };

        let mut clock: u64 = 0;
        let mut next_tick: u64 = draw_period();
        let mut ticks: u64 = 0;
        let mut instructions: u64 = 0;
        let mut calls: u64 = 0;
        let mut cur = 0usize;
        // An absent budget becomes an unreachable one, keeping the per-op
        // fuel check branchless in spirit: one compare, always false.
        let budget = self.config.max_cycles.unwrap_or(u64::MAX);
        let mut live = threads.len();
        let mut fused_tally = FusedTally::default();

        while live > 0 {
            if threads[cur].done {
                cur = (cur + 1) % threads.len();
                continue;
            }
            let tid = ThreadId(cur as u32);
            let t = &mut threads[cur];
            let mut pending_switch = false;

            // The code cursor: the running thread's top frame is detached
            // from the frame stack and held in a local, together with its
            // pc and the executing method's code slice and cost row, so
            // the per-op path touches no `Vec` at all. The frame is
            // reattached — with the register-held pc written back — at
            // every point where the stack becomes observable (tick
            // delivery, call entry/exit, thread switch, completion), so
            // profiler hooks see exactly the stack the reference
            // interpreter shows.
            let mut frame = t.frames.pop().expect("running thread has frames");
            let mut mid = frame.method();
            let mut pc = frame.pc();
            let mut code = program.method(mid).code();
            let mut costs = cost_rows[mid.index()].as_slice();
            let mut fused = self.fused_rows[mid.index()].as_slice();

            'slice: loop {
                // Superinstruction fast path: execute a whole fused run in
                // one dispatch when no tick or fuel boundary can land
                // inside it and the operands are `Int`s (so the per-op
                // path could not trap). Otherwise fall through and
                // interpret the same ops one at a time.
                if let Some(f) = fused[pc as usize].as_deref() {
                    let end_clock = clock + f.total_cost;
                    if next_tick <= end_clock || end_clock > budget {
                        // A tick or fuel boundary lands inside the run:
                        // bail to per-op execution so the boundary is
                        // observed at its exact cycle.
                        fused_tally.bails += 1;
                    } else {
                        let next = match &f.kind {
                            FusedKind::WorkRun { slot, steps } => {
                                if let Value::Int(mut x) = frame.locals()[usize::from(*slot)] {
                                    for &(op, k) in steps.iter() {
                                        x = apply_int(op, x, k);
                                    }
                                    frame.locals_mut()[usize::from(*slot)] = Value::Int(x);
                                    Some(f.next_pc)
                                } else {
                                    None
                                }
                            }
                            FusedKind::FoldAccum { slot, op } => {
                                match (
                                    frame.stack().last().copied(),
                                    frame.locals()[usize::from(*slot)],
                                ) {
                                    (Some(Value::Int(v)), Value::Int(loc)) => {
                                        frame.pop();
                                        frame.locals_mut()[usize::from(*slot)] =
                                            Value::Int(apply_int(*op, v, loc));
                                        Some(f.next_pc)
                                    }
                                    _ => None,
                                }
                            }
                            FusedKind::TestBranch {
                                slot,
                                k,
                                op,
                                target,
                                jump_if_zero,
                            } => {
                                if let Value::Int(loc) = frame.locals()[usize::from(*slot)] {
                                    let v = apply_int(*op, loc, *k);
                                    let jump = if *jump_if_zero { v == 0 } else { v != 0 };
                                    Some(if jump { *target } else { f.next_pc })
                                } else {
                                    None
                                }
                            }
                        };
                        if let Some(next_pc) = next {
                            fused_tally.runs += 1;
                            clock = end_clock;
                            instructions += f.num_ops;
                            pc = next_pc;
                            continue;
                        }
                        // Operand shape mismatch (a non-`Int` where the
                        // per-op path could trap): bail to per-op.
                        fused_tally.bails += 1;
                    }
                }

                let op = code[pc as usize];

                clock += costs[pc as usize];
                instructions += 1;
                if clock > budget {
                    return Err(VmError::OutOfFuel { budget });
                }
                // ── Tick-at-yieldpoint semantics ────────────────────────
                // The virtual timer is checked once per instruction,
                // *after* the instruction's cost is charged and *before*
                // it executes. A tick whose deadline lands inside the
                // instruction's cost interval is therefore delivered at
                // the instruction boundary — the sampled pc is the
                // instruction about to execute — and `pending_switch` is
                // raised before the op's own yieldpoint logic runs. In
                // particular a backedge (`Op::Jump`, or a conditional
                // jump with target <= pc) observes a tick that landed
                // "inside" the jump itself and yields at that very
                // backedge; there is no one-op delay, and ticks are never
                // delivered mid-op. If one expensive op (e.g. `Op::Io`)
                // spans several timer periods, every elapsed deadline
                // fires, in order, at the same boundary. The regression
                // test `tick_counts_are_pinned_per_flavor` pins exact
                // tick counts for a tight loop under both flavors.
                if next_tick <= clock {
                    frame.set_pc(pc);
                    t.frames.push(frame);
                    while next_tick <= clock {
                        ticks += 1;
                        profiler.on_tick(next_tick, tid, StackSlice::new(&t.frames));
                        next_tick += draw_period();
                        pending_switch = true;
                    }
                    frame = t.frames.pop().expect("frame reattached for tick delivery");
                }

                match op {
                    Op::Const(v) => {
                        frame.push(Value::Int(v));
                        pc += 1;
                    }
                    Op::Load(n) => {
                        let v = frame.locals()[usize::from(n)];
                        frame.push(v);
                        pc += 1;
                    }
                    Op::Store(n) => {
                        let v = pop_val(&mut frame, mid, pc)?;
                        frame.locals_mut()[usize::from(n)] = v;
                        pc += 1;
                    }
                    Op::Dup => {
                        let v = frame
                            .peek(0)
                            .ok_or(VmError::OperandUnderflow { method: mid, pc })?;
                        frame.push(v);
                        pc += 1;
                    }
                    Op::Pop => {
                        pop_val(&mut frame, mid, pc)?;
                        pc += 1;
                    }
                    Op::Swap => {
                        let b = pop_val(&mut frame, mid, pc)?;
                        let a = pop_val(&mut frame, mid, pc)?;
                        frame.push(b);
                        frame.push(a);
                        pc += 1;
                    }
                    Op::Add
                    | Op::Sub
                    | Op::Mul
                    | Op::And
                    | Op::Or
                    | Op::Xor
                    | Op::Shl
                    | Op::Shr
                    | Op::CmpLt
                    | Op::CmpGt => {
                        let b = pop_int(&mut frame, mid, pc)?;
                        let a = pop_int(&mut frame, mid, pc)?;
                        let r = match op {
                            Op::Add => a.wrapping_add(b),
                            Op::Sub => a.wrapping_sub(b),
                            Op::Mul => a.wrapping_mul(b),
                            Op::And => a & b,
                            Op::Or => a | b,
                            Op::Xor => a ^ b,
                            Op::Shl => a.wrapping_shl(b as u32 & 63),
                            Op::Shr => a.wrapping_shr(b as u32 & 63),
                            Op::CmpLt => i64::from(a < b),
                            Op::CmpGt => i64::from(a > b),
                            _ => unreachable!(),
                        };
                        frame.push(Value::Int(r));
                        pc += 1;
                    }
                    Op::Div | Op::Rem => {
                        let b = pop_int(&mut frame, mid, pc)?;
                        let a = pop_int(&mut frame, mid, pc)?;
                        if b == 0 {
                            return Err(VmError::DivisionByZero { method: mid, pc });
                        }
                        let r = if matches!(op, Op::Div) {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        };
                        frame.push(Value::Int(r));
                        pc += 1;
                    }
                    Op::Neg => {
                        let a = pop_int(&mut frame, mid, pc)?;
                        frame.push(Value::Int(a.wrapping_neg()));
                        pc += 1;
                    }
                    Op::CmpEq => {
                        let b = pop_val(&mut frame, mid, pc)?;
                        let a = pop_val(&mut frame, mid, pc)?;
                        frame.push(Value::Int(i64::from(a == b)));
                        pc += 1;
                    }
                    Op::Jump(target) => {
                        let backedge = target <= pc;
                        pc = target;
                        if backedge && flavor.has_backedge_yieldpoints() {
                            profiler.on_backedge(mid, clock, tid);
                            if pending_switch {
                                frame.set_pc(pc);
                                t.frames.push(frame);
                                break 'slice;
                            }
                        }
                    }
                    Op::JumpIfZero(target) | Op::JumpIfNonZero(target) => {
                        let v = pop_val(&mut frame, mid, pc)?;
                        let jump = if matches!(op, Op::JumpIfZero(_)) {
                            !v.is_truthy()
                        } else {
                            v.is_truthy()
                        };
                        if jump {
                            let backedge = target <= pc;
                            pc = target;
                            if backedge && flavor.has_backedge_yieldpoints() {
                                profiler.on_backedge(mid, clock, tid);
                                if pending_switch {
                                    frame.set_pc(pc);
                                    t.frames.push(frame);
                                    break 'slice;
                                }
                            }
                        } else {
                            pc += 1;
                        }
                    }
                    Op::Call { site, target } => {
                        calls += 1;
                        invocations[target.index()] += 1;
                        // Reattach the caller; `push_callee` writes the
                        // return address (pc + 1) and pending site into it.
                        t.frames.push(frame);
                        push_callee(
                            t,
                            program,
                            mid,
                            pc,
                            site,
                            target,
                            self.config.max_stack_depth,
                        )?;
                        profiler.on_entry(&CallEvent {
                            edge: CallEdge::new(mid, site, target),
                            clock,
                            thread: tid,
                            stack: StackSlice::new(&t.frames),
                        });
                        if pending_switch {
                            break 'slice;
                        }
                        frame = t.frames.pop().expect("callee frame just pushed");
                        pc = 0;
                        mid = target;
                        code = program.method(mid).code();
                        costs = cost_rows[mid.index()].as_slice();
                        fused = self.fused_rows[mid.index()].as_slice();
                    }
                    Op::CallVirtual { site, slot, arity } => {
                        let receiver = frame
                            .peek(usize::from(arity) - 1)
                            .ok_or(VmError::OperandUnderflow { method: mid, pc })?;
                        let r = receiver.as_ref().ok_or(VmError::TypeMismatch {
                            method: mid,
                            pc,
                            expected: "object receiver",
                        })?;
                        let target = self
                            .program
                            .class(heap.class_of(r))
                            .resolve(slot)
                            .ok_or(VmError::BadVirtualDispatch { method: mid, pc })?;
                        calls += 1;
                        invocations[target.index()] += 1;
                        t.frames.push(frame);
                        push_callee(
                            t,
                            program,
                            mid,
                            pc,
                            site,
                            target,
                            self.config.max_stack_depth,
                        )?;
                        profiler.on_entry(&CallEvent {
                            edge: CallEdge::new(mid, site, target),
                            clock,
                            thread: tid,
                            stack: StackSlice::new(&t.frames),
                        });
                        if pending_switch {
                            break 'slice;
                        }
                        frame = t.frames.pop().expect("callee frame just pushed");
                        pc = 0;
                        mid = target;
                        code = program.method(mid).code();
                        costs = cost_rows[mid.index()].as_slice();
                        fused = self.fused_rows[mid.index()].as_slice();
                    }
                    Op::Return => {
                        let rv = pop_val(&mut frame, mid, pc)?;
                        if t.frames.is_empty() {
                            t.done = true;
                            live -= 1;
                            t.result = rv;
                            frame.set_pc(pc);
                            t.frames.push(frame);
                            break 'slice;
                        }
                        if flavor.samples_exits() {
                            // The exit event shows the stack with the
                            // returning frame still on top, as the
                            // reference interpreter does.
                            frame.set_pc(pc);
                            t.frames.push(frame);
                            let caller = &t.frames[t.frames.len() - 2];
                            let edge = CallEdge::new(
                                caller.method(),
                                caller.pending_site().expect("caller has in-flight site"),
                                mid,
                            );
                            profiler.on_exit(&CallEvent {
                                edge,
                                clock,
                                thread: tid,
                                stack: StackSlice::new(&t.frames),
                            });
                            let retired = t.frames.pop().expect("returning frame");
                            t.pool.push(retired);
                        } else {
                            t.pool.push(frame);
                        }
                        let caller = t.frames.last_mut().expect("caller frame");
                        caller.set_pending_site(None);
                        caller.push(rv);
                        mid = caller.method();
                        if pending_switch {
                            break 'slice;
                        }
                        frame = t.frames.pop().expect("caller frame");
                        pc = frame.pc();
                        code = program.method(mid).code();
                        costs = cost_rows[mid.index()].as_slice();
                        fused = self.fused_rows[mid.index()].as_slice();
                    }
                    Op::GetField(n) => {
                        let r = pop_obj(&mut frame, mid, pc)?;
                        let v = heap
                            .get_field(r, n)
                            .ok_or(VmError::FieldOutOfRange { method: mid, pc })?;
                        frame.push(v);
                        pc += 1;
                    }
                    Op::PutField(n) => {
                        let v = pop_val(&mut frame, mid, pc)?;
                        let r = pop_obj(&mut frame, mid, pc)?;
                        if !heap.put_field(r, n, v) {
                            return Err(VmError::FieldOutOfRange { method: mid, pc });
                        }
                        pc += 1;
                    }
                    Op::New(class) => {
                        let num_fields = program.class(class).num_fields();
                        let r = heap.alloc(class, num_fields);
                        frame.push(Value::Ref(r));
                        pc += 1;
                    }
                    Op::GuardClass { class, not_taken } => {
                        let r = pop_obj(&mut frame, mid, pc)?;
                        if heap.class_of(r) == class {
                            pc += 1;
                        } else {
                            pc = not_taken;
                        }
                    }
                    Op::Io(_) => {
                        // Cost was charged above; the "result" is a dummy.
                        frame.push(Value::Int(0));
                        pc += 1;
                    }
                    Op::Nop => {
                        pc += 1;
                    }
                }
            }

            cur = (cur + 1) % threads.len();
        }

        profiler.on_finish(clock);
        Ok(ExecReport {
            cycles: clock,
            seconds: self.config.cycles_to_seconds(clock),
            instructions,
            calls,
            ticks,
            invocations,
            return_values: threads.into_iter().map(|t| t.result).collect(),
        })
    }

    /// The pre-optimization interpreter, kept verbatim as a baseline.
    ///
    /// This is the original dyn-dispatch hot path: per-op
    /// `program.method(mid).code()[pc]` fetch and `CostModel::op_cost`
    /// match, per-slice `threads.iter().any(..)` liveness scan, `Option`
    /// fuel check, and a fresh `Frame` allocation per call. It exists so
    /// that (a) the `interp_throughput` bench can assert the optimized
    /// path's speedup against the real pre-optimization code rather than
    /// a guess, and (b) differential tests can pin that the optimized
    /// interpreter is observationally identical. Not part of the public
    /// API contract.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on the same conditions as [`Vm::run`].
    #[doc(hidden)]
    pub fn run_reference(&self, profiler: &mut dyn Profiler) -> Result<ExecReport, VmError> {
        let program = self.program;
        let cost = &self.config.cost;
        let flavor = self.config.flavor;
        let period = self.config.timer_period();
        let entry = program.entry();
        let entry_locals = program.method(entry).num_locals();

        let mut heap = Heap::new();
        let mut invocations = vec![0u64; program.num_methods()];
        let mut threads: Vec<ThreadState> = (0..self.config.num_threads.max(1))
            .map(|_| {
                invocations[entry.index()] += 1;
                ThreadState {
                    frames: vec![Frame::new(entry, entry_locals)],
                    done: false,
                    result: Value::default(),
                    pool: Vec::new(),
                }
            })
            .collect();

        let jitter = self.config.timer_jitter.min(period.saturating_sub(1));
        let mut jitter_state = self.config.timer_seed | 1;
        let mut draw_period = move || {
            if jitter == 0 {
                return period;
            }
            // xorshift64: deterministic, cheap, seeded.
            jitter_state ^= jitter_state << 13;
            jitter_state ^= jitter_state >> 7;
            jitter_state ^= jitter_state << 17;
            period - jitter + jitter_state % (2 * jitter + 1)
        };

        let mut clock: u64 = 0;
        let mut next_tick: u64 = draw_period();
        let mut ticks: u64 = 0;
        let mut instructions: u64 = 0;
        let mut calls: u64 = 0;
        let mut cur = 0usize;

        while threads.iter().any(|t| !t.done) {
            if threads[cur].done {
                cur = (cur + 1) % threads.len();
                continue;
            }
            let tid = ThreadId(cur as u32);
            let t = &mut threads[cur];
            let mut pending_switch = false;

            'slice: loop {
                let (mid, pc) = {
                    let f = t.frames.last().expect("running thread has frames");
                    (f.method(), f.pc())
                };
                let op = program.method(mid).code()[pc as usize];

                clock += cost.op_cost(&op);
                instructions += 1;
                if let Some(budget) = self.config.max_cycles {
                    if clock > budget {
                        return Err(VmError::OutOfFuel { budget });
                    }
                }
                while next_tick <= clock {
                    ticks += 1;
                    profiler.on_tick(next_tick, tid, StackSlice::new(&t.frames));
                    next_tick += draw_period();
                    pending_switch = true;
                }

                match op {
                    Op::Const(v) => {
                        let f = t.frames.last_mut().expect("frame");
                        f.push(Value::Int(v));
                        f.set_pc(pc + 1);
                    }
                    Op::Load(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = f.locals()[usize::from(n)];
                        f.push(v);
                        f.set_pc(pc + 1);
                    }
                    Op::Store(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = pop_val(f, mid, pc)?;
                        f.locals_mut()[usize::from(n)] = v;
                        f.set_pc(pc + 1);
                    }
                    Op::Dup => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = f
                            .peek(0)
                            .ok_or(VmError::OperandUnderflow { method: mid, pc })?;
                        f.push(v);
                        f.set_pc(pc + 1);
                    }
                    Op::Pop => {
                        let f = t.frames.last_mut().expect("frame");
                        pop_val(f, mid, pc)?;
                        f.set_pc(pc + 1);
                    }
                    Op::Swap => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_val(f, mid, pc)?;
                        let a = pop_val(f, mid, pc)?;
                        f.push(b);
                        f.push(a);
                        f.set_pc(pc + 1);
                    }
                    Op::Add
                    | Op::Sub
                    | Op::Mul
                    | Op::And
                    | Op::Or
                    | Op::Xor
                    | Op::Shl
                    | Op::Shr
                    | Op::CmpLt
                    | Op::CmpGt => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_int(f, mid, pc)?;
                        let a = pop_int(f, mid, pc)?;
                        let r = match op {
                            Op::Add => a.wrapping_add(b),
                            Op::Sub => a.wrapping_sub(b),
                            Op::Mul => a.wrapping_mul(b),
                            Op::And => a & b,
                            Op::Or => a | b,
                            Op::Xor => a ^ b,
                            Op::Shl => a.wrapping_shl(b as u32 & 63),
                            Op::Shr => a.wrapping_shr(b as u32 & 63),
                            Op::CmpLt => i64::from(a < b),
                            Op::CmpGt => i64::from(a > b),
                            _ => unreachable!(),
                        };
                        f.push(Value::Int(r));
                        f.set_pc(pc + 1);
                    }
                    Op::Div | Op::Rem => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_int(f, mid, pc)?;
                        let a = pop_int(f, mid, pc)?;
                        if b == 0 {
                            return Err(VmError::DivisionByZero { method: mid, pc });
                        }
                        let r = if matches!(op, Op::Div) {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        };
                        f.push(Value::Int(r));
                        f.set_pc(pc + 1);
                    }
                    Op::Neg => {
                        let f = t.frames.last_mut().expect("frame");
                        let a = pop_int(f, mid, pc)?;
                        f.push(Value::Int(a.wrapping_neg()));
                        f.set_pc(pc + 1);
                    }
                    Op::CmpEq => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_val(f, mid, pc)?;
                        let a = pop_val(f, mid, pc)?;
                        f.push(Value::Int(i64::from(a == b)));
                        f.set_pc(pc + 1);
                    }
                    Op::Jump(target) => {
                        let backedge = target <= pc;
                        t.frames.last_mut().expect("frame").set_pc(target);
                        if backedge && flavor.has_backedge_yieldpoints() {
                            profiler.on_backedge(mid, clock, tid);
                            if pending_switch {
                                break 'slice;
                            }
                        }
                    }
                    Op::JumpIfZero(target) | Op::JumpIfNonZero(target) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = pop_val(f, mid, pc)?;
                        let jump = if matches!(op, Op::JumpIfZero(_)) {
                            !v.is_truthy()
                        } else {
                            v.is_truthy()
                        };
                        if jump {
                            f.set_pc(target);
                            if target <= pc && flavor.has_backedge_yieldpoints() {
                                profiler.on_backedge(mid, clock, tid);
                                if pending_switch {
                                    break 'slice;
                                }
                            }
                        } else {
                            f.set_pc(pc + 1);
                        }
                    }
                    Op::Call { site, target } => {
                        calls += 1;
                        invocations[target.index()] += 1;
                        push_callee(
                            t,
                            program,
                            mid,
                            pc,
                            site,
                            target,
                            self.config.max_stack_depth,
                        )?;
                        profiler.on_entry(&CallEvent {
                            edge: CallEdge::new(mid, site, target),
                            clock,
                            thread: tid,
                            stack: StackSlice::new(&t.frames),
                        });
                        if pending_switch {
                            break 'slice;
                        }
                    }
                    Op::CallVirtual { site, slot, arity } => {
                        let receiver = {
                            let f = t.frames.last().expect("frame");
                            f.peek(usize::from(arity) - 1)
                                .ok_or(VmError::OperandUnderflow { method: mid, pc })?
                        };
                        let r = receiver.as_ref().ok_or(VmError::TypeMismatch {
                            method: mid,
                            pc,
                            expected: "object receiver",
                        })?;
                        let target = self
                            .program
                            .class(heap.class_of(r))
                            .resolve(slot)
                            .ok_or(VmError::BadVirtualDispatch { method: mid, pc })?;
                        calls += 1;
                        invocations[target.index()] += 1;
                        push_callee(
                            t,
                            program,
                            mid,
                            pc,
                            site,
                            target,
                            self.config.max_stack_depth,
                        )?;
                        profiler.on_entry(&CallEvent {
                            edge: CallEdge::new(mid, site, target),
                            clock,
                            thread: tid,
                            stack: StackSlice::new(&t.frames),
                        });
                        if pending_switch {
                            break 'slice;
                        }
                    }
                    Op::Return => {
                        let rv = {
                            let f = t.frames.last_mut().expect("frame");
                            pop_val(f, mid, pc)?
                        };
                        if t.frames.len() == 1 {
                            t.done = true;
                            t.result = rv;
                            break 'slice;
                        }
                        if flavor.samples_exits() {
                            let caller = &t.frames[t.frames.len() - 2];
                            let edge = CallEdge::new(
                                caller.method(),
                                caller.pending_site().expect("caller has in-flight site"),
                                mid,
                            );
                            profiler.on_exit(&CallEvent {
                                edge,
                                clock,
                                thread: tid,
                                stack: StackSlice::new(&t.frames),
                            });
                        }
                        t.frames.pop();
                        let caller = t.frames.last_mut().expect("caller frame");
                        caller.set_pending_site(None);
                        caller.push(rv);
                        if pending_switch {
                            break 'slice;
                        }
                    }
                    Op::GetField(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let r = pop_obj(f, mid, pc)?;
                        let v = heap
                            .get_field(r, n)
                            .ok_or(VmError::FieldOutOfRange { method: mid, pc })?;
                        f.push(v);
                        f.set_pc(pc + 1);
                    }
                    Op::PutField(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = pop_val(f, mid, pc)?;
                        let r = pop_obj(f, mid, pc)?;
                        if !heap.put_field(r, n, v) {
                            return Err(VmError::FieldOutOfRange { method: mid, pc });
                        }
                        f.set_pc(pc + 1);
                    }
                    Op::New(class) => {
                        let num_fields = program.class(class).num_fields();
                        let r = heap.alloc(class, num_fields);
                        let f = t.frames.last_mut().expect("frame");
                        f.push(Value::Ref(r));
                        f.set_pc(pc + 1);
                    }
                    Op::GuardClass { class, not_taken } => {
                        let f = t.frames.last_mut().expect("frame");
                        let r = pop_obj(f, mid, pc)?;
                        if heap.class_of(r) == class {
                            f.set_pc(pc + 1);
                        } else {
                            f.set_pc(not_taken);
                        }
                    }
                    Op::Io(_) => {
                        // Cost was charged above; the "result" is a dummy.
                        let f = t.frames.last_mut().expect("frame");
                        f.push(Value::Int(0));
                        f.set_pc(pc + 1);
                    }
                    Op::Nop => {
                        t.frames.last_mut().expect("frame").set_pc(pc + 1);
                    }
                }
            }

            cur = (cur + 1) % threads.len();
        }

        profiler.on_finish(clock);
        Ok(ExecReport {
            cycles: clock,
            seconds: self.config.cycles_to_seconds(clock),
            instructions,
            calls,
            ticks,
            invocations,
            return_values: threads.into_iter().map(|t| t.result).collect(),
        })
    }
}

/// Pops the callee's arguments from the caller, pushes the callee frame.
///
/// The callee frame is recycled from the thread's frame pool when one is
/// available (the optimized interpreter returns frames there on
/// `Op::Return`), falling back to a fresh allocation. The reference
/// interpreter never fills the pool, so it keeps the original
/// allocate-per-call behavior through this same function.
fn push_callee(
    t: &mut ThreadState,
    program: &Program,
    caller: MethodId,
    pc: u32,
    site: cbs_bytecode::CallSiteId,
    target: MethodId,
    max_depth: usize,
) -> Result<(), VmError> {
    if t.frames.len() >= max_depth {
        return Err(VmError::StackOverflow { limit: max_depth });
    }
    let callee = program.method(target);
    let mut frame = match t.pool.pop() {
        Some(mut recycled) => {
            recycled.reset(target, callee.num_locals());
            recycled
        }
        None => Frame::new(target, callee.num_locals()),
    };
    let arity = usize::from(callee.num_params());
    {
        let caller_frame = t.frames.last_mut().expect("caller frame");
        for i in (0..arity).rev() {
            let v = caller_frame
                .pop()
                .ok_or(VmError::OperandUnderflow { method: caller, pc })?;
            frame.locals_mut()[i] = v;
        }
        caller_frame.set_pc(pc + 1); // return address
        caller_frame.set_pending_site(Some(site));
    }
    t.frames.push(frame);
    Ok(())
}

fn pop_val(f: &mut Frame, method: MethodId, pc: u32) -> Result<Value, VmError> {
    f.pop().ok_or(VmError::OperandUnderflow { method, pc })
}

fn pop_int(f: &mut Frame, method: MethodId, pc: u32) -> Result<i64, VmError> {
    pop_val(f, method, pc)?
        .as_int()
        .ok_or(VmError::TypeMismatch {
            method,
            pc,
            expected: "integer",
        })
}

fn pop_obj(f: &mut Frame, method: MethodId, pc: u32) -> Result<crate::value::ObjRef, VmError> {
    pop_val(f, method, pc)?
        .as_ref()
        .ok_or(VmError::TypeMismatch {
            method,
            pc,
            expected: "object reference",
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{ProgramBuilder, VirtualSlot};

    fn run_program(b: ProgramBuilder) -> ExecReport {
        let p = b.build().unwrap();
        Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap()
    }

    #[test]
    fn arithmetic_program_computes() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                // (3 + 4) * 5 - 1 = 34
                c.const_(3)
                    .const_(4)
                    .add()
                    .const_(5)
                    .mul()
                    .const_(1)
                    .sub()
                    .ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(34)]);
        assert!(r.cycles > 0);
        assert!(r.instructions >= 7);
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let sub2 = b
            .function("sub2", cls, 2, 0, |c| {
                c.load(0).load(1).sub().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(10).const_(3).call(sub2).ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(7)]);
        assert_eq!(r.calls, 1);
        assert_eq!(r.invocations_of(sub2), 1);
        assert_eq!(r.methods_executed(), 2);
    }

    #[test]
    fn loop_iterates_correct_count() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 2, |c| {
                // sum 1..=5 via a counted loop (slot 0 counter, slot 1 acc)
                c.counted_loop(0, 5, |c| {
                    c.load(1).load(0).add().store(1);
                });
                c.load(1).ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(15)]);
    }

    #[test]
    fn virtual_dispatch_selects_by_receiver_class() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 0);
        let f_base = b
            .function("Base.f", base, 1, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        b.set_vtable(base, VirtualSlot::new(0), f_base);
        let sub = b.add_subclass("Sub", base, 0);
        let f_sub = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.const_(2).ret();
            })
            .unwrap();
        b.set_vtable(sub, VirtualSlot::new(0), f_sub);
        let main = b
            .function("main", base, 0, 0, |c| {
                c.new_object(base)
                    .call_virtual(VirtualSlot::new(0), 1)
                    .new_object(sub)
                    .call_virtual(VirtualSlot::new(0), 1)
                    .const_(10)
                    .mul()
                    .add()
                    .ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        // base.f()=1 + sub.f()=2 * 10 = 21
        assert_eq!(r.return_values, vec![Value::Int(21)]);
    }

    #[test]
    fn fields_store_and_load() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 2);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.new_object(cls).store(0);
                c.load(0).const_(5).put_field(1);
                c.load(0).get_field(1).ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(5)]);
    }

    #[test]
    fn guard_class_branches_on_exact_class() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 0);
        let sub = b.add_subclass("Sub", base, 0);
        // Dummy virtual method so classes are realistic (not required).
        let main = b
            .function("main", base, 0, 1, |c| {
                let miss = c.label();
                let done = c.label();
                c.new_object(sub).store(0);
                c.load(0).guard_class(base, miss);
                c.const_(1).jump(done);
                c.bind(miss).const_(2);
                c.bind(done).ret();
            })
            .unwrap();
        let _ = sub;
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(
            r.return_values,
            vec![Value::Int(2)],
            "guard must miss: Sub != Base"
        );
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(1).const_(0).div().ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let err = Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
    }

    #[test]
    fn stack_overflow_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let rec = b.declare("rec", cls, 0);
        b.define(rec, 0, |c| {
            c.call(rec).ret();
        })
        .unwrap();
        b.set_entry(rec);
        let p = b.build().unwrap();
        let config = VmConfig {
            max_stack_depth: 64,
            ..VmConfig::default()
        };
        let err = Vm::new(&p, config).run_unprofiled().unwrap_err();
        assert_eq!(err, VmError::StackOverflow { limit: 64 });
    }

    #[test]
    fn out_of_fuel_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 1_000_000, |c| {
                    c.nop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let config = VmConfig {
            max_cycles: Some(10_000),
            ..VmConfig::default()
        };
        let err = Vm::new(&p, config).run_unprofiled().unwrap_err();
        assert_eq!(err, VmError::OutOfFuel { budget: 10_000 });
    }

    #[test]
    fn arithmetic_on_reference_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.new_object(cls).const_(1).add().ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let err = Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap_err();
        assert!(matches!(err, VmError::TypeMismatch { .. }));
    }

    #[test]
    fn timer_ticks_fire_at_configured_rate() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 100_000, |c| {
                    c.nop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let vm = Vm::new(&p, VmConfig::default());
        let r = vm.run_unprofiled().unwrap();
        let expected = r.cycles / vm.config().timer_period();
        assert!(r.ticks > 0, "program long enough to see ticks");
        // Jittered periods average out to the configured rate.
        assert!(
            r.ticks.abs_diff(expected) <= expected / 4 + 1,
            "ticks {} vs expected {expected}",
            r.ticks
        );
        // With jitter disabled the rate is exact.
        let exact_cfg = VmConfig {
            timer_jitter: 0,
            ..VmConfig::default()
        };
        let exact_vm = Vm::new(&p, exact_cfg);
        let r2 = exact_vm.run_unprofiled().unwrap();
        assert_eq!(r2.ticks, r2.cycles / exact_vm.config().timer_period());
    }

    /// Satellite regression test for the tick-at-yieldpoint semantics
    /// documented at the tick-delivery loop: ticks fire at instruction
    /// boundaries (after the op's cost is charged, before it executes),
    /// so a tick landing "inside" a backedge jump is seen by that
    /// backedge's yieldpoint. The counts below pin the exact behavior for
    /// a tight loop under both flavors — any change to where ticks are
    /// delivered relative to the backedge (e.g. delivering them after the
    /// op executes, or one op late) shifts these numbers.
    #[test]
    fn tick_counts_are_pinned_per_flavor() {
        use crate::config::VmFlavor;
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 200_000, |c| {
                    c.nop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();

        // The flavors differ only in event delivery, never in timing:
        // the virtual clock advances identically, so the (jittered,
        // seeded) tick sequence is identical too.
        for flavor in [VmFlavor::Jikes, VmFlavor::J9] {
            let cfg = VmConfig {
                flavor,
                ..VmConfig::default()
            };
            let r = Vm::new(&p, cfg).run_unprofiled().unwrap();
            assert_eq!(
                (r.cycles, r.ticks),
                (1_600_010, 15),
                "pinned tick count changed under {flavor:?}"
            );
        }

        // With jitter disabled every period is exact, so the count is
        // exactly cycles / period.
        for flavor in [VmFlavor::Jikes, VmFlavor::J9] {
            let cfg = VmConfig {
                flavor,
                timer_jitter: 0,
                ..VmConfig::default()
            };
            let vm = Vm::new(&p, cfg);
            let r = vm.run_unprofiled().unwrap();
            assert_eq!(r.ticks, r.cycles / vm.config().timer_period());
            assert_eq!(r.ticks, 16, "pinned exact-period tick count");
        }
    }

    /// The optimized interpreter and the preserved reference interpreter
    /// must be observationally identical (the full differential suite
    /// lives in `tests/dispatch_equivalence.rs`; this is the in-crate
    /// smoke version).
    #[test]
    fn optimized_run_matches_reference() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 1, 0, |c| {
                c.load(0).const_(3).mul().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 5_000, |c| {
                    c.const_(2).call(f).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let config = VmConfig {
            num_threads: 2,
            ..VmConfig::default()
        };
        let vm = Vm::new(&p, config);
        let optimized = vm.run_with(&mut NullProfiler).unwrap();
        let reference = vm.run_reference(&mut NullProfiler).unwrap();
        assert_eq!(optimized, reference);
    }

    /// Superinstruction fusion must bail to the per-op path whenever a
    /// timer tick or the cycle budget would land inside a fused run, and
    /// the bail must be invisible. Shrinking the timer period to a few
    /// cycles makes nearly every fused run fail its guard, so this pins
    /// the fallback path against the reference interpreter.
    #[test]
    fn fused_runs_bail_identically_under_dense_ticks_and_budget() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 2, |c| {
                // Body dominated by fusible work-run quads, looped so the
                // fused entry pcs are hit thousands of times.
                c.counted_loop(0, 2_000, |c| {
                    c.load(1).const_(5).add().store(1);
                    c.load(1).const_(3).mul().store(1);
                    c.load(1).const_(0x55).bxor().store(1);
                    c.load(1).const_(7).sub().store(1);
                });
                c.load(1).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();

        // timer_hz 500_000 -> period 20 cycles, shorter than one quad
        // run, so the `next_tick > end_clock` guard fails constantly;
        // the default 100 Hz config covers the guard-passes side.
        for (timer_hz, timer_jitter) in [(500_000, 0), (100_000, 12_500), (100, 12_500)] {
            let cfg = VmConfig {
                timer_hz,
                timer_jitter,
                ..VmConfig::default()
            };
            let vm = Vm::new(&p, cfg);
            let optimized = vm.run_with(&mut NullProfiler).unwrap();
            let reference = vm.run_reference(&mut NullProfiler).unwrap();
            assert_eq!(optimized, reference, "hz={timer_hz} jitter={timer_jitter}");
            if timer_hz > 100 {
                assert!(optimized.ticks > 0, "ticks must land inside fused runs");
            }
        }

        // A budget expiring mid-run must surface the identical error from
        // both interpreters (the fusion guard also covers OutOfFuel).
        let cfg = VmConfig {
            max_cycles: Some(12_345),
            ..VmConfig::default()
        };
        let vm = Vm::new(&p, cfg);
        let optimized = vm.run_with(&mut NullProfiler).unwrap_err();
        let reference = vm.run_reference(&mut NullProfiler).unwrap_err();
        assert_eq!(optimized, reference);
    }

    /// Pins which shapes `scan_fused` recognizes: maximal work runs,
    /// forward-only test-branches, fold-accumulates, and the non-zero
    /// constant requirement for fused division.
    #[test]
    fn scan_fused_recognizes_expected_templates() {
        let costs = |code: &[Op]| vec![1u64; code.len()];

        // Two consecutive quads on slot 0 fuse into one maximal run
        // starting at pc 0; interior pcs stay per-op.
        let run = [
            Op::Load(0),
            Op::Const(5),
            Op::Add,
            Op::Store(0),
            Op::Load(0),
            Op::Const(1),
            Op::Xor,
            Op::Store(0),
            Op::Return,
        ];
        let fused = scan_fused(&run, &costs(&run));
        let f = fused[0].as_deref().expect("work run fuses");
        assert_eq!((f.num_ops, f.next_pc, f.total_cost), (8, 8, 8));
        assert!(matches!(&f.kind, FusedKind::WorkRun { slot: 0, steps } if steps.len() == 2));
        assert!(fused[1..].iter().all(Option::is_none), "interiors per-op");

        // Division fuses only when the constant divisor is non-zero.
        let div0 = [Op::Load(0), Op::Const(0), Op::Div, Op::Store(0), Op::Return];
        assert!(scan_fused(&div0, &costs(&div0))[0].is_none());
        let div2 = [Op::Load(0), Op::Const(2), Op::Div, Op::Store(0), Op::Return];
        assert!(scan_fused(&div2, &costs(&div2))[0].is_some());

        // Test-branch fuses only on a forward target: a backward jump is
        // a backedge yieldpoint and must stay per-op.
        let fwd = [
            Op::Load(1),
            Op::Const(3),
            Op::And,
            Op::JumpIfZero(6),
            Op::Nop,
            Op::Nop,
            Op::Return,
        ];
        let f = scan_fused(&fwd, &costs(&fwd))[0]
            .as_deref()
            .expect("forward test-branch fuses")
            .clone();
        assert_eq!((f.num_ops, f.next_pc), (4, 4));
        assert!(matches!(
            f.kind,
            FusedKind::TestBranch {
                slot: 1,
                k: 3,
                target: 6,
                jump_if_zero: true,
                ..
            }
        ));
        let back = [
            Op::Nop,
            Op::Load(1),
            Op::Const(3),
            Op::And,
            Op::JumpIfNonZero(0),
            Op::Return,
        ];
        assert!(scan_fused(&back, &costs(&back))[1].is_none());

        // Fold-accumulate: Load/binop/Store on the same slot.
        let fold = [Op::Load(2), Op::Add, Op::Store(2), Op::Return];
        let f = scan_fused(&fold, &costs(&fold))[0]
            .as_deref()
            .expect("fold fuses")
            .clone();
        assert_eq!((f.num_ops, f.next_pc, f.total_cost), (3, 3, 3));
        assert!(matches!(
            f.kind,
            FusedKind::FoldAccum {
                slot: 2,
                op: Op::Add
            }
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 1, 0, |c| {
                c.load(0).const_(3).mul().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.const_(0).store(0);
                c.counted_loop(0, 1000, |c| {
                    c.const_(2).call(f).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let vm = Vm::new(&p, VmConfig::default());
        let a = vm.run_unprofiled().unwrap();
        let b2 = vm.run_unprofiled().unwrap();
        assert_eq!(a, b2);
    }

    #[test]
    fn multithreaded_run_completes_all_threads() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 50_000, |c| {
                    c.nop();
                });
                c.const_(7).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let config = VmConfig {
            num_threads: 3,
            ..VmConfig::default()
        };
        let r = Vm::new(&p, config).run_unprofiled().unwrap();
        assert_eq!(r.return_values, vec![Value::Int(7); 3]);
        assert_eq!(r.invocations_of(main), 3);
    }
}

#[cfg(test)]
mod op_semantics_tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;

    /// Runs a straight-line body and returns its result.
    fn eval(build: impl FnOnce(&mut cbs_bytecode::CodeBuilder<'_>)) -> Value {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 2);
        let main = b.function("main", cls, 0, 4, build).unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .return_values[0]
    }

    #[test]
    fn division_and_remainder() {
        assert_eq!(
            eval(|c| {
                c.const_(17).const_(5).div().ret();
            }),
            Value::Int(3)
        );
        assert_eq!(
            eval(|c| {
                c.const_(17).const_(5).rem().ret();
            }),
            Value::Int(2)
        );
        assert_eq!(
            eval(|c| {
                c.const_(-17).const_(5).div().ret();
            }),
            Value::Int(-3)
        );
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            eval(|c| {
                c.const_(0b1100).const_(0b1010).band().ret();
            }),
            Value::Int(0b1000)
        );
        assert_eq!(
            eval(|c| {
                c.const_(0b1100).const_(0b1010).bor().ret();
            }),
            Value::Int(0b1110)
        );
        assert_eq!(
            eval(|c| {
                c.const_(0b1100).const_(0b1010).bxor().ret();
            }),
            Value::Int(0b0110)
        );
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(
            eval(|c| {
                c.const_(1).const_(4).shl().ret();
            }),
            Value::Int(16)
        );
        assert_eq!(
            eval(|c| {
                c.const_(-16).const_(2).shr().ret();
            }),
            Value::Int(-4)
        );
        // Shift amounts are masked to 6 bits, like real hardware.
        assert_eq!(
            eval(|c| {
                c.const_(1).const_(64).shl().ret();
            }),
            Value::Int(1)
        );
    }

    #[test]
    fn comparisons_produce_zero_one() {
        assert_eq!(
            eval(|c| {
                c.const_(3).const_(3).cmp_eq().ret();
            }),
            Value::Int(1)
        );
        assert_eq!(
            eval(|c| {
                c.const_(3).const_(4).cmp_eq().ret();
            }),
            Value::Int(0)
        );
        assert_eq!(
            eval(|c| {
                c.const_(3).const_(4).cmp_lt().ret();
            }),
            Value::Int(1)
        );
        assert_eq!(
            eval(|c| {
                c.const_(4).const_(3).cmp_gt().ret();
            }),
            Value::Int(1)
        );
        assert_eq!(
            eval(|c| {
                c.const_(-1).const_(1).cmp_gt().ret();
            }),
            Value::Int(0)
        );
    }

    #[test]
    fn stack_shuffles() {
        assert_eq!(
            eval(|c| {
                c.const_(2).const_(5).swap().sub().ret();
            }),
            Value::Int(3),
            "swap: 5 - 2"
        );
        assert_eq!(
            eval(|c| {
                c.const_(6).dup().mul().ret();
            }),
            Value::Int(36)
        );
        assert_eq!(
            eval(|c| {
                c.const_(1).const_(9).pop().ret();
            }),
            Value::Int(1)
        );
    }

    #[test]
    fn negation_and_wrapping() {
        assert_eq!(
            eval(|c| {
                c.const_(5).neg().ret();
            }),
            Value::Int(-5)
        );
        assert_eq!(
            eval(|c| {
                c.const_(i64::MAX).const_(1).add().ret();
            }),
            Value::Int(i64::MIN),
            "two's-complement wrap-around"
        );
    }

    #[test]
    fn io_pushes_dummy_and_charges_cycles() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.io(50).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let vm = Vm::new(&p, VmConfig::default());
        let r = vm.run_unprofiled().unwrap();
        assert_eq!(r.return_values[0], Value::Int(0));
        assert!(
            r.cycles >= 50 * vm.config().cost.io_unit,
            "I/O must dominate the cycle count: {}",
            r.cycles
        );
    }

    #[test]
    fn comparing_distinct_refs_is_false_same_ref_true() {
        assert_eq!(
            eval(|c| {
                let cls = cbs_bytecode::ClassId::new(0);
                c.new_object(cls).new_object(cls).cmp_eq().ret();
            }),
            Value::Int(0)
        );
        assert_eq!(
            eval(|c| {
                let cls = cbs_bytecode::ClassId::new(0);
                c.new_object(cls).dup().cmp_eq().ret();
            }),
            Value::Int(1)
        );
    }

    #[test]
    fn recursion_with_depth_within_limit() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let fib = b.declare("fib", cls, 1);
        b.define(fib, 0, |c| {
            let base = c.label();
            c.load(0).const_(2).cmp_lt().jump_if_non_zero(base);
            c.load(0).const_(1).sub().call(fib);
            c.load(0).const_(2).sub().call(fib);
            c.add().ret();
            c.bind(base).load(0).ret();
        })
        .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(15).call(fib).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let r = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        assert_eq!(r.return_values[0], Value::Int(610), "fib(15)");
    }
}
