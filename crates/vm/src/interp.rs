//! The bytecode interpreter: a cycle-accurate simulated VM.
//!
//! The interpreter executes a verified [`Program`] on a virtual clock
//! (every instruction charges its [`CostModel`](crate::CostModel) cycles),
//! fires timer interrupts at the configured frequency, and reports every
//! profiler-observable event to the attached [`Profiler`]. Green threads
//! are scheduled cooperatively: a timer interrupt requests a switch, which
//! happens at the next yieldpoint (call, return or backedge) — mirroring
//! how Jikes RVM's thread scheduler interacts with its yieldpoints.

use crate::config::VmConfig;
use crate::error::VmError;
use crate::events::{CallEvent, NullProfiler, Profiler, StackSlice, ThreadId};
use crate::frame::Frame;
use crate::report::ExecReport;
use crate::value::{Heap, Value};
use cbs_bytecode::{MethodId, Op, Program};
use cbs_dcg::CallEdge;

/// A configured virtual machine, ready to run a program.
///
/// `Vm` is stateless across runs: [`Vm::run`] builds all execution state
/// locally, so one `Vm` can run its program repeatedly (e.g. once per
/// profiler configuration) with identical results.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
}

#[derive(Debug)]
struct ThreadState {
    frames: Vec<Frame>,
    done: bool,
    result: Value,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program`.
    ///
    /// The program is assumed verified (as [`ProgramBuilder::build`]
    /// guarantees); the interpreter traps rather than panics on dynamic
    /// faults, but structural faults in unverified code may still panic.
    ///
    /// [`ProgramBuilder::build`]: cbs_bytecode::ProgramBuilder::build
    pub fn new(program: &'p Program, config: VmConfig) -> Self {
        Self { program, config }
    }

    /// The program under execution.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Runs the program to completion with no profiler attached.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime trap.
    pub fn run_unprofiled(&self) -> Result<ExecReport, VmError> {
        self.run(&mut NullProfiler)
    }

    /// Runs the program to completion, reporting events to `profiler`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on division by zero, type mismatch, stack
    /// overflow, out-of-range field access, unresolvable dispatch, or an
    /// exhausted cycle budget.
    pub fn run(&self, profiler: &mut dyn Profiler) -> Result<ExecReport, VmError> {
        let program = self.program;
        let cost = &self.config.cost;
        let flavor = self.config.flavor;
        let period = self.config.timer_period();
        let entry = program.entry();
        let entry_locals = program.method(entry).num_locals();

        let mut heap = Heap::new();
        let mut invocations = vec![0u64; program.num_methods()];
        let mut threads: Vec<ThreadState> = (0..self.config.num_threads.max(1))
            .map(|_| {
                invocations[entry.index()] += 1;
                ThreadState {
                    frames: vec![Frame::new(entry, entry_locals)],
                    done: false,
                    result: Value::default(),
                }
            })
            .collect();

        let jitter = self.config.timer_jitter.min(period.saturating_sub(1));
        let mut jitter_state = self.config.timer_seed | 1;
        let mut draw_period = move || {
            if jitter == 0 {
                return period;
            }
            // xorshift64: deterministic, cheap, seeded.
            jitter_state ^= jitter_state << 13;
            jitter_state ^= jitter_state >> 7;
            jitter_state ^= jitter_state << 17;
            period - jitter + jitter_state % (2 * jitter + 1)
        };

        let mut clock: u64 = 0;
        let mut next_tick: u64 = draw_period();
        let mut ticks: u64 = 0;
        let mut instructions: u64 = 0;
        let mut calls: u64 = 0;
        let mut cur = 0usize;

        while threads.iter().any(|t| !t.done) {
            if threads[cur].done {
                cur = (cur + 1) % threads.len();
                continue;
            }
            let tid = ThreadId(cur as u32);
            let t = &mut threads[cur];
            let mut pending_switch = false;

            'slice: loop {
                let (mid, pc) = {
                    let f = t.frames.last().expect("running thread has frames");
                    (f.method(), f.pc())
                };
                let op = program.method(mid).code()[pc as usize];

                clock += cost.op_cost(&op);
                instructions += 1;
                if let Some(budget) = self.config.max_cycles {
                    if clock > budget {
                        return Err(VmError::OutOfFuel { budget });
                    }
                }
                while next_tick <= clock {
                    ticks += 1;
                    profiler.on_tick(next_tick, tid, StackSlice::new(&t.frames));
                    next_tick += draw_period();
                    pending_switch = true;
                }

                match op {
                    Op::Const(v) => {
                        let f = t.frames.last_mut().expect("frame");
                        f.push(Value::Int(v));
                        f.set_pc(pc + 1);
                    }
                    Op::Load(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = f.locals()[usize::from(n)];
                        f.push(v);
                        f.set_pc(pc + 1);
                    }
                    Op::Store(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = pop_val(f, mid, pc)?;
                        f.locals_mut()[usize::from(n)] = v;
                        f.set_pc(pc + 1);
                    }
                    Op::Dup => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = f
                            .peek(0)
                            .ok_or(VmError::OperandUnderflow { method: mid, pc })?;
                        f.push(v);
                        f.set_pc(pc + 1);
                    }
                    Op::Pop => {
                        let f = t.frames.last_mut().expect("frame");
                        pop_val(f, mid, pc)?;
                        f.set_pc(pc + 1);
                    }
                    Op::Swap => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_val(f, mid, pc)?;
                        let a = pop_val(f, mid, pc)?;
                        f.push(b);
                        f.push(a);
                        f.set_pc(pc + 1);
                    }
                    Op::Add
                    | Op::Sub
                    | Op::Mul
                    | Op::And
                    | Op::Or
                    | Op::Xor
                    | Op::Shl
                    | Op::Shr
                    | Op::CmpLt
                    | Op::CmpGt => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_int(f, mid, pc)?;
                        let a = pop_int(f, mid, pc)?;
                        let r = match op {
                            Op::Add => a.wrapping_add(b),
                            Op::Sub => a.wrapping_sub(b),
                            Op::Mul => a.wrapping_mul(b),
                            Op::And => a & b,
                            Op::Or => a | b,
                            Op::Xor => a ^ b,
                            Op::Shl => a.wrapping_shl(b as u32 & 63),
                            Op::Shr => a.wrapping_shr(b as u32 & 63),
                            Op::CmpLt => i64::from(a < b),
                            Op::CmpGt => i64::from(a > b),
                            _ => unreachable!(),
                        };
                        f.push(Value::Int(r));
                        f.set_pc(pc + 1);
                    }
                    Op::Div | Op::Rem => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_int(f, mid, pc)?;
                        let a = pop_int(f, mid, pc)?;
                        if b == 0 {
                            return Err(VmError::DivisionByZero { method: mid, pc });
                        }
                        let r = if matches!(op, Op::Div) {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        };
                        f.push(Value::Int(r));
                        f.set_pc(pc + 1);
                    }
                    Op::Neg => {
                        let f = t.frames.last_mut().expect("frame");
                        let a = pop_int(f, mid, pc)?;
                        f.push(Value::Int(a.wrapping_neg()));
                        f.set_pc(pc + 1);
                    }
                    Op::CmpEq => {
                        let f = t.frames.last_mut().expect("frame");
                        let b = pop_val(f, mid, pc)?;
                        let a = pop_val(f, mid, pc)?;
                        f.push(Value::Int(i64::from(a == b)));
                        f.set_pc(pc + 1);
                    }
                    Op::Jump(target) => {
                        let backedge = target <= pc;
                        t.frames.last_mut().expect("frame").set_pc(target);
                        if backedge && flavor.has_backedge_yieldpoints() {
                            profiler.on_backedge(mid, clock, tid);
                            if pending_switch {
                                break 'slice;
                            }
                        }
                    }
                    Op::JumpIfZero(target) | Op::JumpIfNonZero(target) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = pop_val(f, mid, pc)?;
                        let jump = if matches!(op, Op::JumpIfZero(_)) {
                            !v.is_truthy()
                        } else {
                            v.is_truthy()
                        };
                        if jump {
                            f.set_pc(target);
                            if target <= pc && flavor.has_backedge_yieldpoints() {
                                profiler.on_backedge(mid, clock, tid);
                                if pending_switch {
                                    break 'slice;
                                }
                            }
                        } else {
                            f.set_pc(pc + 1);
                        }
                    }
                    Op::Call { site, target } => {
                        calls += 1;
                        invocations[target.index()] += 1;
                        push_callee(
                            t,
                            program,
                            mid,
                            pc,
                            site,
                            target,
                            self.config.max_stack_depth,
                        )?;
                        profiler.on_entry(&CallEvent {
                            edge: CallEdge::new(mid, site, target),
                            clock,
                            thread: tid,
                            stack: StackSlice::new(&t.frames),
                        });
                        if pending_switch {
                            break 'slice;
                        }
                    }
                    Op::CallVirtual { site, slot, arity } => {
                        let receiver = {
                            let f = t.frames.last().expect("frame");
                            f.peek(usize::from(arity) - 1)
                                .ok_or(VmError::OperandUnderflow { method: mid, pc })?
                        };
                        let r = receiver.as_ref().ok_or(VmError::TypeMismatch {
                            method: mid,
                            pc,
                            expected: "object receiver",
                        })?;
                        let target = self
                            .program
                            .class(heap.class_of(r))
                            .resolve(slot)
                            .ok_or(VmError::BadVirtualDispatch { method: mid, pc })?;
                        calls += 1;
                        invocations[target.index()] += 1;
                        push_callee(
                            t,
                            program,
                            mid,
                            pc,
                            site,
                            target,
                            self.config.max_stack_depth,
                        )?;
                        profiler.on_entry(&CallEvent {
                            edge: CallEdge::new(mid, site, target),
                            clock,
                            thread: tid,
                            stack: StackSlice::new(&t.frames),
                        });
                        if pending_switch {
                            break 'slice;
                        }
                    }
                    Op::Return => {
                        let rv = {
                            let f = t.frames.last_mut().expect("frame");
                            pop_val(f, mid, pc)?
                        };
                        if t.frames.len() == 1 {
                            t.done = true;
                            t.result = rv;
                            break 'slice;
                        }
                        if flavor.samples_exits() {
                            let caller = &t.frames[t.frames.len() - 2];
                            let edge = CallEdge::new(
                                caller.method(),
                                caller.pending_site().expect("caller has in-flight site"),
                                mid,
                            );
                            profiler.on_exit(&CallEvent {
                                edge,
                                clock,
                                thread: tid,
                                stack: StackSlice::new(&t.frames),
                            });
                        }
                        t.frames.pop();
                        let caller = t.frames.last_mut().expect("caller frame");
                        caller.set_pending_site(None);
                        caller.push(rv);
                        if pending_switch {
                            break 'slice;
                        }
                    }
                    Op::GetField(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let r = pop_obj(f, mid, pc)?;
                        let v = heap
                            .get_field(r, n)
                            .ok_or(VmError::FieldOutOfRange { method: mid, pc })?;
                        f.push(v);
                        f.set_pc(pc + 1);
                    }
                    Op::PutField(n) => {
                        let f = t.frames.last_mut().expect("frame");
                        let v = pop_val(f, mid, pc)?;
                        let r = pop_obj(f, mid, pc)?;
                        if !heap.put_field(r, n, v) {
                            return Err(VmError::FieldOutOfRange { method: mid, pc });
                        }
                        f.set_pc(pc + 1);
                    }
                    Op::New(class) => {
                        let num_fields = program.class(class).num_fields();
                        let r = heap.alloc(class, num_fields);
                        let f = t.frames.last_mut().expect("frame");
                        f.push(Value::Ref(r));
                        f.set_pc(pc + 1);
                    }
                    Op::GuardClass { class, not_taken } => {
                        let f = t.frames.last_mut().expect("frame");
                        let r = pop_obj(f, mid, pc)?;
                        if heap.class_of(r) == class {
                            f.set_pc(pc + 1);
                        } else {
                            f.set_pc(not_taken);
                        }
                    }
                    Op::Io(_) => {
                        // Cost was charged above; the "result" is a dummy.
                        let f = t.frames.last_mut().expect("frame");
                        f.push(Value::Int(0));
                        f.set_pc(pc + 1);
                    }
                    Op::Nop => {
                        t.frames.last_mut().expect("frame").set_pc(pc + 1);
                    }
                }
            }

            cur = (cur + 1) % threads.len();
        }

        Ok(ExecReport {
            cycles: clock,
            seconds: self.config.cycles_to_seconds(clock),
            instructions,
            calls,
            ticks,
            invocations,
            return_values: threads.into_iter().map(|t| t.result).collect(),
        })
    }
}

/// Pops the callee's arguments from the caller, pushes the callee frame.
fn push_callee(
    t: &mut ThreadState,
    program: &Program,
    caller: MethodId,
    pc: u32,
    site: cbs_bytecode::CallSiteId,
    target: MethodId,
    max_depth: usize,
) -> Result<(), VmError> {
    if t.frames.len() >= max_depth {
        return Err(VmError::StackOverflow { limit: max_depth });
    }
    let callee = program.method(target);
    let mut frame = Frame::new(target, callee.num_locals());
    let arity = usize::from(callee.num_params());
    {
        let caller_frame = t.frames.last_mut().expect("caller frame");
        for i in (0..arity).rev() {
            let v = caller_frame
                .pop()
                .ok_or(VmError::OperandUnderflow { method: caller, pc })?;
            frame.locals_mut()[i] = v;
        }
        caller_frame.set_pc(pc + 1); // return address
        caller_frame.set_pending_site(Some(site));
    }
    t.frames.push(frame);
    Ok(())
}

fn pop_val(f: &mut Frame, method: MethodId, pc: u32) -> Result<Value, VmError> {
    f.pop().ok_or(VmError::OperandUnderflow { method, pc })
}

fn pop_int(f: &mut Frame, method: MethodId, pc: u32) -> Result<i64, VmError> {
    pop_val(f, method, pc)?
        .as_int()
        .ok_or(VmError::TypeMismatch {
            method,
            pc,
            expected: "integer",
        })
}

fn pop_obj(f: &mut Frame, method: MethodId, pc: u32) -> Result<crate::value::ObjRef, VmError> {
    pop_val(f, method, pc)?
        .as_ref()
        .ok_or(VmError::TypeMismatch {
            method,
            pc,
            expected: "object reference",
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{ProgramBuilder, VirtualSlot};

    fn run_program(b: ProgramBuilder) -> ExecReport {
        let p = b.build().unwrap();
        Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap()
    }

    #[test]
    fn arithmetic_program_computes() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                // (3 + 4) * 5 - 1 = 34
                c.const_(3)
                    .const_(4)
                    .add()
                    .const_(5)
                    .mul()
                    .const_(1)
                    .sub()
                    .ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(34)]);
        assert!(r.cycles > 0);
        assert!(r.instructions >= 7);
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let sub2 = b
            .function("sub2", cls, 2, 0, |c| {
                c.load(0).load(1).sub().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(10).const_(3).call(sub2).ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(7)]);
        assert_eq!(r.calls, 1);
        assert_eq!(r.invocations_of(sub2), 1);
        assert_eq!(r.methods_executed(), 2);
    }

    #[test]
    fn loop_iterates_correct_count() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 2, |c| {
                // sum 1..=5 via a counted loop (slot 0 counter, slot 1 acc)
                c.counted_loop(0, 5, |c| {
                    c.load(1).load(0).add().store(1);
                });
                c.load(1).ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(15)]);
    }

    #[test]
    fn virtual_dispatch_selects_by_receiver_class() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 0);
        let f_base = b
            .function("Base.f", base, 1, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        b.set_vtable(base, VirtualSlot::new(0), f_base);
        let sub = b.add_subclass("Sub", base, 0);
        let f_sub = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.const_(2).ret();
            })
            .unwrap();
        b.set_vtable(sub, VirtualSlot::new(0), f_sub);
        let main = b
            .function("main", base, 0, 0, |c| {
                c.new_object(base)
                    .call_virtual(VirtualSlot::new(0), 1)
                    .new_object(sub)
                    .call_virtual(VirtualSlot::new(0), 1)
                    .const_(10)
                    .mul()
                    .add()
                    .ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        // base.f()=1 + sub.f()=2 * 10 = 21
        assert_eq!(r.return_values, vec![Value::Int(21)]);
    }

    #[test]
    fn fields_store_and_load() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 2);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.new_object(cls).store(0);
                c.load(0).const_(5).put_field(1);
                c.load(0).get_field(1).ret();
            })
            .unwrap();
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(r.return_values, vec![Value::Int(5)]);
    }

    #[test]
    fn guard_class_branches_on_exact_class() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 0);
        let sub = b.add_subclass("Sub", base, 0);
        // Dummy virtual method so classes are realistic (not required).
        let main = b
            .function("main", base, 0, 1, |c| {
                let miss = c.label();
                let done = c.label();
                c.new_object(sub).store(0);
                c.load(0).guard_class(base, miss);
                c.const_(1).jump(done);
                c.bind(miss).const_(2);
                c.bind(done).ret();
            })
            .unwrap();
        let _ = sub;
        b.set_entry(main);
        let r = run_program(b);
        assert_eq!(
            r.return_values,
            vec![Value::Int(2)],
            "guard must miss: Sub != Base"
        );
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(1).const_(0).div().ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let err = Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
    }

    #[test]
    fn stack_overflow_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let rec = b.declare("rec", cls, 0);
        b.define(rec, 0, |c| {
            c.call(rec).ret();
        })
        .unwrap();
        b.set_entry(rec);
        let p = b.build().unwrap();
        let config = VmConfig {
            max_stack_depth: 64,
            ..VmConfig::default()
        };
        let err = Vm::new(&p, config).run_unprofiled().unwrap_err();
        assert_eq!(err, VmError::StackOverflow { limit: 64 });
    }

    #[test]
    fn out_of_fuel_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 1_000_000, |c| {
                    c.nop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let config = VmConfig {
            max_cycles: Some(10_000),
            ..VmConfig::default()
        };
        let err = Vm::new(&p, config).run_unprofiled().unwrap_err();
        assert_eq!(err, VmError::OutOfFuel { budget: 10_000 });
    }

    #[test]
    fn arithmetic_on_reference_traps() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.new_object(cls).const_(1).add().ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let err = Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap_err();
        assert!(matches!(err, VmError::TypeMismatch { .. }));
    }

    #[test]
    fn timer_ticks_fire_at_configured_rate() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 100_000, |c| {
                    c.nop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let vm = Vm::new(&p, VmConfig::default());
        let r = vm.run_unprofiled().unwrap();
        let expected = r.cycles / vm.config().timer_period();
        assert!(r.ticks > 0, "program long enough to see ticks");
        // Jittered periods average out to the configured rate.
        assert!(
            r.ticks.abs_diff(expected) <= expected / 4 + 1,
            "ticks {} vs expected {expected}",
            r.ticks
        );
        // With jitter disabled the rate is exact.
        let exact_cfg = VmConfig {
            timer_jitter: 0,
            ..VmConfig::default()
        };
        let exact_vm = Vm::new(&p, exact_cfg);
        let r2 = exact_vm.run_unprofiled().unwrap();
        assert_eq!(r2.ticks, r2.cycles / exact_vm.config().timer_period());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 1, 0, |c| {
                c.load(0).const_(3).mul().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.const_(0).store(0);
                c.counted_loop(0, 1000, |c| {
                    c.const_(2).call(f).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let vm = Vm::new(&p, VmConfig::default());
        let a = vm.run_unprofiled().unwrap();
        let b2 = vm.run_unprofiled().unwrap();
        assert_eq!(a, b2);
    }

    #[test]
    fn multithreaded_run_completes_all_threads() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 50_000, |c| {
                    c.nop();
                });
                c.const_(7).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let config = VmConfig {
            num_threads: 3,
            ..VmConfig::default()
        };
        let r = Vm::new(&p, config).run_unprofiled().unwrap();
        assert_eq!(r.return_values, vec![Value::Int(7); 3]);
        assert_eq!(r.invocations_of(main), 3);
    }
}

#[cfg(test)]
mod op_semantics_tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;

    /// Runs a straight-line body and returns its result.
    fn eval(build: impl FnOnce(&mut cbs_bytecode::CodeBuilder<'_>)) -> Value {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 2);
        let main = b.function("main", cls, 0, 4, build).unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        Vm::new(&p, VmConfig::default())
            .run_unprofiled()
            .unwrap()
            .return_values[0]
    }

    #[test]
    fn division_and_remainder() {
        assert_eq!(
            eval(|c| {
                c.const_(17).const_(5).div().ret();
            }),
            Value::Int(3)
        );
        assert_eq!(
            eval(|c| {
                c.const_(17).const_(5).rem().ret();
            }),
            Value::Int(2)
        );
        assert_eq!(
            eval(|c| {
                c.const_(-17).const_(5).div().ret();
            }),
            Value::Int(-3)
        );
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            eval(|c| {
                c.const_(0b1100).const_(0b1010).band().ret();
            }),
            Value::Int(0b1000)
        );
        assert_eq!(
            eval(|c| {
                c.const_(0b1100).const_(0b1010).bor().ret();
            }),
            Value::Int(0b1110)
        );
        assert_eq!(
            eval(|c| {
                c.const_(0b1100).const_(0b1010).bxor().ret();
            }),
            Value::Int(0b0110)
        );
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(
            eval(|c| {
                c.const_(1).const_(4).shl().ret();
            }),
            Value::Int(16)
        );
        assert_eq!(
            eval(|c| {
                c.const_(-16).const_(2).shr().ret();
            }),
            Value::Int(-4)
        );
        // Shift amounts are masked to 6 bits, like real hardware.
        assert_eq!(
            eval(|c| {
                c.const_(1).const_(64).shl().ret();
            }),
            Value::Int(1)
        );
    }

    #[test]
    fn comparisons_produce_zero_one() {
        assert_eq!(
            eval(|c| {
                c.const_(3).const_(3).cmp_eq().ret();
            }),
            Value::Int(1)
        );
        assert_eq!(
            eval(|c| {
                c.const_(3).const_(4).cmp_eq().ret();
            }),
            Value::Int(0)
        );
        assert_eq!(
            eval(|c| {
                c.const_(3).const_(4).cmp_lt().ret();
            }),
            Value::Int(1)
        );
        assert_eq!(
            eval(|c| {
                c.const_(4).const_(3).cmp_gt().ret();
            }),
            Value::Int(1)
        );
        assert_eq!(
            eval(|c| {
                c.const_(-1).const_(1).cmp_gt().ret();
            }),
            Value::Int(0)
        );
    }

    #[test]
    fn stack_shuffles() {
        assert_eq!(
            eval(|c| {
                c.const_(2).const_(5).swap().sub().ret();
            }),
            Value::Int(3),
            "swap: 5 - 2"
        );
        assert_eq!(
            eval(|c| {
                c.const_(6).dup().mul().ret();
            }),
            Value::Int(36)
        );
        assert_eq!(
            eval(|c| {
                c.const_(1).const_(9).pop().ret();
            }),
            Value::Int(1)
        );
    }

    #[test]
    fn negation_and_wrapping() {
        assert_eq!(
            eval(|c| {
                c.const_(5).neg().ret();
            }),
            Value::Int(-5)
        );
        assert_eq!(
            eval(|c| {
                c.const_(i64::MAX).const_(1).add().ret();
            }),
            Value::Int(i64::MIN),
            "two's-complement wrap-around"
        );
    }

    #[test]
    fn io_pushes_dummy_and_charges_cycles() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.io(50).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let vm = Vm::new(&p, VmConfig::default());
        let r = vm.run_unprofiled().unwrap();
        assert_eq!(r.return_values[0], Value::Int(0));
        assert!(
            r.cycles >= 50 * vm.config().cost.io_unit,
            "I/O must dominate the cycle count: {}",
            r.cycles
        );
    }

    #[test]
    fn comparing_distinct_refs_is_false_same_ref_true() {
        assert_eq!(
            eval(|c| {
                let cls = cbs_bytecode::ClassId::new(0);
                c.new_object(cls).new_object(cls).cmp_eq().ret();
            }),
            Value::Int(0)
        );
        assert_eq!(
            eval(|c| {
                let cls = cbs_bytecode::ClassId::new(0);
                c.new_object(cls).dup().cmp_eq().ret();
            }),
            Value::Int(1)
        );
    }

    #[test]
    fn recursion_with_depth_within_limit() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let fib = b.declare("fib", cls, 1);
        b.define(fib, 0, |c| {
            let base = c.label();
            c.load(0).const_(2).cmp_lt().jump_if_non_zero(base);
            c.load(0).const_(1).sub().call(fib);
            c.load(0).const_(2).sub().call(fib);
            c.add().ret();
            c.bind(base).load(0).ret();
        })
        .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(15).call(fib).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let r = Vm::new(&p, VmConfig::default()).run_unprofiled().unwrap();
        assert_eq!(r.return_values[0], Value::Int(610), "fib(15)");
    }
}
