//! Execution reports.

use crate::value::Value;
use cbs_bytecode::{MethodId, Program};

/// Summary of one VM run: the quantities the study's tables are built
/// from.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Total virtual cycles consumed by the program (the *base* cost —
    /// profiler overhead is accounted separately by each profiler).
    pub cycles: u64,
    /// Simulated wall-clock seconds (`cycles / cycles_per_second`).
    pub seconds: f64,
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Dynamic calls executed (direct + virtual).
    pub calls: u64,
    /// Timer interrupts fired.
    pub ticks: u64,
    /// Per-method invocation counts, indexed by [`MethodId`].
    pub invocations: Vec<u64>,
    /// Value returned by each thread's entry invocation.
    pub return_values: Vec<Value>,
}

impl ExecReport {
    /// Number of methods executed at least once (Table 1, "Meth exe").
    pub fn methods_executed(&self) -> usize {
        self.invocations.iter().filter(|&&n| n > 0).count()
    }

    /// Total bytecode size of executed methods, in bytes (Table 1,
    /// "Size").
    pub fn executed_bytecode_bytes(&self, program: &Program) -> u64 {
        self.invocations
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, _)| u64::from(program.method(MethodId::new(i as u32)).size_bytes()))
            .sum()
    }

    /// Invocation count of one method.
    pub fn invocations_of(&self, method: MethodId) -> u64 {
        self.invocations.get(method.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;

    #[test]
    fn derived_quantities() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.const_(0).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.call(f).ret();
            })
            .unwrap();
        let unused = b
            .function("unused", cls, 0, 0, |c| {
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();

        let report = ExecReport {
            cycles: 100,
            seconds: 0.5,
            instructions: 4,
            calls: 1,
            ticks: 0,
            invocations: vec![1, 1, 0],
            return_values: vec![Value::Int(0)],
        };
        assert_eq!(report.methods_executed(), 2);
        let expected = u64::from(p.method(f).size_bytes()) + u64::from(p.method(main).size_bytes());
        assert_eq!(report.executed_bytecode_bytes(&p), expected);
        assert_eq!(report.invocations_of(unused), 0);
        assert_eq!(report.invocations_of(main), 1);
        assert_eq!(report.invocations_of(MethodId::new(99)), 0);
    }
}
