//! Profiling events and the [`Profiler`] hook trait.
//!
//! The interpreter reports every dynamic event a production VM's profiling
//! hosting mechanism could observe: timer interrupts, method entries
//! (prologue yieldpoints / entry checks), method exits (epilogue
//! yieldpoints; Jikes flavor only) and loop backedges. Profilers decide —
//! exactly as the runtime logic of the paper's Figure 3 does — which events
//! to act on, and account for their own *simulated* cost, so many profiler
//! configurations can observe a single run without perturbing it or each
//! other.

use crate::frame::Frame;
use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, ContextStep};
use std::fmt;

/// Identifies a VM green thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Synthetic call site used for the entry frame of each thread, which has
/// no caller.
pub const ROOT_SITE: CallSiteId = CallSiteId(u32::MAX);

/// A read-only view of one thread's call stack at an event.
///
/// Walking the stack is how a sample is taken; the *simulated* cost of the
/// walk is charged by the profiler via its cost model, not by this type.
#[derive(Debug, Clone, Copy)]
pub struct StackSlice<'a> {
    frames: &'a [Frame],
}

/// One frame reported by a stack walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Executing method.
    pub method: MethodId,
    /// Current instruction index.
    pub pc: u32,
}

impl<'a> StackSlice<'a> {
    /// Wraps a frame stack (outermost first, as stored by the VM).
    pub(crate) fn new(frames: &'a [Frame]) -> Self {
        Self { frames }
    }

    /// Builds a stack view from raw frames, for testing profilers without
    /// running a VM. Real slices are only ever produced by the
    /// interpreter.
    #[doc(hidden)]
    pub fn for_testing(frames: &'a [Frame]) -> Self {
        Self { frames }
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Returns frame `i`, where 0 is the **innermost** (currently
    /// executing) frame. `None` when out of range.
    pub fn frame(&self, i: usize) -> Option<FrameInfo> {
        let idx = self.frames.len().checked_sub(i + 1)?;
        let f = &self.frames[idx];
        Some(FrameInfo {
            method: f.method(),
            pc: f.pc(),
        })
    }

    /// The innermost frame.
    ///
    /// # Panics
    ///
    /// Panics on an empty stack, which the VM never reports.
    pub fn top(&self) -> FrameInfo {
        self.frame(0)
            .expect("events are never delivered on empty stacks")
    }

    /// The full calling context as [`ContextStep`]s, outermost first,
    /// without allocating.
    ///
    /// The entry frame's step uses the synthetic [`ROOT_SITE`], since it
    /// has no caller. This is the hot-path form of
    /// [`context_path`](Self::context_path): samplers that feed a calling
    /// context tree walk the iterator directly instead of materializing a
    /// `Vec<ContextStep>` per sample.
    pub fn context_steps(&self) -> impl Iterator<Item = ContextStep> + '_ {
        self.frames.iter().enumerate().map(|(i, f)| {
            let site = if i == 0 {
                ROOT_SITE
            } else {
                self.frames[i - 1]
                    .pending_site()
                    .expect("inner frames are reached through a call")
            };
            ContextStep {
                site,
                method: f.method(),
            }
        })
    }

    /// The full calling context as a `Vec<ContextStep>`, outermost first.
    ///
    /// Allocating convenience wrapper over
    /// [`context_steps`](Self::context_steps); prefer the iterator on
    /// per-sample paths.
    pub fn context_path(&self) -> Vec<ContextStep> {
        self.context_steps().collect()
    }
}

/// A method entry or exit observed by the hosting mechanism.
#[derive(Debug, Clone, Copy)]
pub struct CallEvent<'a> {
    /// The dynamic call edge (for an exit event: the edge being returned
    /// across).
    pub edge: CallEdge,
    /// Virtual clock at the event.
    pub clock: u64,
    /// Thread on which the event occurred.
    pub thread: ThreadId,
    /// The thread's stack, innermost frame = the callee.
    pub stack: StackSlice<'a>,
}

/// A call-graph profiler plugged into the VM.
///
/// All methods default to no-ops so a profiler implements only the events
/// its mechanism can observe. Implementations accumulate their own
/// simulated overhead (see `cbs-profiler`); the VM charges nothing on
/// their behalf.
pub trait Profiler {
    /// A timer interrupt fired at `clock` while `thread` was executing
    /// with the given stack.
    fn on_tick(&mut self, clock: u64, thread: ThreadId, stack: StackSlice<'_>) {
        let _ = (clock, thread, stack);
    }

    /// A method was entered (prologue yieldpoint / entry check).
    fn on_entry(&mut self, event: &CallEvent<'_>) {
        let _ = event;
    }

    /// A method is about to return (epilogue yieldpoint). Only delivered
    /// by the Jikes flavor.
    fn on_exit(&mut self, event: &CallEvent<'_>) {
        let _ = event;
    }

    /// A loop backedge executed. Only delivered by the Jikes flavor.
    fn on_backedge(&mut self, method: MethodId, clock: u64, thread: ThreadId) {
        let _ = (method, clock, thread);
    }

    /// The run completed successfully at `clock`. Delivered exactly once,
    /// after the last thread finishes and before the VM builds its
    /// report. Profilers that buffer samples (e.g. CBS window batches)
    /// flush them here so post-run graph reads observe every sample; it
    /// is not delivered when the run traps.
    fn on_finish(&mut self, clock: u64) {
        let _ = clock;
    }
}

/// A profiler that observes nothing: the baseline configuration against
/// which overhead is measured.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn frame(method: u32, pc: u32, pending: Option<u32>) -> Frame {
        let mut f = Frame::new(MethodId::new(method), 0);
        f.set_pc(pc);
        if let Some(s) = pending {
            f.set_pending_site(Some(CallSiteId::new(s)));
        }
        f
    }

    #[test]
    fn stack_slice_indexes_innermost_first() {
        let frames = vec![
            frame(0, 5, Some(1)),
            frame(1, 2, Some(3)),
            frame(2, 0, None),
        ];
        let s = StackSlice::new(&frames);
        assert_eq!(s.depth(), 3);
        assert_eq!(s.top().method, MethodId::new(2));
        assert_eq!(s.frame(2).unwrap().method, MethodId::new(0));
        assert!(s.frame(3).is_none());
    }

    #[test]
    fn context_path_is_outermost_first_with_root_site() {
        let frames = vec![
            frame(0, 5, Some(1)),
            frame(1, 2, Some(3)),
            frame(2, 0, None),
        ];
        let s = StackSlice::new(&frames);
        let path = s.context_path();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].site, ROOT_SITE);
        assert_eq!(path[0].method, MethodId::new(0));
        assert_eq!(path[1].site, CallSiteId::new(1));
        assert_eq!(path[2].site, CallSiteId::new(3));
        assert_eq!(path[2].method, MethodId::new(2));
    }

    #[test]
    fn null_profiler_ignores_everything() {
        let mut p = NullProfiler;
        let frames = vec![frame(0, 0, None)];
        p.on_tick(1, ThreadId(0), StackSlice::new(&frames));
        p.on_backedge(MethodId::new(0), 2, ThreadId(0));
        // No state, nothing to assert beyond "did not panic".
    }
}
