//! # cbs-vm
//!
//! A cycle-accurate simulated virtual machine — the substrate that hosts
//! the call-graph profilers of the Arnold–Grove CGO'05 reproduction.
//!
//! The VM interprets [`cbs_bytecode`] programs on a virtual clock: every
//! instruction charges [`CostModel`] cycles, a simulated timer fires at a
//! configurable frequency (default 100 Hz, matching the 10 ms Linux
//! granularity the paper cites), and each event a production VM's hosting
//! mechanism could observe is reported to an attached [`Profiler`]:
//!
//! * [`Profiler::on_tick`] — timer interrupts (with the current stack, so
//!   PC-samplers can record the top frame);
//! * [`Profiler::on_entry`] — method entries (prologue yieldpoints /
//!   method-entry checks), carrying the dynamic [`CallEdge`] and a
//!   walkable [`StackSlice`];
//! * [`Profiler::on_exit`] — method exits (epilogue yieldpoints; delivered
//!   only by the [`VmFlavor::Jikes`] hosting flavor);
//! * [`Profiler::on_backedge`] — loop backedges (Jikes flavor only).
//!
//! Profilers account for their own *simulated* overhead; the VM's base
//! cycle count is profiler-independent. That separation is what lets the
//! experiment harness attach dozens of sampler configurations to a single
//! deterministic run.
//!
//! [`CallEdge`]: cbs_dcg::CallEdge
//!
//! ## Example
//!
//! ```
//! use cbs_bytecode::ProgramBuilder;
//! use cbs_vm::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let cls = b.add_class("Main", 0);
//! let main = b.function("main", cls, 0, 0, |c| {
//!     c.const_(21).const_(2).mul().ret();
//! })?;
//! b.set_entry(main);
//! let program = b.build()?;
//!
//! let report = Vm::new(&program, VmConfig::default()).run_unprofiled()?;
//! assert_eq!(report.return_values[0], cbs_vm::Value::Int(42));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod cost;
mod error;
mod events;
mod frame;
mod interp;
pub mod metrics;
mod report;
mod value;

pub use config::{VmConfig, VmFlavor};
pub use cost::CostModel;
pub use error::VmError;
pub use events::{CallEvent, FrameInfo, NullProfiler, Profiler, StackSlice, ThreadId, ROOT_SITE};
pub use frame::Frame;
pub use interp::Vm;
pub use metrics::VmMetrics;
pub use report::ExecReport;
pub use value::{Heap, ObjRef, Value};
