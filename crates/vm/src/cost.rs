//! The simulated cycle cost model.
//!
//! Every bytecode instruction charges a fixed number of cycles to the
//! virtual clock. The constants model the *relative* costs a JIT-compiled
//! JVM would see (a virtual dispatch costs more than an add; an I/O
//! operation costs orders of magnitude more), scaled to a deliberately slow
//! virtual CPU so whole benchmarks interpret in tractable wall time.
//!
//! The profiling-action costs at the bottom are the quantities §4 of the
//! paper reasons about: they determine the overhead columns of Tables 2
//! and 3 exactly.

use cbs_bytecode::Op;

/// Per-instruction and per-profiling-action cycle costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Plain stack/ALU operation.
    pub simple: u64,
    /// Field access (`getfield`/`putfield`).
    pub field: u64,
    /// Object allocation.
    pub alloc: u64,
    /// Direct call: argument transfer + frame push.
    pub call: u64,
    /// Additional cost of a virtual dispatch over a direct call.
    pub virtual_dispatch: u64,
    /// Method return: frame pop + result transfer.
    pub ret: u64,
    /// Taken or not-taken branch.
    pub branch: u64,
    /// Class-test guard emitted by the inliner.
    pub guard: u64,
    /// Cycles per unit of `Io(cost)`.
    pub io_unit: u64,

    /// Explicit method-entry flag check (load/compare/branch), charged by
    /// profilers that cannot overload an existing VM check (§4
    /// "Implementation Options": three extra instructions).
    pub entry_check: u64,
    /// Countdown decrement + test while a sampling window is open.
    pub countdown: u64,
    /// Fixed cost of one call-stack sample (walk + repository update).
    pub stack_walk_base: u64,
    /// Additional per-frame cost of a deep stack walk.
    pub stack_walk_frame: u64,
    /// Servicing a timer interrupt (flag setting, scheduler entry).
    pub timer_service: u64,
    /// Taking (entering the runtime from) a yieldpoint.
    pub yieldpoint_taken: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            simple: 1,
            field: 3,
            alloc: 20,
            call: 10,
            virtual_dispatch: 8,
            ret: 5,
            branch: 1,
            guard: 2,
            io_unit: 100,
            entry_check: 3,
            countdown: 4,
            stack_walk_base: 400,
            stack_walk_frame: 30,
            timer_service: 200,
            yieldpoint_taken: 40,
        }
    }
}

impl CostModel {
    /// Cycles charged for executing `op` (excluding any callee cycles).
    pub fn op_cost(&self, op: &Op) -> u64 {
        match op {
            Op::Const(_)
            | Op::Load(_)
            | Op::Store(_)
            | Op::Dup
            | Op::Pop
            | Op::Swap
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Neg
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::CmpEq
            | Op::CmpLt
            | Op::CmpGt
            | Op::Nop => self.simple,
            // Division is genuinely slower on real hardware.
            Op::Div | Op::Rem => self.simple * 4,
            Op::Jump(_) | Op::JumpIfZero(_) | Op::JumpIfNonZero(_) => self.branch,
            Op::GetField(_) | Op::PutField(_) => self.field,
            Op::New(_) => self.alloc,
            Op::Call { .. } => self.call,
            Op::CallVirtual { .. } => self.call + self.virtual_dispatch,
            Op::Return => self.ret,
            Op::GuardClass { .. } => self.guard,
            Op::Io(units) => self.io_unit * u64::from(*units),
        }
    }

    /// Cost of one call-stack sample that walks `frames` frames.
    pub fn sample_cost(&self, frames: usize) -> u64 {
        self.stack_walk_base + self.stack_walk_frame * frames as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId, VirtualSlot};

    #[test]
    fn relative_costs_are_sensible() {
        let c = CostModel::default();
        assert!(c.op_cost(&Op::Add) < c.op_cost(&Op::GetField(0)));
        assert!(c.op_cost(&Op::GetField(0)) < c.op_cost(&Op::New(cbs_bytecode::ClassId::new(0))));
        let direct = c.op_cost(&Op::Call {
            site: CallSiteId::new(0),
            target: MethodId::new(0),
        });
        let virt = c.op_cost(&Op::CallVirtual {
            site: CallSiteId::new(0),
            slot: VirtualSlot::new(0),
            arity: 1,
        });
        assert!(virt > direct, "virtual dispatch must cost more");
        assert!(c.op_cost(&Op::Div) > c.op_cost(&Op::Mul));
    }

    #[test]
    fn io_scales_with_units() {
        let c = CostModel::default();
        assert_eq!(c.op_cost(&Op::Io(10)), 10 * c.io_unit);
        assert_eq!(c.op_cost(&Op::Io(0)), 0);
    }

    #[test]
    fn sample_cost_scales_with_depth() {
        let c = CostModel::default();
        assert_eq!(c.sample_cost(0), c.stack_walk_base);
        assert_eq!(
            c.sample_cost(10),
            c.stack_walk_base + 10 * c.stack_walk_frame
        );
    }

    #[test]
    fn guard_is_cheaper_than_dispatch() {
        // The whole point of guarded inlining: a class test must be cheaper
        // than the virtual dispatch it replaces.
        let c = CostModel::default();
        assert!(c.guard < c.virtual_dispatch);
    }
}
