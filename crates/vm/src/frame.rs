//! Call frames.

use crate::value::Value;
use cbs_bytecode::{CallSiteId, MethodId};

/// One activation record: locals, operand stack, and the bookkeeping a
/// stack walker needs.
#[derive(Debug, Clone)]
pub struct Frame {
    method: MethodId,
    pc: u32,
    locals: Vec<Value>,
    stack: Vec<Value>,
    /// The call site through which this frame called into the next inner
    /// frame (set while a call is in flight; cleared on return). This is
    /// what lets a stack walk attribute each frame pair to a call site.
    pending_site: Option<CallSiteId>,
}

impl Frame {
    /// Creates a frame for `method` with `num_locals` zeroed local slots.
    pub fn new(method: MethodId, num_locals: u16) -> Self {
        Self {
            method,
            pc: 0,
            locals: vec![Value::default(); usize::from(num_locals)],
            stack: Vec::new(),
            pending_site: None,
        }
    }

    /// Reinitializes a recycled frame as if freshly built by
    /// [`Frame::new`], reusing its allocations. Used by the interpreter's
    /// per-thread frame pool so a call does not heap-allocate.
    pub(crate) fn reset(&mut self, method: MethodId, num_locals: u16) {
        self.method = method;
        self.pc = 0;
        self.locals.clear();
        self.locals
            .resize(usize::from(num_locals), Value::default());
        self.stack.clear();
        self.pending_site = None;
    }

    /// The executing method.
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// Current instruction index.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the instruction index.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// The in-flight call site, if this frame has called inward.
    pub fn pending_site(&self) -> Option<CallSiteId> {
        self.pending_site
    }

    /// Records or clears the in-flight call site.
    pub fn set_pending_site(&mut self, site: Option<CallSiteId>) {
        self.pending_site = site;
    }

    /// Local slots (read).
    pub fn locals(&self) -> &[Value] {
        &self.locals
    }

    /// Local slots (write).
    pub fn locals_mut(&mut self) -> &mut [Value] {
        &mut self.locals
    }

    /// Operand stack (read).
    pub fn stack(&self) -> &[Value] {
        &self.stack
    }

    /// Pushes onto the operand stack.
    pub fn push(&mut self, v: Value) {
        self.stack.push(v);
    }

    /// Pops from the operand stack.
    pub fn pop(&mut self) -> Option<Value> {
        self.stack.pop()
    }

    /// Peeks `depth` values below the top (0 = top). `None` if too
    /// shallow.
    pub fn peek(&self, depth: usize) -> Option<Value> {
        let len = self.stack.len();
        len.checked_sub(depth + 1).map(|i| self.stack[i])
    }

    /// Current operand stack depth.
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_zeroes_locals() {
        let f = Frame::new(MethodId::new(1), 3);
        assert_eq!(f.locals(), &[Value::Int(0); 3]);
        assert_eq!(f.pc(), 0);
        assert_eq!(f.stack_depth(), 0);
        assert_eq!(f.pending_site(), None);
    }

    #[test]
    fn push_pop_peek() {
        let mut f = Frame::new(MethodId::new(0), 0);
        f.push(Value::Int(1));
        f.push(Value::Int(2));
        assert_eq!(f.peek(0), Some(Value::Int(2)));
        assert_eq!(f.peek(1), Some(Value::Int(1)));
        assert_eq!(f.peek(2), None);
        assert_eq!(f.pop(), Some(Value::Int(2)));
        assert_eq!(f.pop(), Some(Value::Int(1)));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn pending_site_round_trip() {
        let mut f = Frame::new(MethodId::new(0), 0);
        f.set_pending_site(Some(CallSiteId::new(4)));
        assert_eq!(f.pending_site(), Some(CallSiteId::new(4)));
        f.set_pending_site(None);
        assert_eq!(f.pending_site(), None);
    }
}
