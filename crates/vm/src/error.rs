//! Runtime traps.

use cbs_bytecode::MethodId;
use std::error::Error;
use std::fmt;

/// A runtime trap terminating execution.
///
/// The bytecode verifier excludes structural faults (bad jumps, stack
/// underflow on verified code), so these are genuine dynamic conditions —
/// plus defensive variants the interpreter reports instead of panicking if
/// it is ever handed unverified code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Trapping method.
        method: MethodId,
        /// Trapping instruction index.
        pc: u32,
    },
    /// An operation received a value of the wrong kind (e.g. arithmetic on
    /// an object reference).
    TypeMismatch {
        /// Trapping method.
        method: MethodId,
        /// Trapping instruction index.
        pc: u32,
        /// What the instruction required.
        expected: &'static str,
    },
    /// Field index outside the receiver's field count.
    FieldOutOfRange {
        /// Trapping method.
        method: MethodId,
        /// Trapping instruction index.
        pc: u32,
    },
    /// A virtual dispatch found no implementation in the receiver's
    /// vtable.
    BadVirtualDispatch {
        /// Trapping method.
        method: MethodId,
        /// Trapping instruction index.
        pc: u32,
    },
    /// Call-stack depth exceeded the configured limit.
    StackOverflow {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// Operand-stack underflow (only possible on unverified code).
    OperandUnderflow {
        /// Trapping method.
        method: MethodId,
        /// Trapping instruction index.
        pc: u32,
    },
    /// The configured cycle budget was exhausted.
    OutOfFuel {
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivisionByZero { method, pc } => {
                write!(f, "{method}@{pc}: division by zero")
            }
            VmError::TypeMismatch {
                method,
                pc,
                expected,
            } => write!(f, "{method}@{pc}: expected {expected}"),
            VmError::FieldOutOfRange { method, pc } => {
                write!(f, "{method}@{pc}: field index out of range")
            }
            VmError::BadVirtualDispatch { method, pc } => {
                write!(f, "{method}@{pc}: unresolvable virtual dispatch")
            }
            VmError::StackOverflow { limit } => {
                write!(f, "call-stack depth exceeded limit of {limit}")
            }
            VmError::OperandUnderflow { method, pc } => {
                write!(f, "{method}@{pc}: operand stack underflow")
            }
            VmError::OutOfFuel { budget } => {
                write!(f, "cycle budget of {budget} exhausted")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VmError::DivisionByZero {
            method: MethodId::new(3),
            pc: 7,
        };
        assert_eq!(e.to_string(), "m3@7: division by zero");
        assert!(VmError::StackOverflow { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(VmError::OutOfFuel { budget: 5 }.to_string().contains("5"));
    }
}
