//! VM configuration: hosting flavor, clock rate, timer frequency.

use crate::cost::CostModel;

/// Which VM hosting mechanism delivers profiling events (paper §5).
///
/// The two production implementations differ in *where* the sampling check
/// lives, which determines which dynamic events a profiler can observe:
///
/// * **Jikes RVM** overloads the yieldpoint control word; prologue *and*
///   epilogue yieldpoints are taken while sampling is enabled, so both
///   method entries and method exits are sampleable events.
/// * **J9** overloads the method-entry runtime check; only entries are
///   sampleable.
///
/// In both cases the check is overloaded onto a test the VM performs
/// anyway, so an idle profiler adds zero cycles. A VM without any such
/// check would pay three instructions per entry; profilers model that case
/// with an explicit-check option (see
/// `cbs-profiler`'s `CbsConfig::explicit_entry_check`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VmFlavor {
    /// Yieldpoint-based hosting: entry, exit and backedge events.
    #[default]
    Jikes,
    /// Method-entry-check hosting: entry events only.
    J9,
}

impl VmFlavor {
    /// Whether this flavor delivers method-exit (epilogue) events.
    pub fn samples_exits(self) -> bool {
        matches!(self, VmFlavor::Jikes)
    }

    /// Whether this flavor delivers loop-backedge events.
    pub fn has_backedge_yieldpoints(self) -> bool {
        matches!(self, VmFlavor::Jikes)
    }
}

/// Complete VM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// Hosting mechanism.
    pub flavor: VmFlavor,
    /// Instruction cost model.
    pub cost: CostModel,
    /// Virtual clock rate. The default models a deliberately slow machine
    /// (10 MHz) so that benchmarks with realistic *relative* running times
    /// interpret quickly.
    pub cycles_per_second: u64,
    /// Timer-interrupt frequency. 100 Hz models the stock-Linux 10 ms
    /// granularity the paper cites as the finest available to user code.
    pub timer_hz: u64,
    /// Number of green threads, each running the entry method once.
    pub num_threads: u32,
    /// Call-stack depth limit (exceeding it is a [`VmError::StackOverflow`]
    /// trap).
    ///
    /// [`VmError::StackOverflow`]: crate::VmError::StackOverflow
    pub max_stack_depth: usize,
    /// Optional cycle budget; execution traps with
    /// [`VmError::OutOfFuel`](crate::VmError::OutOfFuel) when exceeded.
    pub max_cycles: Option<u64>,
    /// Maximum deterministic jitter applied to each timer period, in
    /// cycles.
    ///
    /// Real timer interrupts drift relative to the instruction stream; a
    /// perfectly periodic virtual timer can alias with a loop whose
    /// iteration cost divides the period, pinning every sample to one
    /// instruction. Each period is drawn from
    /// `[timer_period - jitter, timer_period + jitter]` by a seeded
    /// xorshift generator, so runs remain bit-reproducible.
    pub timer_jitter: u64,
    /// Seed for the timer-jitter generator.
    pub timer_seed: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self {
            flavor: VmFlavor::Jikes,
            cost: CostModel::default(),
            cycles_per_second: 10_000_000,
            timer_hz: 100,
            num_threads: 1,
            max_stack_depth: 2048,
            max_cycles: None,
            timer_jitter: 100_000 / 8,
            timer_seed: 0x7134_A5A5,
        }
    }
}

impl VmConfig {
    /// Creates the default configuration for a flavor.
    pub fn with_flavor(flavor: VmFlavor) -> Self {
        Self {
            flavor,
            ..Self::default()
        }
    }

    /// Cycles between timer interrupts.
    ///
    /// # Panics
    ///
    /// Panics if `timer_hz` is zero.
    pub fn timer_period(&self) -> u64 {
        assert!(self.timer_hz > 0, "timer_hz must be positive");
        (self.cycles_per_second / self.timer_hz).max(1)
    }

    /// Converts a cycle count to simulated seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cycles_per_second as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_period_is_10ms() {
        let c = VmConfig::default();
        assert_eq!(c.timer_period(), 100_000);
        assert!((c.cycles_to_seconds(c.timer_period()) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn flavor_event_capabilities() {
        assert!(VmFlavor::Jikes.samples_exits());
        assert!(VmFlavor::Jikes.has_backedge_yieldpoints());
        assert!(!VmFlavor::J9.samples_exits());
        assert!(!VmFlavor::J9.has_backedge_yieldpoints());
    }

    #[test]
    #[should_panic(expected = "timer_hz must be positive")]
    fn zero_hz_panics() {
        let c = VmConfig {
            timer_hz: 0,
            ..VmConfig::default()
        };
        let _ = c.timer_period();
    }

    #[test]
    fn with_flavor_sets_flavor_only() {
        let c = VmConfig::with_flavor(VmFlavor::J9);
        assert_eq!(c.flavor, VmFlavor::J9);
        assert_eq!(c.cycles_per_second, VmConfig::default().cycles_per_second);
    }
}
