//! Runtime values and the simulated heap.

use cbs_bytecode::ClassId;
use std::fmt;

/// Reference to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjRef(u32);

impl ObjRef {
    /// Raw heap index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A runtime value: a 64-bit integer or an object reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Reference to a heap object.
    Ref(ObjRef),
}

impl Value {
    /// Extracts the integer, if this is an [`Value::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Ref(_) => None,
        }
    }

    /// Extracts the reference, if this is a [`Value::Ref`].
    pub fn as_ref(self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(r),
            Value::Int(_) => None,
        }
    }

    /// Truthiness used by conditional jumps: `Int(0)` is false, everything
    /// else (including references) is true.
    pub fn is_truthy(self) -> bool {
        !matches!(self, Value::Int(0))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

#[derive(Debug, Clone)]
struct Object {
    class: ClassId,
    fields: Vec<Value>,
}

/// The simulated heap: a bump-allocated arena of objects.
///
/// There is no garbage collector; benchmark programs are sized so their
/// allocation volume fits comfortably in memory, and the study's profiling
/// questions are orthogonal to collection.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Object>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an object of `class` with `num_fields` zeroed fields.
    pub fn alloc(&mut self, class: ClassId, num_fields: u16) -> ObjRef {
        let r = ObjRef(self.objects.len() as u32);
        self.objects.push(Object {
            class,
            fields: vec![Value::default(); usize::from(num_fields)],
        });
        r
    }

    /// The exact class of the referenced object.
    ///
    /// # Panics
    ///
    /// Panics if `r` was not allocated from this heap.
    pub fn class_of(&self, r: ObjRef) -> ClassId {
        self.objects[r.index()].class
    }

    /// Reads a field. Returns `None` when the field index is out of range.
    pub fn get_field(&self, r: ObjRef, field: u16) -> Option<Value> {
        self.objects[r.index()]
            .fields
            .get(usize::from(field))
            .copied()
    }

    /// Writes a field. Returns `false` when the field index is out of
    /// range.
    pub fn put_field(&mut self, r: ObjRef, field: u16, value: Value) -> bool {
        match self.objects[r.index()].fields.get_mut(usize::from(field)) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Number of live (ever-allocated) objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_ref(), None);
        let mut h = Heap::new();
        let r = h.alloc(ClassId::new(0), 1);
        assert_eq!(Value::Ref(r).as_ref(), Some(r));
        assert_eq!(Value::Ref(r).as_int(), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        let mut h = Heap::new();
        let r = h.alloc(ClassId::new(0), 0);
        assert!(Value::Ref(r).is_truthy());
    }

    #[test]
    fn heap_alloc_and_fields() {
        let mut h = Heap::new();
        let r = h.alloc(ClassId::new(2), 2);
        assert_eq!(h.class_of(r), ClassId::new(2));
        assert_eq!(h.get_field(r, 0), Some(Value::Int(0)));
        assert!(h.put_field(r, 1, Value::Int(42)));
        assert_eq!(h.get_field(r, 1), Some(Value::Int(42)));
        assert_eq!(h.get_field(r, 2), None);
        assert!(!h.put_field(r, 9, Value::Int(1)));
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn distinct_allocations_distinct_refs() {
        let mut h = Heap::new();
        let a = h.alloc(ClassId::new(0), 0);
        let b = h.alloc(ClassId::new(0), 0);
        assert_ne!(a, b);
    }
}
