//! Static telemetry handles for the VM (`vm.*` metrics).
//!
//! Counters are process-global and deterministic: fused-run dispatch
//! depends only on the program, the cost model, and the timer schedule,
//! so the same workload produces the same counts for any thread
//! interleaving. The interpreter accumulates into plain locals on the
//! hot path and flushes once per `run_with` exit (see
//! `interp::FusedTally`), so per-op dispatch never touches an atomic.

use cbs_telemetry::{global, Counter};
use std::sync::OnceLock;

/// The VM metric handles. Obtain via [`VmMetrics::get`].
#[derive(Debug)]
pub struct VmMetrics {
    /// Fused superinstruction runs executed in one dispatch.
    pub fused_runs: Counter,
    /// Fused entries that fell back to per-op interpretation — a tick
    /// or fuel boundary inside the run, or a non-`Int` operand.
    pub fused_bails: Counter,
}

impl VmMetrics {
    /// The process-wide handles, registered on first call.
    pub fn get() -> &'static VmMetrics {
        static HANDLES: OnceLock<VmMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let r = global();
            VmMetrics {
                fused_runs: r.counter(
                    "vm.fused_runs",
                    "fused superinstruction runs executed in one dispatch",
                ),
                fused_bails: r.counter(
                    "vm.fused_bails",
                    "fused entries that fell back to per-op interpretation",
                ),
            }
        })
    }
}
