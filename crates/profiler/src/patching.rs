//! Code-patching burst profiling — the Suganuma et al. baseline (§3.2).
//!
//! A method is not profiled during its early executions (skipping
//! initialization behavior, as their system skips methods below the first
//! optimization level). Once a method's invocation count crosses the
//! warmup threshold, a listener is installed in its prologue by code
//! patching; the listener records the caller–callee edge on every
//! invocation until a fixed number of samples have been collected, then
//! uninstalls itself by patching the prologue back.
//!
//! The paper's two criticisms are directly observable here: profiling is
//! delayed (short-running programs exit before methods warm up), and the
//! whole sample budget is collected in one rapid burst (a non-representative
//! phase can dominate the profile).

use crate::costs::{OverheadMeter, ProfilingCosts};
use crate::traits::CallGraphProfiler;
use cbs_bytecode::MethodId;
use cbs_dcg::DynamicCallGraph;
use cbs_vm::{CallEvent, Profiler};
use std::collections::HashMap;

/// Configuration of a [`CodePatchingProfiler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchingConfig {
    /// Invocations of a method before its listener is installed (models
    /// "reached a certain level of optimization").
    pub warmup_invocations: u64,
    /// Samples the listener collects before uninstalling itself.
    pub burst_samples: u32,
    /// Cost model.
    pub costs: ProfilingCosts,
}

impl Default for PatchingConfig {
    fn default() -> Self {
        Self {
            warmup_invocations: 500,
            burst_samples: 100,
            costs: ProfilingCosts::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum MethodState {
    /// Still warming up: invocation count so far.
    Cold(u64),
    /// Listener installed: samples remaining.
    Listening(u32),
    /// Listener uninstalled; never re-installed.
    Done,
}

/// The burst listener profiler.
#[derive(Debug, Default)]
pub struct CodePatchingProfiler {
    config: PatchingConfig,
    states: HashMap<MethodId, MethodState>,
    dcg: DynamicCallGraph,
    meter: OverheadMeter,
    samples: u64,
}

impl CodePatchingProfiler {
    /// Creates a profiler with the default warmup/burst parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a profiler with an explicit configuration.
    pub fn with_config(config: PatchingConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PatchingConfig {
        &self.config
    }

    /// Number of methods whose burst completed.
    pub fn methods_completed(&self) -> usize {
        self.states
            .values()
            .filter(|s| matches!(s, MethodState::Done))
            .count()
    }
}

impl Profiler for CodePatchingProfiler {
    fn on_entry(&mut self, event: &CallEvent<'_>) {
        let callee = event.edge.callee;
        let state = self.states.entry(callee).or_insert(MethodState::Cold(0));
        match *state {
            MethodState::Cold(n) => {
                let n = n + 1;
                if n >= self.config.warmup_invocations {
                    // Install the listener by patching the prologue.
                    self.meter.charge(self.config.costs.patch_millicycles);
                    *state = MethodState::Listening(self.config.burst_samples);
                } else {
                    *state = MethodState::Cold(n);
                }
            }
            MethodState::Listening(left) => {
                // The listener runs on every invocation while installed.
                self.meter.charge(self.config.costs.instrument_millicycles);
                self.dcg.record_sample(event.edge);
                self.samples += 1;
                if left <= 1 {
                    // Uninstall by patching the prologue back.
                    self.meter.charge(self.config.costs.patch_millicycles);
                    *state = MethodState::Done;
                } else {
                    *state = MethodState::Listening(left - 1);
                }
            }
            MethodState::Done => {}
        }
    }
}

impl CallGraphProfiler for CodePatchingProfiler {
    fn name(&self) -> String {
        format!(
            "patching(warmup={},burst={})",
            self.config.warmup_invocations, self.config.burst_samples
        )
    }

    fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    fn take_dcg(&mut self) -> DynamicCallGraph {
        std::mem::take(&mut self.dcg)
    }

    fn overhead_cycles(&self) -> u64 {
        self.meter.cycles()
    }

    fn samples_taken(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::CallSiteId;
    use cbs_dcg::CallEdge;
    use cbs_vm::{Frame, StackSlice, ThreadId};

    fn ev<'a>(frames: &'a [Frame], caller: u32, callee: u32) -> CallEvent<'a> {
        CallEvent {
            edge: CallEdge::new(
                MethodId::new(caller),
                CallSiteId::new(caller),
                MethodId::new(callee),
            ),
            clock: 0,
            thread: ThreadId(0),
            stack: StackSlice::for_testing(frames),
        }
    }

    fn profiler(warmup: u64, burst: u32) -> CodePatchingProfiler {
        CodePatchingProfiler::with_config(PatchingConfig {
            warmup_invocations: warmup,
            burst_samples: burst,
            costs: ProfilingCosts::default(),
        })
    }

    #[test]
    fn cold_methods_not_profiled() {
        let mut p = profiler(10, 5);
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        for _ in 0..9 {
            p.on_entry(&ev(&frames, 0, 1));
        }
        assert!(p.dcg().is_empty(), "still warming up");
        assert_eq!(p.samples_taken(), 0);
    }

    #[test]
    fn burst_collects_then_uninstalls() {
        let mut p = profiler(10, 5);
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        for _ in 0..50 {
            p.on_entry(&ev(&frames, 0, 1));
        }
        assert_eq!(p.samples_taken(), 5, "exactly the burst budget");
        assert_eq!(p.methods_completed(), 1);
        // Further invocations after uninstall are free and unrecorded.
        let before = p.overhead_cycles();
        for _ in 0..100 {
            p.on_entry(&ev(&frames, 0, 1));
        }
        assert_eq!(p.overhead_cycles(), before);
        assert_eq!(p.samples_taken(), 5);
    }

    #[test]
    fn burst_captures_phase_bias() {
        // During the burst, only caller m2 is active; afterwards m3 calls
        // the method a thousand times. The burst profile misattributes
        // everything to m2 — the paper's "short profiling window" hazard.
        let mut p = profiler(5, 10);
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        for _ in 0..15 {
            p.on_entry(&ev(&frames, 2, 1));
        }
        for _ in 0..1000 {
            p.on_entry(&ev(&frames, 3, 1));
        }
        let edges = p.dcg().edges_by_weight();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].0.caller, MethodId::new(2));
    }

    #[test]
    fn per_method_states_are_independent() {
        let mut p = profiler(3, 2);
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        for _ in 0..10 {
            p.on_entry(&ev(&frames, 0, 1));
        }
        for _ in 0..2 {
            p.on_entry(&ev(&frames, 0, 2));
        }
        // m1 finished its burst; m2 is still cold.
        assert_eq!(p.methods_completed(), 1);
        assert_eq!(p.dcg().incoming_weight(MethodId::new(2)), 0.0);
    }
}
