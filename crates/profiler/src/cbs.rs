//! Counter-based sampling — the paper's contribution (§4).
//!
//! Sampling is triggered by the timer, but instead of one sample per
//! interrupt, a *window* opens in which every `stride`-th
//! invocation event is sampled until `samples_per_tick` samples have been
//! taken; then the mechanism disarms until the next tick. The logic below
//! is the pseudocode of the paper's Figure 3, with the initial skip count
//! optionally randomized or rotated (round-robin) over `[1..=stride]` so
//! every call in the window has an equal chance of being profiled.

use crate::costs::{OverheadMeter, ProfilingCosts};
use crate::traits::CallGraphProfiler;
use cbs_dcg::{CallEdge, CallingContextTree, DynamicCallGraph};
use cbs_prng::SmallRng;
use cbs_vm::{CallEvent, Profiler, StackSlice, ThreadId};

/// How the initial `skipped_invocations` counter of each window is chosen
/// (paper §4: "via either a pseudo-random number generator or a
/// round-robin approach").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipPolicy {
    /// Always start at `stride` (the plain Figure 3 pseudocode).
    Fixed,
    /// Uniformly random in `[1..=stride]`, seeded for reproducibility.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Rotates through `1, 2, …, stride, 1, …` across windows.
    RoundRobin,
}

/// Configuration of a [`CounterBasedSampler`].
#[derive(Debug, Clone, PartialEq)]
pub struct CbsConfig {
    /// Sample every `stride`-th invocation event within a window (`i` in
    /// the paper). Must be ≥ 1.
    pub stride: u32,
    /// Samples taken per timer interrupt (`N` in the paper). Must be ≥ 1.
    pub samples_per_tick: u32,
    /// Initial-skip selection policy.
    pub skip_policy: SkipPolicy,
    /// Model a VM that cannot overload an existing method-entry check and
    /// must pay three instructions on every entry (§4 "Implementation
    /// Options"). When `false` (the default, matching Jikes RVM and J9),
    /// an idle sampler costs nothing.
    pub explicit_entry_check: bool,
    /// Additionally record full stack walks into a
    /// [`CallingContextTree`] (the context-sensitive extension).
    pub context_sensitive: bool,
    /// Cost model for overhead accounting.
    pub costs: ProfilingCosts,
}

impl Default for CbsConfig {
    fn default() -> Self {
        Self {
            stride: 3,
            samples_per_tick: 16,
            skip_policy: SkipPolicy::RoundRobin,
            explicit_entry_check: false,
            context_sensitive: false,
            costs: ProfilingCosts::default(),
        }
    }
}

impl CbsConfig {
    /// Convenience constructor for the two headline parameters.
    pub fn new(stride: u32, samples_per_tick: u32) -> Self {
        Self {
            stride,
            samples_per_tick,
            ..Self::default()
        }
    }
}

/// Per-thread sampling state.
///
/// The paper keeps *all* CBS counters in thread-local variables ("to
/// avoid potential scalability issues or race conditions"), so the
/// round-robin cursor and the randomized-skip RNG live here too: each
/// thread walks its own deterministic skip sequence regardless of how
/// thread events interleave.
#[derive(Debug, Clone)]
struct WindowState {
    enabled: bool,
    skipped: u32,
    samples_left: u32,
    /// Next round-robin initial skip (1..=stride), per thread.
    round_robin_next: u32,
    /// Per-thread RNG for [`SkipPolicy::Random`], seeded from the policy
    /// seed and the thread index.
    rng: SmallRng,
}

impl WindowState {
    fn new(seed: u64, thread_index: usize) -> Self {
        Self {
            enabled: false,
            skipped: 0,
            samples_left: 0,
            round_robin_next: 1,
            rng: SmallRng::seed_for_stream(seed, thread_index as u64),
        }
    }

    /// Draws the initial skip count for a new window (paper §4: "via
    /// either a pseudo-random number generator or a round-robin
    /// approach").
    fn initial_skip(&mut self, policy: &SkipPolicy, stride: u32) -> u32 {
        match policy {
            SkipPolicy::Fixed => stride,
            SkipPolicy::Random { .. } => self.rng.gen_range(1..=stride),
            SkipPolicy::RoundRobin => {
                let v = self.round_robin_next;
                self.round_robin_next = if v >= stride { 1 } else { v + 1 };
                v
            }
        }
    }
}

/// The counter-based sampler (CBS).
///
/// Implements [`cbs_vm::Profiler`]; attach it to a [`Vm`](cbs_vm::Vm) run
/// and read the resulting [`DynamicCallGraph`] afterwards.
///
/// Counters are kept per thread, as in the J9 implementation ("thread-local
/// variables are used for the counters to avoid potential scalability
/// issues or race conditions").
#[derive(Debug)]
pub struct CounterBasedSampler {
    config: CbsConfig,
    threads: Vec<WindowState>,
    dcg: DynamicCallGraph,
    /// Sampled edges not yet flushed into `dcg`. Samples are buffered
    /// while windows are open and flushed in batches
    /// ([`DynamicCallGraph::record_batch`]) when a window closes, when
    /// the run finishes, and on [`CallGraphProfiler::take_dcg`] — so the
    /// per-sample cost inside a window is one `Vec` push. Unit sample
    /// weights sum exactly, so the resulting graph is identical to
    /// per-sample recording no matter how the batches split.
    pending: Vec<CallEdge>,
    cct: Option<CallingContextTree>,
    meter: OverheadMeter,
    samples: u64,
    /// Seed for per-thread RNG streams (from [`SkipPolicy::Random`]).
    seed: u64,
}

impl CounterBasedSampler {
    /// Creates a sampler with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `samples_per_tick` is zero.
    pub fn new(config: CbsConfig) -> Self {
        assert!(config.stride >= 1, "stride must be >= 1");
        assert!(
            config.samples_per_tick >= 1,
            "samples_per_tick must be >= 1"
        );
        let seed = match config.skip_policy {
            SkipPolicy::Random { seed } => seed,
            _ => 0,
        };
        let cct = config.context_sensitive.then(CallingContextTree::new);
        Self {
            config,
            threads: Vec::new(),
            dcg: DynamicCallGraph::new(),
            pending: Vec::new(),
            cct,
            meter: OverheadMeter::new(),
            samples: 0,
            seed,
        }
    }

    /// Flushes buffered window samples into the graph.
    fn flush_pending(&mut self) {
        if !self.pending.is_empty() {
            self.dcg.record_batch(&self.pending);
            self.pending.clear();
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CbsConfig {
        &self.config
    }

    /// The calling context tree, when `context_sensitive` was enabled.
    pub fn cct(&self) -> Option<&CallingContextTree> {
        self.cct.as_ref()
    }

    fn state(&mut self, thread: ThreadId) -> &mut WindowState {
        let idx = thread.index();
        while idx >= self.threads.len() {
            let t = self.threads.len();
            self.threads.push(WindowState::new(self.seed, t));
        }
        &mut self.threads[idx]
    }

    /// Shared handling of entry and exit invocation events: the Figure 3
    /// countdown.
    fn on_invocation_event(&mut self, event: &CallEvent<'_>) {
        let enabled = {
            let st = self.state(event.thread);
            st.enabled
        };
        if !enabled {
            return; // common case: the overloaded check falls through free
        }
        self.meter.charge(self.config.costs.countdown_millicycles);
        let take = {
            let st = self.state(event.thread);
            st.skipped = st.skipped.saturating_sub(1);
            st.skipped == 0
        };
        if !take {
            return;
        }
        // sampleCallStack(): walk the stack, update the repository —
        // deeper stacks cost more to walk.
        self.meter.charge(
            self.config
                .costs
                .sample_cost_millicycles(event.stack.depth()),
        );
        self.samples += 1;
        crate::metrics::CbsMetrics::get().samples.inc();
        self.pending.push(event.edge);
        if let Some(cct) = &mut self.cct {
            cct.add_sample_iter(event.stack.context_steps());
        }
        let policy = self.config.skip_policy.clone();
        let stride = self.config.stride;
        let st = self.state(event.thread);
        st.samples_left = st.samples_left.saturating_sub(1);
        if st.samples_left == 0 {
            st.enabled = false; // disable until next timer interrupt
            self.flush_pending();
        } else {
            // Figure 3 resets to STRIDE; randomized policies re-draw so
            // window positions stay unbiased. The draw comes from this
            // thread's own cursor/RNG, so per-thread skip sequences do
            // not depend on how threads interleave.
            st.skipped = st.initial_skip(&policy, stride);
        }
    }
}

impl Profiler for CounterBasedSampler {
    fn on_tick(&mut self, _clock: u64, thread: ThreadId, _stack: StackSlice<'_>) {
        self.meter
            .charge(self.config.costs.tick_service_millicycles);
        let policy = self.config.skip_policy.clone();
        let stride = self.config.stride;
        let samples = self.config.samples_per_tick;
        let st = self.state(thread);
        if !st.enabled {
            st.enabled = true;
            st.samples_left = samples;
            st.skipped = st.initial_skip(&policy, stride);
            crate::metrics::CbsMetrics::get().windows.inc();
        }
        // If a window is still open (it outlived the timer period), the
        // flag is already true and sampling simply continues — the
        // emergent "continuous sampling" regime of very large
        // stride × samples products.
    }

    fn on_entry(&mut self, event: &CallEvent<'_>) {
        if self.config.explicit_entry_check {
            self.meter.charge(self.config.costs.entry_check_millicycles);
        }
        self.on_invocation_event(event);
    }

    fn on_exit(&mut self, event: &CallEvent<'_>) {
        // Delivered only under the Jikes flavor, where epilogue
        // yieldpoints are taken during a window.
        self.on_invocation_event(event);
    }

    fn on_finish(&mut self, _clock: u64) {
        // A window that outlives the run would otherwise strand its
        // buffered samples.
        self.flush_pending();
    }
}

impl CallGraphProfiler for CounterBasedSampler {
    fn name(&self) -> String {
        format!(
            "cbs(stride={},samples={})",
            self.config.stride, self.config.samples_per_tick
        )
    }

    fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    fn take_dcg(&mut self) -> DynamicCallGraph {
        self.flush_pending();
        std::mem::take(&mut self.dcg)
    }

    fn overhead_cycles(&self) -> u64 {
        self.meter.cycles()
    }

    fn samples_taken(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId};
    use cbs_dcg::CallEdge;
    use cbs_vm::{Frame, ThreadId};

    fn event_frames() -> Vec<Frame> {
        let mut outer = Frame::new(MethodId::new(0), 0);
        outer.set_pending_site(Some(CallSiteId::new(0)));
        vec![outer, Frame::new(MethodId::new(1), 0)]
    }

    fn fire_entry(s: &mut CounterBasedSampler, frames: &[Frame], callee: u32) {
        let ev = CallEvent {
            edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(callee)),
            clock: 0,
            thread: ThreadId(0),
            stack: stack_slice(frames),
        };
        s.on_entry(&ev);
    }

    fn stack_slice(frames: &[Frame]) -> StackSlice<'_> {
        StackSlice::for_testing(frames)
    }

    #[test]
    #[should_panic(expected = "stride must be >= 1")]
    fn zero_stride_rejected() {
        let _ = CounterBasedSampler::new(CbsConfig::new(0, 1));
    }

    #[test]
    fn idle_sampler_is_free_and_empty() {
        let mut s = CounterBasedSampler::new(CbsConfig::new(3, 4));
        let frames = event_frames();
        for _ in 0..100 {
            fire_entry(&mut s, &frames, 1);
        }
        assert_eq!(s.overhead_cycles(), 0, "no window open: zero overhead");
        assert!(s.dcg().is_empty());
        assert_eq!(s.samples_taken(), 0);
    }

    #[test]
    fn window_takes_exactly_samples_per_tick() {
        let mut s = CounterBasedSampler::new(CbsConfig {
            stride: 3,
            samples_per_tick: 4,
            skip_policy: SkipPolicy::Fixed,
            ..CbsConfig::default()
        });
        let frames = event_frames();
        s.on_tick(0, ThreadId(0), stack_slice(&frames));
        for _ in 0..100 {
            fire_entry(&mut s, &frames, 1);
        }
        assert_eq!(s.samples_taken(), 4);
        assert_eq!(s.dcg().total_weight(), 4.0);
    }

    #[test]
    fn fixed_policy_samples_every_stride_th_event() {
        let mut s = CounterBasedSampler::new(CbsConfig {
            stride: 5,
            samples_per_tick: 2,
            skip_policy: SkipPolicy::Fixed,
            ..CbsConfig::default()
        });
        let frames = event_frames();
        s.on_tick(0, ThreadId(0), stack_slice(&frames));
        // Events 1..=4 skipped, 5th sampled, 6..9 skipped, 10th sampled.
        for i in 1..=10u32 {
            fire_entry(&mut s, &frames, i);
        }
        let callees: Vec<u32> = s.dcg().iter().map(|(e, _)| u32::from(e.callee)).collect();
        let mut sorted = callees.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![5, 10]);
    }

    #[test]
    fn explicit_entry_check_charges_every_entry() {
        let mut s = CounterBasedSampler::new(CbsConfig {
            explicit_entry_check: true,
            ..CbsConfig::new(3, 4)
        });
        let frames = event_frames();
        for _ in 0..1000 {
            fire_entry(&mut s, &frames, 1);
        }
        let expected = 1000 * s.config().costs.entry_check_millicycles / 1000;
        assert_eq!(s.overhead_cycles(), expected);
    }

    #[test]
    fn round_robin_rotates_initial_skip() {
        let mut s = CounterBasedSampler::new(CbsConfig {
            stride: 3,
            samples_per_tick: 1,
            skip_policy: SkipPolicy::RoundRobin,
            ..CbsConfig::default()
        });
        let frames = event_frames();
        // Window 1: initial skip 1 → first event sampled.
        s.on_tick(0, ThreadId(0), stack_slice(&frames));
        fire_entry(&mut s, &frames, 1);
        assert_eq!(s.samples_taken(), 1);
        // Window 2: initial skip 2 → second event sampled.
        s.on_tick(1, ThreadId(0), stack_slice(&frames));
        fire_entry(&mut s, &frames, 2);
        assert_eq!(s.samples_taken(), 1, "first event of window 2 skipped");
        fire_entry(&mut s, &frames, 3);
        assert_eq!(s.samples_taken(), 2);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = CounterBasedSampler::new(CbsConfig {
                stride: 7,
                samples_per_tick: 3,
                skip_policy: SkipPolicy::Random { seed },
                ..CbsConfig::default()
            });
            let frames = event_frames();
            s.on_tick(0, ThreadId(0), stack_slice(&frames));
            for i in 0..50 {
                fire_entry(&mut s, &frames, i);
            }
            s.dcg()
                .edges_by_weight()
                .iter()
                .map(|(e, _)| u32::from(e.callee))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn per_thread_windows_are_independent() {
        let mut s = CounterBasedSampler::new(CbsConfig {
            stride: 1,
            samples_per_tick: 1,
            skip_policy: SkipPolicy::Fixed,
            ..CbsConfig::default()
        });
        let frames = event_frames();
        s.on_tick(0, ThreadId(1), stack_slice(&frames));
        // Thread 0 has no window: its events must not be sampled.
        let ev0 = CallEvent {
            edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(9)),
            clock: 0,
            thread: ThreadId(0),
            stack: stack_slice(&frames),
        };
        s.on_entry(&ev0);
        assert_eq!(s.samples_taken(), 0);
        // Thread 1's window is armed.
        let ev1 = CallEvent {
            thread: ThreadId(1),
            ..ev0
        };
        s.on_entry(&ev1);
        assert_eq!(s.samples_taken(), 1);
    }

    /// Regression test: the round-robin cursor (and the Random-policy
    /// RNG) must be per-thread state, not sampler-global — otherwise the
    /// skip sequence each thread sees depends on how thread events
    /// happen to interleave.
    #[test]
    fn per_thread_skip_sequences_are_interleaving_independent() {
        let configs = [SkipPolicy::RoundRobin, SkipPolicy::Random { seed: 99 }];
        for policy in configs {
            let config = CbsConfig {
                stride: 3,
                samples_per_tick: 2,
                skip_policy: policy,
                ..CbsConfig::default()
            };
            let frames = event_frames();

            // Reference: thread 1 running alone, four windows. Record
            // which event positions get sampled (as callee ids).
            let solo = |thread: u32| {
                let mut s = CounterBasedSampler::new(config.clone());
                let mut sampled = Vec::new();
                for window in 0..4u32 {
                    s.on_tick(u64::from(window), ThreadId(thread), stack_slice(&frames));
                    for i in 0..12u32 {
                        let before = s.samples_taken();
                        let ev = CallEvent {
                            edge: CallEdge::new(
                                MethodId::new(0),
                                CallSiteId::new(0),
                                MethodId::new(window * 100 + i),
                            ),
                            clock: 0,
                            thread: ThreadId(thread),
                            stack: stack_slice(&frames),
                        };
                        s.on_entry(&ev);
                        if s.samples_taken() > before {
                            sampled.push(window * 100 + i);
                        }
                    }
                }
                sampled
            };

            // Interleaved: the same event streams for threads 0 and 1,
            // with thread 0's events injected between every thread-1
            // event (and vice versa).
            let interleaved = {
                let mut s = CounterBasedSampler::new(config.clone());
                let mut sampled = vec![Vec::new(), Vec::new()];
                for window in 0..4u32 {
                    for t in [0u32, 1] {
                        s.on_tick(u64::from(window), ThreadId(t), stack_slice(&frames));
                    }
                    for i in 0..12u32 {
                        for t in [0u32, 1] {
                            let before = s.samples_taken();
                            let ev = CallEvent {
                                edge: CallEdge::new(
                                    MethodId::new(0),
                                    CallSiteId::new(0),
                                    MethodId::new(window * 100 + i),
                                ),
                                clock: 0,
                                thread: ThreadId(t),
                                stack: stack_slice(&frames),
                            };
                            s.on_entry(&ev);
                            if s.samples_taken() > before {
                                sampled[t as usize].push(window * 100 + i);
                            }
                        }
                    }
                }
                sampled
            };

            assert_eq!(
                interleaved[0],
                solo(0),
                "{:?}: thread 0's sample positions changed under interleaving",
                config.skip_policy
            );
            assert_eq!(
                interleaved[1],
                solo(1),
                "{:?}: thread 1's sample positions changed under interleaving",
                config.skip_policy
            );
        }
    }

    #[test]
    fn random_policy_threads_use_distinct_streams() {
        // Two threads with the same seed must not mirror each other's
        // skip sequence (they get derived per-thread streams).
        let config = CbsConfig {
            stride: 7,
            samples_per_tick: 1,
            skip_policy: SkipPolicy::Random { seed: 5 },
            ..CbsConfig::default()
        };
        let frames = event_frames();
        let mut s = CounterBasedSampler::new(config);
        let mut first_sampled = [0u32; 2];
        for t in [0u32, 1] {
            for window in 0..8u32 {
                s.on_tick(u64::from(window), ThreadId(t), stack_slice(&frames));
                for i in 0..7u32 {
                    let before = s.samples_taken();
                    let ev = CallEvent {
                        edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(i)),
                        clock: 0,
                        thread: ThreadId(t),
                        stack: stack_slice(&frames),
                    };
                    s.on_entry(&ev);
                    if s.samples_taken() > before {
                        // Accumulate a fingerprint of sampled positions.
                        first_sampled[t as usize] = first_sampled[t as usize] * 7 + i + 1;
                    }
                }
            }
        }
        assert_ne!(
            first_sampled[0], first_sampled[1],
            "per-thread Random streams should differ"
        );
    }

    /// Window samples are buffered and batch-flushed; a window that is
    /// still open when the run ends must flush on `on_finish` (the VM
    /// delivers it once on successful completion), and `take_dcg` must
    /// also flush for profilers driven outside a VM run.
    #[test]
    fn open_window_samples_flush_on_finish_and_take() {
        use crate::traits::CallGraphProfiler as _;
        let mk = || {
            let mut s = CounterBasedSampler::new(CbsConfig {
                stride: 1,
                samples_per_tick: 100, // window stays open
                skip_policy: SkipPolicy::Fixed,
                ..CbsConfig::default()
            });
            let frames = event_frames();
            s.on_tick(0, ThreadId(0), stack_slice(&frames));
            for i in 0..5 {
                fire_entry(&mut s, &frames, i);
            }
            assert_eq!(s.samples_taken(), 5);
            s
        };

        let mut s = mk();
        assert!(s.dcg().is_empty(), "samples still buffered mid-window");
        s.on_finish(123);
        assert_eq!(s.dcg().total_weight(), 5.0);

        let mut s = mk();
        let dcg = s.take_dcg();
        assert_eq!(dcg.total_weight(), 5.0, "take_dcg flushes the buffer");
    }

    #[test]
    fn context_sensitive_mode_builds_cct() {
        let mut s = CounterBasedSampler::new(CbsConfig {
            stride: 1,
            samples_per_tick: 8,
            context_sensitive: true,
            skip_policy: SkipPolicy::Fixed,
            ..CbsConfig::default()
        });
        let frames = event_frames();
        s.on_tick(0, ThreadId(0), stack_slice(&frames));
        fire_entry(&mut s, &frames, 1);
        let cct = s.cct().expect("context tree enabled");
        assert!(cct.num_nodes() > 1);
        assert_eq!(cct.total_weight(), 1.0);
    }

    #[test]
    fn name_encodes_parameters() {
        let s = CounterBasedSampler::new(CbsConfig::new(7, 32));
        assert_eq!(s.name(), "cbs(stride=7,samples=32)");
    }
}
