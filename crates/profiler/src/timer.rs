//! Timer-based DCG sampling — the Jikes RVM baseline (§3.3).
//!
//! A timer interrupt arms the thread; the *first* prologue/epilogue
//! yieldpoint executed afterwards takes one sample. This is exactly the
//! biased mechanism the paper's Figure 1 defeats: the sample always lands
//! on the first call after the tick, so calls that follow long non-call
//! regions are systematically over-represented (`call_1` looks hot,
//! `call_2` looks cold).
//!
//! Behaviorally this is [`CounterBasedSampler`] with `stride = 1,
//! samples_per_tick = 1`; it is implemented separately so the baseline is
//! independent of the contribution (and the equivalence is asserted by
//! integration tests).
//!
//! [`CounterBasedSampler`]: crate::CounterBasedSampler

use crate::costs::{OverheadMeter, ProfilingCosts};
use crate::traits::CallGraphProfiler;
use cbs_dcg::DynamicCallGraph;
use cbs_vm::{CallEvent, Profiler, StackSlice, ThreadId};

/// The timer-armed, next-yieldpoint sampler.
#[derive(Debug, Default)]
pub struct TimerSampler {
    costs: ProfilingCosts,
    armed: Vec<bool>,
    dcg: DynamicCallGraph,
    meter: OverheadMeter,
    samples: u64,
}

impl TimerSampler {
    /// Creates a sampler with default costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sampler with explicit costs.
    pub fn with_costs(costs: ProfilingCosts) -> Self {
        Self {
            costs,
            ..Self::default()
        }
    }

    fn arm(&mut self, thread: ThreadId) {
        let idx = thread.index();
        if idx >= self.armed.len() {
            self.armed.resize(idx + 1, false);
        }
        self.armed[idx] = true;
    }

    fn disarm_if_armed(&mut self, thread: ThreadId) -> bool {
        match self.armed.get_mut(thread.index()) {
            Some(a) if *a => {
                *a = false;
                true
            }
            _ => false,
        }
    }

    fn sample(&mut self, event: &CallEvent<'_>) {
        if self.disarm_if_armed(event.thread) {
            self.meter
                .charge(self.costs.sample_cost_millicycles(event.stack.depth()));
            self.samples += 1;
            self.dcg.record_sample(event.edge);
        }
    }
}

impl Profiler for TimerSampler {
    fn on_tick(&mut self, _clock: u64, thread: ThreadId, _stack: StackSlice<'_>) {
        self.meter.charge(self.costs.tick_service_millicycles);
        self.arm(thread);
    }

    fn on_entry(&mut self, event: &CallEvent<'_>) {
        self.sample(event);
    }

    fn on_exit(&mut self, event: &CallEvent<'_>) {
        self.sample(event);
    }
}

impl CallGraphProfiler for TimerSampler {
    fn name(&self) -> String {
        "timer".to_owned()
    }

    fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    fn take_dcg(&mut self) -> DynamicCallGraph {
        std::mem::take(&mut self.dcg)
    }

    fn overhead_cycles(&self) -> u64 {
        self.meter.cycles()
    }

    fn samples_taken(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId};
    use cbs_dcg::CallEdge;
    use cbs_vm::Frame;

    fn frames() -> Vec<Frame> {
        vec![Frame::new(MethodId::new(0), 0)]
    }

    fn ev<'a>(frames: &'a [Frame], callee: u32, thread: u32) -> CallEvent<'a> {
        CallEvent {
            edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(callee)),
            clock: 0,
            thread: ThreadId(thread),
            stack: StackSlice::for_testing(frames),
        }
    }

    #[test]
    fn samples_only_first_event_after_tick() {
        let mut s = TimerSampler::new();
        let f = frames();
        s.on_tick(0, ThreadId(0), StackSlice::for_testing(&f));
        s.on_entry(&ev(&f, 1, 0)); // sampled
        s.on_entry(&ev(&f, 2, 0)); // ignored
        s.on_entry(&ev(&f, 3, 0)); // ignored
        assert_eq!(s.samples_taken(), 1);
        assert_eq!(
            s.dcg().edges_by_weight()[0].0.callee,
            MethodId::new(1),
            "bias: the first call after the tick is the one sampled"
        );
    }

    #[test]
    fn unarmed_thread_not_sampled() {
        let mut s = TimerSampler::new();
        let f = frames();
        s.on_tick(0, ThreadId(0), StackSlice::for_testing(&f));
        s.on_entry(&ev(&f, 1, 1)); // different thread: not armed
        assert_eq!(s.samples_taken(), 0);
        s.on_entry(&ev(&f, 1, 0));
        assert_eq!(s.samples_taken(), 1);
    }

    #[test]
    fn exit_events_also_sampleable() {
        let mut s = TimerSampler::new();
        let f = frames();
        s.on_tick(0, ThreadId(0), StackSlice::for_testing(&f));
        s.on_exit(&ev(&f, 4, 0));
        assert_eq!(s.samples_taken(), 1);
    }

    #[test]
    fn overhead_counts_ticks_and_samples() {
        let mut s = TimerSampler::new();
        let f = frames();
        s.on_tick(0, ThreadId(0), StackSlice::for_testing(&f));
        s.on_entry(&ev(&f, 1, 0));
        let expected =
            (s.costs.tick_service_millicycles + s.costs.sample_cost_millicycles(1)) / 1000;
        assert_eq!(s.overhead_cycles(), expected);
    }
}
