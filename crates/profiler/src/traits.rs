//! The profiler result interface shared by every mechanism.

use cbs_dcg::DynamicCallGraph;
use cbs_vm::Profiler;

/// A call-graph profiler: a VM [`Profiler`] hook that accumulates a
/// [`DynamicCallGraph`] and accounts for its own simulated overhead.
///
/// This trait is object-safe so heterogeneous profiler sets can be
/// attached to one run through
/// [`MultiProfiler`](crate::MultiProfiler). `Send` is a supertrait so
/// boxed profiler shards can move onto the parallel experiment runner's
/// worker threads.
pub trait CallGraphProfiler: Profiler + Send {
    /// Short, stable mechanism name (e.g. `"cbs(3,16)"`) for reports.
    fn name(&self) -> String;

    /// The profile accumulated so far.
    fn dcg(&self) -> &DynamicCallGraph;

    /// Consumes the accumulated profile, leaving an empty one.
    fn take_dcg(&mut self) -> DynamicCallGraph;

    /// Simulated cycles this profiler's actions would have cost the VM.
    fn overhead_cycles(&self) -> u64;

    /// Number of call-stack samples taken (0 for exhaustive mechanisms,
    /// which count rather than sample).
    fn samples_taken(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Object safety: this must compile.
    fn _assert_object_safe(_p: &dyn CallGraphProfiler) {}

    struct Dummy(DynamicCallGraph);
    impl Profiler for Dummy {}
    impl CallGraphProfiler for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn dcg(&self) -> &DynamicCallGraph {
            &self.0
        }
        fn take_dcg(&mut self) -> DynamicCallGraph {
            std::mem::take(&mut self.0)
        }
        fn overhead_cycles(&self) -> u64 {
            0
        }
        fn samples_taken(&self) -> u64 {
            0
        }
    }

    #[test]
    fn take_dcg_leaves_empty() {
        let mut d = Dummy(DynamicCallGraph::new());
        d.0.record(
            cbs_dcg::CallEdge::new(
                cbs_bytecode::MethodId::new(0),
                cbs_bytecode::CallSiteId::new(0),
                cbs_bytecode::MethodId::new(1),
            ),
            1.0,
        );
        let g = d.take_dcg();
        assert_eq!(g.num_edges(), 1);
        assert!(d.dcg().is_empty());
    }
}
