//! Static telemetry handles for the profilers (`cbs.*` metrics).
//!
//! Both counters are event sums over a deterministic sampling schedule
//! (the CBS skip/stride state machine is seeded), so for a fixed
//! workload they are reproducible for any thread count.

use cbs_telemetry::{global, Counter};
use std::sync::OnceLock;

/// The counter-based-sampling metric handles. Obtain via
/// [`CbsMetrics::get`].
#[derive(Debug)]
pub struct CbsMetrics {
    /// Call-stack samples taken (edges recorded into the repository).
    pub samples: Counter,
    /// Sampling windows opened by a timer tick (disabled → enabled
    /// transitions; a tick that lands in a still-open window does not
    /// count).
    pub windows: Counter,
}

impl CbsMetrics {
    /// The process-wide handles, registered on first call.
    pub fn get() -> &'static CbsMetrics {
        static HANDLES: OnceLock<CbsMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let r = global();
            CbsMetrics {
                samples: r.counter("cbs.samples", "call-stack samples taken"),
                windows: r.counter("cbs.windows", "sampling windows opened by a timer tick"),
            }
        })
    }
}
