//! Emulated hardware call sampling (§7).
//!
//! The paper's related-work section observes that a hardware mechanism
//! which samples executed call instructions (capturing caller PC and
//! target PC) could collect a DCG with essentially no software overhead —
//! the Pentium 4 "comes very close", offering either *low-overhead but
//! imprecise* or *precise but high-overhead* sampling.
//!
//! This profiler emulates the low-overhead/imprecise mode: a hardware
//! counter fires every `period`-th call event (no software cost until it
//! fires), but the reported sample suffers *skid* — with probability
//! `skid_probability` it is attributed to the previously executed call
//! instead of the one that triggered the counter. The ablation
//! experiments use it to show that CBS's accuracy is attainable in
//! software at comparable overhead, which is the paper's argument for
//! not waiting on micro-architecture-specific hardware.

use crate::costs::{OverheadMeter, ProfilingCosts};
use crate::traits::CallGraphProfiler;
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_prng::SmallRng;
use cbs_vm::{CallEvent, Profiler};

/// Configuration of the emulated hardware sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareConfig {
    /// Sample every `period`-th dynamic call.
    pub period: u64,
    /// Probability a sample is attributed to the previous call (skid).
    pub skid_probability: f64,
    /// Cycles charged per delivered sample interrupt (servicing the
    /// performance-monitoring interrupt is not free even in hardware).
    pub costs: ProfilingCosts,
    /// Determinism seed for the skid draw.
    pub seed: u64,
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self {
            period: 61,
            skid_probability: 0.35,
            costs: ProfilingCosts::default(),
            seed: 0xCAFE,
        }
    }
}

/// The emulated hardware call sampler.
#[derive(Debug)]
pub struct HardwareSampler {
    config: HardwareConfig,
    countdown: u64,
    previous: Option<CallEdge>,
    dcg: DynamicCallGraph,
    meter: OverheadMeter,
    samples: u64,
    rng: SmallRng,
}

impl HardwareSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `skid_probability` is outside
    /// `[0, 1]`.
    pub fn new(config: HardwareConfig) -> Self {
        assert!(config.period >= 1, "period must be >= 1");
        assert!(
            (0.0..=1.0).contains(&config.skid_probability),
            "skid probability must be in [0,1]"
        );
        let seed = config.seed;
        Self {
            config,
            countdown: 0,
            previous: None,
            dcg: DynamicCallGraph::new(),
            meter: OverheadMeter::new(),
            samples: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HardwareConfig {
        &self.config
    }
}

impl Profiler for HardwareSampler {
    fn on_entry(&mut self, event: &CallEvent<'_>) {
        // The counting itself is free: it happens in hardware.
        self.countdown += 1;
        if self.countdown >= self.config.period {
            self.countdown = 0;
            // Servicing the PMU interrupt costs a (cheap) trap.
            self.meter
                .charge(self.config.costs.tick_service_millicycles);
            self.samples += 1;
            let reported = if self.rng.gen_bool(self.config.skid_probability) {
                self.previous.unwrap_or(event.edge)
            } else {
                event.edge
            };
            self.dcg.record_sample(reported);
        }
        self.previous = Some(event.edge);
    }
}

impl CallGraphProfiler for HardwareSampler {
    fn name(&self) -> String {
        format!(
            "hardware(period={},skid={:.0}%)",
            self.config.period,
            self.config.skid_probability * 100.0
        )
    }

    fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    fn take_dcg(&mut self) -> DynamicCallGraph {
        std::mem::take(&mut self.dcg)
    }

    fn overhead_cycles(&self) -> u64 {
        self.meter.cycles()
    }

    fn samples_taken(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId};
    use cbs_vm::{Frame, StackSlice, ThreadId};

    fn ev<'a>(frames: &'a [Frame], callee: u32) -> CallEvent<'a> {
        CallEvent {
            edge: CallEdge::new(
                MethodId::new(0),
                CallSiteId::new(callee),
                MethodId::new(callee),
            ),
            clock: 0,
            thread: ThreadId(0),
            stack: StackSlice::for_testing(frames),
        }
    }

    #[test]
    fn samples_every_period_th_call() {
        let mut h = HardwareSampler::new(HardwareConfig {
            period: 10,
            skid_probability: 0.0,
            ..HardwareConfig::default()
        });
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        for i in 0..100 {
            h.on_entry(&ev(&frames, i));
        }
        assert_eq!(h.samples_taken(), 10);
        assert_eq!(h.dcg().total_weight(), 10.0);
    }

    #[test]
    fn skid_attributes_to_previous_call() {
        let mut h = HardwareSampler::new(HardwareConfig {
            period: 2,
            skid_probability: 1.0,
            ..HardwareConfig::default()
        });
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        h.on_entry(&ev(&frames, 1)); // countdown 1
        h.on_entry(&ev(&frames, 2)); // fires; skid -> reported as 1
        assert_eq!(h.samples_taken(), 1);
        assert_eq!(h.dcg().incoming_weight(MethodId::new(1)), 1.0);
        assert_eq!(h.dcg().incoming_weight(MethodId::new(2)), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut h = HardwareSampler::new(HardwareConfig {
                period: 3,
                skid_probability: 0.5,
                seed,
                ..HardwareConfig::default()
            });
            let frames = vec![Frame::new(MethodId::new(0), 0)];
            for i in 0..200 {
                h.on_entry(&ev(&frames, i % 7));
            }
            h.dcg().edges_by_weight()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "period must be >= 1")]
    fn zero_period_rejected() {
        let _ = HardwareSampler::new(HardwareConfig {
            period: 0,
            ..HardwareConfig::default()
        });
    }
}
