//! Attach many profiler configurations to one run.
//!
//! Because every profiler accounts for its own *simulated* overhead and
//! the VM's base clock is profiler-independent, a whole grid of sampler
//! configurations (e.g. Table 2's Stride × Samples sweep) can observe a
//! single deterministic interpretation. Each attached profiler behaves
//! exactly as it would alone — asserted by integration tests.

use crate::traits::CallGraphProfiler;
use cbs_bytecode::MethodId;
use cbs_vm::{CallEvent, Profiler, StackSlice, ThreadId};

/// A fan-out profiler delivering every event to each attached profiler.
#[derive(Default)]
pub struct MultiProfiler {
    profilers: Vec<Box<dyn CallGraphProfiler>>,
}

impl std::fmt::Debug for MultiProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiProfiler")
            .field("profilers", &self.names())
            .finish()
    }
}

impl MultiProfiler {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a profiler, returning its index.
    pub fn attach(&mut self, profiler: Box<dyn CallGraphProfiler>) -> usize {
        self.profilers.push(profiler);
        self.profilers.len() - 1
    }

    /// Number of attached profilers.
    pub fn len(&self) -> usize {
        self.profilers.len()
    }

    /// Returns `true` when nothing is attached.
    pub fn is_empty(&self) -> bool {
        self.profilers.is_empty()
    }

    /// Shared access to one attached profiler.
    pub fn get(&self, index: usize) -> Option<&dyn CallGraphProfiler> {
        self.profilers.get(index).map(|b| b.as_ref())
    }

    /// Mutable access to one attached profiler.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut (dyn CallGraphProfiler + 'static)> {
        self.profilers.get_mut(index).map(|b| b.as_mut())
    }

    /// Names of all attached profilers, in attachment order.
    pub fn names(&self) -> Vec<String> {
        self.profilers.iter().map(|p| p.name()).collect()
    }

    /// Iterates over the attached profilers.
    pub fn iter(&self) -> impl Iterator<Item = &dyn CallGraphProfiler> + '_ {
        self.profilers.iter().map(|b| b.as_ref())
    }

    /// Consumes the fan-out, returning the attached profilers.
    pub fn into_inner(self) -> Vec<Box<dyn CallGraphProfiler>> {
        self.profilers
    }
}

impl Profiler for MultiProfiler {
    fn on_tick(&mut self, clock: u64, thread: ThreadId, stack: StackSlice<'_>) {
        for p in &mut self.profilers {
            p.on_tick(clock, thread, stack);
        }
    }

    fn on_entry(&mut self, event: &CallEvent<'_>) {
        for p in &mut self.profilers {
            p.on_entry(event);
        }
    }

    fn on_exit(&mut self, event: &CallEvent<'_>) {
        for p in &mut self.profilers {
            p.on_exit(event);
        }
    }

    fn on_backedge(&mut self, method: MethodId, clock: u64, thread: ThreadId) {
        for p in &mut self.profilers {
            p.on_backedge(method, clock, thread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbs::{CbsConfig, CounterBasedSampler};
    use crate::exhaustive::ExhaustiveProfiler;
    use crate::timer::TimerSampler;
    use cbs_bytecode::{CallSiteId, MethodId};
    use cbs_dcg::CallEdge;
    use cbs_vm::Frame;

    #[test]
    fn fan_out_reaches_all() {
        let mut m = MultiProfiler::new();
        let a = m.attach(Box::new(ExhaustiveProfiler::new()));
        let b = m.attach(Box::new(TimerSampler::new()));
        let c = m.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(1, 1))));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());

        let frames = vec![Frame::new(MethodId::new(0), 0)];
        m.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        let ev = CallEvent {
            edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1)),
            clock: 1,
            thread: ThreadId(0),
            stack: StackSlice::for_testing(&frames),
        };
        m.on_entry(&ev);
        assert_eq!(m.get(a).unwrap().dcg().total_weight(), 1.0);
        assert_eq!(m.get(b).unwrap().dcg().total_weight(), 1.0);
        assert_eq!(m.get(c).unwrap().dcg().total_weight(), 1.0);
        assert!(m.get(99).is_none());
    }

    #[test]
    fn names_in_attachment_order() {
        let mut m = MultiProfiler::new();
        m.attach(Box::new(TimerSampler::new()));
        m.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))));
        assert_eq!(m.names(), vec!["timer", "cbs(stride=3,samples=16)"]);
    }

    #[test]
    fn into_inner_returns_profilers() {
        let mut m = MultiProfiler::new();
        m.attach(Box::new(TimerSampler::new()));
        let inner = m.into_inner();
        assert_eq!(inner.len(), 1);
    }
}
