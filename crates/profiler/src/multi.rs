//! Attach many profiler configurations to one run.
//!
//! Because every profiler accounts for its own *simulated* overhead and
//! the VM's base clock is profiler-independent, a whole grid of sampler
//! configurations (e.g. Table 2's Stride × Samples sweep) can observe a
//! single deterministic interpretation. Each attached profiler behaves
//! exactly as it would alone — asserted by integration tests.

use crate::traits::CallGraphProfiler;
use cbs_bytecode::MethodId;
use cbs_vm::{CallEvent, Profiler, StackSlice, ThreadId};

/// A fan-out profiler delivering every event to each attached profiler.
#[derive(Default)]
pub struct MultiProfiler {
    profilers: Vec<Box<dyn CallGraphProfiler>>,
}

impl std::fmt::Debug for MultiProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiProfiler")
            .field("profilers", &self.names())
            .finish()
    }
}

impl MultiProfiler {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a profiler, returning its index.
    pub fn attach(&mut self, profiler: Box<dyn CallGraphProfiler>) -> usize {
        self.profilers.push(profiler);
        self.profilers.len() - 1
    }

    /// Number of attached profilers.
    pub fn len(&self) -> usize {
        self.profilers.len()
    }

    /// Returns `true` when nothing is attached.
    pub fn is_empty(&self) -> bool {
        self.profilers.is_empty()
    }

    /// Shared access to one attached profiler.
    pub fn get(&self, index: usize) -> Option<&dyn CallGraphProfiler> {
        self.profilers.get(index).map(|b| b.as_ref())
    }

    /// Mutable access to one attached profiler.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut (dyn CallGraphProfiler + 'static)> {
        self.profilers.get_mut(index).map(|b| b.as_mut())
    }

    /// Names of all attached profilers, in attachment order.
    pub fn names(&self) -> Vec<String> {
        self.profilers.iter().map(|p| p.name()).collect()
    }

    /// Iterates over the attached profilers.
    pub fn iter(&self) -> impl Iterator<Item = &dyn CallGraphProfiler> + '_ {
        self.profilers.iter().map(|b| b.as_ref())
    }

    /// Consumes the fan-out, returning the attached profilers.
    pub fn into_inner(self) -> Vec<Box<dyn CallGraphProfiler>> {
        self.profilers
    }

    /// Splits the fan-out into at most `num_shards` contiguous chunks,
    /// preserving attachment order across the concatenation of shards.
    ///
    /// Because attached profilers never interact (every profiler
    /// accounts only for its own simulated overhead against the
    /// profiler-independent base clock), running each shard in its own
    /// `Vm` observes the *same* events and produces the same per-profiler
    /// state as one mega-run — which is what lets the parallel experiment
    /// runner evaluate a configuration grid as independent cells.
    ///
    /// Earlier shards are at most one profiler larger than later ones.
    /// Fewer, non-empty shards are returned when there are fewer
    /// profilers than `num_shards`; `num_shards == 0` is treated as 1.
    pub fn into_shards(self, num_shards: usize) -> Vec<MultiProfiler> {
        let total = self.profilers.len();
        let shards = num_shards.max(1).min(total.max(1));
        let base = total / shards;
        let extra = total % shards;
        let mut iter = self.profilers.into_iter();
        (0..shards)
            .map(|s| {
                let size = base + usize::from(s < extra);
                MultiProfiler {
                    profilers: iter.by_ref().take(size).collect(),
                }
            })
            .filter(|m| !m.is_empty())
            .collect()
    }
}

impl Profiler for MultiProfiler {
    fn on_tick(&mut self, clock: u64, thread: ThreadId, stack: StackSlice<'_>) {
        for p in &mut self.profilers {
            p.on_tick(clock, thread, stack);
        }
    }

    fn on_entry(&mut self, event: &CallEvent<'_>) {
        for p in &mut self.profilers {
            p.on_entry(event);
        }
    }

    fn on_exit(&mut self, event: &CallEvent<'_>) {
        for p in &mut self.profilers {
            p.on_exit(event);
        }
    }

    fn on_backedge(&mut self, method: MethodId, clock: u64, thread: ThreadId) {
        for p in &mut self.profilers {
            p.on_backedge(method, clock, thread);
        }
    }

    fn on_finish(&mut self, clock: u64) {
        for p in &mut self.profilers {
            p.on_finish(clock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbs::{CbsConfig, CounterBasedSampler};
    use crate::exhaustive::ExhaustiveProfiler;
    use crate::timer::TimerSampler;
    use cbs_bytecode::{CallSiteId, MethodId};
    use cbs_dcg::CallEdge;
    use cbs_vm::Frame;

    #[test]
    fn fan_out_reaches_all() {
        let mut m = MultiProfiler::new();
        let a = m.attach(Box::new(ExhaustiveProfiler::new()));
        let b = m.attach(Box::new(TimerSampler::new()));
        let c = m.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(1, 1))));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());

        let frames = vec![Frame::new(MethodId::new(0), 0)];
        m.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        let ev = CallEvent {
            edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1)),
            clock: 1,
            thread: ThreadId(0),
            stack: StackSlice::for_testing(&frames),
        };
        m.on_entry(&ev);
        assert_eq!(m.get(a).unwrap().dcg().total_weight(), 1.0);
        assert_eq!(m.get(b).unwrap().dcg().total_weight(), 1.0);
        assert_eq!(m.get(c).unwrap().dcg().total_weight(), 1.0);
        assert!(m.get(99).is_none());
    }

    #[test]
    fn names_in_attachment_order() {
        let mut m = MultiProfiler::new();
        m.attach(Box::new(TimerSampler::new()));
        m.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(3, 16))));
        assert_eq!(m.names(), vec!["timer", "cbs(stride=3,samples=16)"]);
    }

    #[test]
    fn into_inner_returns_profilers() {
        let mut m = MultiProfiler::new();
        m.attach(Box::new(TimerSampler::new()));
        let inner = m.into_inner();
        assert_eq!(inner.len(), 1);
    }

    fn grid(n: u32) -> MultiProfiler {
        let mut m = MultiProfiler::new();
        for stride in 1..=n {
            m.attach(Box::new(CounterBasedSampler::new(CbsConfig::new(
                stride, 1,
            ))));
        }
        m
    }

    #[test]
    fn into_shards_preserves_order_and_balances() {
        let names = grid(7).names();
        let shards = grid(7).into_shards(3);
        assert_eq!(
            shards.iter().map(MultiProfiler::len).collect::<Vec<_>>(),
            vec![3, 2, 2],
            "earlier shards at most one larger"
        );
        let rejoined: Vec<String> = shards.iter().flat_map(|s| s.names()).collect();
        assert_eq!(rejoined, names, "concatenation preserves attachment order");
    }

    #[test]
    fn into_shards_edge_cases() {
        // More shards than profilers: one profiler per shard, no empties.
        let shards = grid(2).into_shards(5);
        assert_eq!(shards.len(), 2);
        assert!(shards.iter().all(|s| s.len() == 1));
        // Zero is treated as one.
        let shards = grid(3).into_shards(0);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 3);
        // Empty fan-out shards to nothing.
        assert!(MultiProfiler::new().into_shards(4).is_empty());
    }
}
