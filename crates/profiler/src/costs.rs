//! Simulated cost accounting for profiling actions.
//!
//! Profilers charge their own virtual overhead rather than perturbing the
//! VM's base clock, so any number of profiler configurations can observe
//! one deterministic run and report `overhead% = own_cycles / base_cycles`
//! independently.
//!
//! Costs are expressed in **millicycles** (1/1000 of a virtual cycle).
//! The virtual machine's clock is deliberately scaled down (default 10 MHz
//! vs. the paper's 2.8 GHz hardware) so that benchmarks interpret quickly;
//! profiling actions must be scaled by the same factor to keep the
//! *ratio* of profiling work to timer period — the quantity that
//! determines the overhead columns of Tables 2 and 3 — faithful. A stack
//! sample that costs ≈1250 cycles on the paper's hardware costs
//! 1250/280 ≈ 4.5 scaled cycles = 4500 millicycles here.

/// Millicycle prices for each profiling action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilingCosts {
    /// One call-stack sample: walk the stack, update the profile
    /// repository. (≈1250 unscaled cycles.)
    pub sample_millicycles: u64,
    /// Additional cost per stack frame walked during a sample (deep
    /// stacks cost more to walk; ≈30 unscaled cycles per frame).
    pub sample_frame_millicycles: u64,
    /// One countdown decrement + test, paid per method entry/exit while a
    /// sampling window is open (≈11 unscaled cycles: load, dec, test,
    /// store).
    pub countdown_millicycles: u64,
    /// Servicing a timer interrupt in the profiler (setting the sampling
    /// flag / yieldpoint control word).
    pub tick_service_millicycles: u64,
    /// One explicit method-entry flag check (three instructions: load,
    /// compare, branch) — paid on *every* entry, but only by VMs that
    /// cannot overload an existing entry check (§4 "Implementation
    /// Options").
    pub entry_check_millicycles: u64,
    /// Installing or uninstalling a method-prologue listener by code
    /// patching (Suganuma-style profilers).
    pub patch_millicycles: u64,
    /// One exhaustive-instrumentation counter update, paid per call
    /// (the Vortex "PIC counters" that cost 15–50%).
    pub instrument_millicycles: u64,
}

impl Default for ProfilingCosts {
    fn default() -> Self {
        Self {
            sample_millicycles: 4_500,
            sample_frame_millicycles: 100,
            countdown_millicycles: 40,
            tick_service_millicycles: 300,
            entry_check_millicycles: 40,
            patch_millicycles: 3_000,
            instrument_millicycles: 18_000,
        }
    }
}

impl ProfilingCosts {
    /// Total cost of one sample whose stack walk covered `frames` frames.
    pub fn sample_cost_millicycles(&self, frames: usize) -> u64 {
        self.sample_millicycles + self.sample_frame_millicycles * frames as u64
    }
}

/// Accumulates millicycle charges and reports whole overhead cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadMeter {
    millicycles: u64,
}

impl OverheadMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a charge.
    pub fn charge(&mut self, millicycles: u64) {
        self.millicycles += millicycles;
    }

    /// Total charged, in whole cycles (rounded down).
    pub fn cycles(&self) -> u64 {
        self.millicycles / 1000
    }

    /// Total charged, in exact fractional cycles.
    pub fn cycles_f64(&self) -> f64 {
        self.millicycles as f64 / 1000.0
    }

    /// Overhead as a percentage of `base_cycles`.
    pub fn percent_of(&self, base_cycles: u64) -> f64 {
        if base_cycles == 0 {
            0.0
        } else {
            100.0 * self.cycles_f64() / base_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_rounds() {
        let mut m = OverheadMeter::new();
        m.charge(1500);
        m.charge(700);
        assert_eq!(m.cycles(), 2);
        assert!((m.cycles_f64() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn percent_of_base() {
        let mut m = OverheadMeter::new();
        m.charge(5_000_000); // 5000 cycles
        assert!((m.percent_of(1_000_000) - 0.5).abs() < 1e-12);
        assert_eq!(m.percent_of(0), 0.0);
    }

    #[test]
    fn default_costs_keep_paper_ratios() {
        // With the default 100_000-cycle timer period, a (stride=1,
        // samples=8192) configuration should cost roughly 8192 samples ×
        // 4.5 cycles ≈ 37% of a period — the magnitude Table 2A reports
        // for its largest samples-per-tick row.
        let c = ProfilingCosts::default();
        let per_tick = 8192 * c.sample_millicycles / 1000;
        let pct = 100.0 * per_tick as f64 / 100_000.0;
        assert!((30.0..45.0).contains(&pct), "{pct}% out of expected band");
    }
}
