//! Whaley-style PC sampling (§3.3).
//!
//! A separate sampling thread periodically observes each program thread's
//! program counter and stack and records what it sees; the program threads
//! do no profiling work and are unaware they were sampled. The mechanism
//! reports *where time is spent*, which is the wrong quantity for call
//! *frequency*: in the Figure 1 program it finds `M()` perpetually at the
//! top of the stack and misses almost every call to `call_1`/`call_2`.
//!
//! Each sample records the full stack: the path goes into a
//! [`CallingContextTree`] (Whaley's system built a context tree) and every
//! edge on the path gets one count in the flat DCG view.

use crate::traits::CallGraphProfiler;
use cbs_dcg::{CallEdge, CallingContextTree, DynamicCallGraph};
use cbs_vm::{Profiler, StackSlice, ThreadId};

/// The asynchronous top-of-stack sampler.
#[derive(Debug, Default)]
pub struct PcSampler {
    cct: CallingContextTree,
    dcg: DynamicCallGraph,
    samples: u64,
}

impl PcSampler {
    /// Creates a sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The calling context tree built from the samples.
    pub fn cct(&self) -> &CallingContextTree {
        &self.cct
    }
}

impl Profiler for PcSampler {
    fn on_tick(&mut self, _clock: u64, _thread: ThreadId, stack: StackSlice<'_>) {
        self.samples += 1;
        let path = stack.context_path();
        self.cct.add_sample(&path);
        for pair in path.windows(2) {
            self.dcg
                .record_sample(CallEdge::new(pair[0].method, pair[1].site, pair[1].method));
        }
    }
}

impl CallGraphProfiler for PcSampler {
    fn name(&self) -> String {
        "pc-sampling".to_owned()
    }

    fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    fn take_dcg(&mut self) -> DynamicCallGraph {
        self.cct = CallingContextTree::new();
        std::mem::take(&mut self.dcg)
    }

    fn overhead_cycles(&self) -> u64 {
        // The program threads perform no profiling work; the sampling
        // thread's cost lands on another core. (Whaley reports <1%.)
        0
    }

    fn samples_taken(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId};
    use cbs_vm::Frame;

    fn stack(methods: &[u32]) -> Vec<Frame> {
        let mut frames = Vec::new();
        for (i, &m) in methods.iter().enumerate() {
            let mut f = Frame::new(MethodId::new(m), 0);
            if i + 1 < methods.len() {
                f.set_pending_site(Some(CallSiteId::new(i as u32)));
            }
            frames.push(f);
        }
        frames
    }

    #[test]
    fn tick_records_full_stack() {
        let mut s = PcSampler::new();
        let frames = stack(&[0, 1, 2]);
        s.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        assert_eq!(s.samples_taken(), 1);
        assert_eq!(s.cct().max_depth(), 3);
        // Edges m0->m1 and m1->m2 each witnessed once.
        assert_eq!(s.dcg().num_edges(), 2);
        assert_eq!(s.dcg().total_weight(), 2.0);
    }

    #[test]
    fn flat_dcg_matches_cct_collapse() {
        let mut s = PcSampler::new();
        for methods in [&[0, 1, 2][..], &[0, 1][..], &[0, 3][..]] {
            let frames = stack(methods);
            s.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        }
        let collapsed = s.cct().to_dcg();
        assert!((cbs_dcg::overlap(s.dcg(), &collapsed) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_top_of_stack_biases_dcg() {
        // Simulates Figure 1: ticks always land while M (m1) is running;
        // the short calls are never on the stack at tick time.
        let mut s = PcSampler::new();
        let frames = stack(&[0, 1]);
        for _ in 0..10 {
            s.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        }
        assert_eq!(s.dcg().num_edges(), 1, "only main->M observed");
        assert_eq!(s.dcg().total_weight(), 10.0);
    }

    #[test]
    fn take_dcg_resets() {
        let mut s = PcSampler::new();
        let frames = stack(&[0, 1]);
        s.on_tick(0, ThreadId(0), StackSlice::for_testing(&frames));
        let g = s.take_dcg();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(s.cct().num_nodes(), 1, "tree reset to root");
        assert!(s.dcg().is_empty());
    }

    #[test]
    fn zero_overhead_on_program_threads() {
        let s = PcSampler::new();
        assert_eq!(s.overhead_cycles(), 0);
    }
}
