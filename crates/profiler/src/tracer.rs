//! Exact per-method time attribution from entry/exit events.
//!
//! The tracer pairs every method entry with its exit and charges the
//! elapsed virtual cycles to the method — *exclusive* time (cycles while
//! the method itself was on top) and *inclusive* time (callees included).
//!
//! Besides being a practical VM tool, it closes an argument from §3.3:
//! timer-based sampling **is** a faithful estimator of where *time* goes
//! (the tick histogram converges to the exact exclusive-time
//! distribution — asserted by integration tests) even though it is a
//! *biased* estimator of call frequency. Same trigger, right metric vs
//! wrong metric.
//!
//! Requires the Jikes hosting flavor (exit events); on the J9 flavor the
//! tracer sees no exits and reports nothing.

use cbs_bytecode::MethodId;
use cbs_vm::{CallEvent, Profiler, StackSlice, ThreadId};
use std::collections::HashMap;

/// Per-method time totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MethodTime {
    /// Cycles with this method on top of the stack.
    pub exclusive: u64,
    /// Cycles between entry and exit (callees included).
    pub inclusive: u64,
    /// Completed invocations.
    pub invocations: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenFrame {
    method: MethodId,
    entered_at: u64,
    /// Cycles consumed by completed callees of this frame.
    callee_cycles: u64,
}

/// The call-tree tracer.
#[derive(Debug, Default)]
pub struct CallTreeTracer {
    stacks: HashMap<ThreadId, Vec<OpenFrame>>,
    times: HashMap<MethodId, MethodTime>,
}

impl CallTreeTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time totals for one method (zeroes if never completed).
    pub fn time_of(&self, method: MethodId) -> MethodTime {
        self.times.get(&method).copied().unwrap_or_default()
    }

    /// All recorded methods with their totals, hottest (by exclusive
    /// time) first.
    pub fn by_exclusive(&self) -> Vec<(MethodId, MethodTime)> {
        let mut v: Vec<(MethodId, MethodTime)> = self.times.iter().map(|(m, t)| (*m, *t)).collect();
        v.sort_unstable_by(|a, b| b.1.exclusive.cmp(&a.1.exclusive).then(a.0.cmp(&b.0)));
        v
    }

    /// Total exclusive cycles across completed invocations.
    pub fn total_exclusive(&self) -> u64 {
        self.times.values().map(|t| t.exclusive).sum()
    }

    /// A method's share of total exclusive time, in percent.
    pub fn exclusive_pct(&self, method: MethodId) -> f64 {
        let total = self.total_exclusive();
        if total == 0 {
            0.0
        } else {
            100.0 * self.time_of(method).exclusive as f64 / total as f64
        }
    }
}

impl Profiler for CallTreeTracer {
    fn on_entry(&mut self, event: &CallEvent<'_>) {
        self.stacks
            .entry(event.thread)
            .or_default()
            .push(OpenFrame {
                method: event.edge.callee,
                entered_at: event.clock,
                callee_cycles: 0,
            });
    }

    fn on_exit(&mut self, event: &CallEvent<'_>) {
        let stack = self.stacks.entry(event.thread).or_default();
        let Some(frame) = stack.pop() else { return };
        debug_assert_eq!(frame.method, event.edge.callee, "unbalanced entry/exit");
        let inclusive = event.clock.saturating_sub(frame.entered_at);
        let entry = self.times.entry(frame.method).or_default();
        entry.inclusive += inclusive;
        entry.exclusive += inclusive.saturating_sub(frame.callee_cycles);
        entry.invocations += 1;
        if let Some(parent) = stack.last_mut() {
            parent.callee_cycles += inclusive;
        }
    }

    fn on_tick(&mut self, _clock: u64, _thread: ThreadId, _stack: StackSlice<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;
    use cbs_vm::{Vm, VmConfig};

    #[test]
    fn attributes_inclusive_and_exclusive_time() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let inner = b
            .function("inner", cls, 0, 1, |c| {
                c.counted_loop(0, 50, |c| {
                    c.nop();
                });
                c.const_(1).ret();
            })
            .unwrap();
        let outer = b
            .function("outer", cls, 0, 0, |c| {
                c.call(inner).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 100, |c| {
                    c.call(outer).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let mut tracer = CallTreeTracer::new();
        Vm::new(&p, VmConfig::default()).run(&mut tracer).unwrap();

        let ti = tracer.time_of(inner);
        let to = tracer.time_of(outer);
        assert_eq!(ti.invocations, 100);
        assert_eq!(to.invocations, 100);
        // outer is a thin wrapper: nearly all its inclusive time is inner.
        assert!(to.inclusive > ti.inclusive);
        assert!(
            to.exclusive < to.inclusive / 5,
            "wrapper exclusive {} vs inclusive {}",
            to.exclusive,
            to.inclusive
        );
        // inner dominates the exclusive-time ranking.
        assert_eq!(tracer.by_exclusive()[0].0, inner);
        assert!(tracer.exclusive_pct(inner) > 60.0);
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        // Defensive: an exit with no tracked entry must not panic.
        use cbs_bytecode::{CallSiteId, MethodId};
        use cbs_dcg::CallEdge;
        use cbs_vm::Frame;
        let mut t = CallTreeTracer::new();
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        let ev = CallEvent {
            edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1)),
            clock: 5,
            thread: ThreadId(0),
            stack: StackSlice::for_testing(&frames),
        };
        t.on_exit(&ev);
        assert_eq!(t.total_exclusive(), 0);
    }
}
