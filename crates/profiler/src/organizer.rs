//! The listener/organizer split of the Jikes RVM adaptive optimization
//! system (§5.1).
//!
//! In Jikes RVM, profile-gathering *listeners* run inside the sampled
//! thread and must be cheap: they append raw samples to a buffer and
//! return. An *organizer* thread periodically drains the buffer into the
//! profile repository, applying exponential decay so the DCG tracks the
//! program's current behavior ("the organizers that process the raw
//! profile data were unchanged: they simply process samples without
//! needing to know if the samples came from a listener that was
//! responding to time-based or counter-based events").
//!
//! This module reproduces that architecture deterministically: a
//! [`SampleBuffer`] collects raw edges, and a [`DcgOrganizer`] drains it
//! on a cadence, decaying old weight first.

use crate::costs::{OverheadMeter, ProfilingCosts};
use crate::traits::CallGraphProfiler;
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_vm::{CallEvent, Profiler, StackSlice, ThreadId};

/// A bounded buffer of raw edge samples.
///
/// When full, further samples are dropped and counted — exactly the
/// back-pressure behavior of a real lock-free sample buffer.
#[derive(Debug, Clone)]
pub struct SampleBuffer {
    samples: Vec<CallEdge>,
    capacity: usize,
    dropped: u64,
}

impl SampleBuffer {
    /// Creates a buffer holding at most `capacity` samples between
    /// drains.
    pub fn new(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a sample, dropping it if the buffer is full.
    pub fn push(&mut self, edge: CallEdge) {
        if self.samples.len() < self.capacity {
            self.samples.push(edge);
        } else {
            self.dropped += 1;
        }
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples dropped due to back-pressure since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all buffered samples.
    pub fn drain(&mut self) -> Vec<CallEdge> {
        std::mem::take(&mut self.samples)
    }
}

/// Drains sample buffers into a decayed profile repository.
#[derive(Debug, Clone)]
pub struct DcgOrganizer {
    dcg: DynamicCallGraph,
    /// Multiplier applied to existing weight at each drain.
    decay: f64,
    /// Weights below this are pruned after decay.
    min_weight: f64,
    drains: u64,
}

impl DcgOrganizer {
    /// Creates an organizer with the given per-drain decay factor.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not within `(0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0,1]");
        Self {
            dcg: DynamicCallGraph::new(),
            decay,
            min_weight: 1e-3,
            drains: 0,
        }
    }

    /// The current (decayed) profile.
    pub fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    /// Number of drains performed.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Decays the repository and folds in everything buffered.
    pub fn process(&mut self, buffer: &mut SampleBuffer) {
        self.drains += 1;
        if self.decay < 1.0 {
            self.dcg.decay(self.decay, self.min_weight);
        }
        let batch = buffer.drain();
        self.dcg.record_batch(&batch);
    }
}

/// A CBS-style sampler wired through the listener/organizer split: the
/// listener only buffers; the organizer drains once per timer tick.
///
/// Functionally equivalent to [`CounterBasedSampler`] when `decay = 1`,
/// but with recency weighting when `decay < 1` — the configuration that
/// makes the profile track phase shifts.
///
/// [`CounterBasedSampler`]: crate::CounterBasedSampler
#[derive(Debug)]
pub struct OrganizedSampler {
    stride: u32,
    samples_per_tick: u32,
    buffer: SampleBuffer,
    organizer: DcgOrganizer,
    enabled: Vec<bool>,
    skipped: Vec<u32>,
    samples_left: Vec<u32>,
    costs: ProfilingCosts,
    meter: OverheadMeter,
    taken: u64,
}

impl OrganizedSampler {
    /// Creates a sampler with the given CBS parameters and per-tick
    /// decay.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `samples_per_tick` is zero, or `decay` is
    /// outside `(0, 1]`.
    pub fn new(stride: u32, samples_per_tick: u32, decay: f64) -> Self {
        assert!(stride >= 1 && samples_per_tick >= 1);
        Self {
            stride,
            samples_per_tick,
            buffer: SampleBuffer::new(4096),
            organizer: DcgOrganizer::new(decay),
            enabled: Vec::new(),
            skipped: Vec::new(),
            samples_left: Vec::new(),
            costs: ProfilingCosts::default(),
            meter: OverheadMeter::new(),
            taken: 0,
        }
    }

    /// The organizer (for inspecting drains and the decayed profile).
    pub fn organizer(&self) -> &DcgOrganizer {
        &self.organizer
    }

    fn grow(&mut self, thread: ThreadId) {
        let idx = thread.index();
        if idx >= self.enabled.len() {
            self.enabled.resize(idx + 1, false);
            self.skipped.resize(idx + 1, 0);
            self.samples_left.resize(idx + 1, 0);
        }
    }

    fn on_event(&mut self, event: &CallEvent<'_>) {
        self.grow(event.thread);
        let idx = event.thread.index();
        if !self.enabled[idx] {
            return;
        }
        self.meter.charge(self.costs.countdown_millicycles);
        self.skipped[idx] = self.skipped[idx].saturating_sub(1);
        if self.skipped[idx] > 0 {
            return;
        }
        // Listener duty only: buffer the raw sample and get out.
        self.meter
            .charge(self.costs.sample_cost_millicycles(event.stack.depth()));
        self.buffer.push(event.edge);
        self.taken += 1;
        self.skipped[idx] = self.stride;
        self.samples_left[idx] = self.samples_left[idx].saturating_sub(1);
        if self.samples_left[idx] == 0 {
            self.enabled[idx] = false;
        }
    }
}

impl Profiler for OrganizedSampler {
    fn on_tick(&mut self, _clock: u64, thread: ThreadId, _stack: StackSlice<'_>) {
        self.meter.charge(self.costs.tick_service_millicycles);
        // Organizer cadence: drain the buffer collected since last tick.
        self.organizer.process(&mut self.buffer);
        self.grow(thread);
        let idx = thread.index();
        if !self.enabled[idx] {
            self.enabled[idx] = true;
            self.samples_left[idx] = self.samples_per_tick;
            self.skipped[idx] = self.stride;
        }
    }

    fn on_entry(&mut self, event: &CallEvent<'_>) {
        self.on_event(event);
    }

    fn on_exit(&mut self, event: &CallEvent<'_>) {
        self.on_event(event);
    }
}

impl CallGraphProfiler for OrganizedSampler {
    fn name(&self) -> String {
        format!(
            "organized-cbs(stride={},samples={})",
            self.stride, self.samples_per_tick
        )
    }

    fn dcg(&self) -> &DynamicCallGraph {
        self.organizer.dcg()
    }

    fn take_dcg(&mut self) -> DynamicCallGraph {
        // Fold in any tail samples still buffered before handing out.
        self.organizer.process(&mut self.buffer);
        std::mem::take(&mut self.organizer.dcg)
    }

    fn overhead_cycles(&self) -> u64 {
        self.meter.cycles()
    }

    fn samples_taken(&self) -> u64 {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId};

    fn edge(callee: u32) -> CallEdge {
        CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(callee))
    }

    #[test]
    fn buffer_bounds_and_drops() {
        let mut b = SampleBuffer::new(2);
        b.push(edge(1));
        b.push(edge(2));
        b.push(edge(3));
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 1, "drop count persists across drains");
    }

    #[test]
    fn organizer_decays_then_accumulates() {
        let mut org = DcgOrganizer::new(0.5);
        let mut buf = SampleBuffer::new(16);
        buf.push(edge(1));
        buf.push(edge(1));
        org.process(&mut buf);
        assert_eq!(org.dcg().weight(&edge(1)), 2.0);
        // Second drain: old weight halves, one new sample lands.
        buf.push(edge(1));
        org.process(&mut buf);
        assert_eq!(org.dcg().weight(&edge(1)), 2.0);
        assert_eq!(org.drains(), 2);
    }

    #[test]
    #[should_panic(expected = "decay must be in (0,1]")]
    fn zero_decay_rejected() {
        let _ = DcgOrganizer::new(0.0);
    }

    #[test]
    fn decayed_profile_tracks_phase_shift() {
        // Phase A: edge 1 dominates; phase B: edge 2. With decay, the
        // final profile favors the recent phase.
        let mut org = DcgOrganizer::new(0.5);
        let mut buf = SampleBuffer::new(64);
        for _ in 0..10 {
            for _ in 0..8 {
                buf.push(edge(1));
            }
            org.process(&mut buf);
        }
        for _ in 0..10 {
            for _ in 0..8 {
                buf.push(edge(2));
            }
            org.process(&mut buf);
        }
        let w1 = org.dcg().weight(&edge(1));
        let w2 = org.dcg().weight(&edge(2));
        assert!(
            w2 > 10.0 * w1.max(1e-9),
            "recent phase must dominate: edge1={w1} edge2={w2}"
        );
    }

    #[test]
    fn undecayed_organized_sampler_matches_plain_cbs() {
        use crate::cbs::{CbsConfig, CounterBasedSampler, SkipPolicy};
        use cbs_vm::{Vm, VmConfig};

        let mut b = cbs_bytecode::ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 300_000, |c| {
                    c.call(f).pop();
                });
                c.const_(0).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();

        let mut plain = CounterBasedSampler::new(CbsConfig {
            stride: 3,
            samples_per_tick: 8,
            skip_policy: SkipPolicy::Fixed,
            ..CbsConfig::default()
        });
        let mut organized = OrganizedSampler::new(3, 8, 1.0);
        Vm::new(&p, VmConfig::default()).run(&mut plain).unwrap();
        Vm::new(&p, VmConfig::default())
            .run(&mut organized)
            .unwrap();
        assert_eq!(plain.samples_taken(), organized.samples_taken());
        assert_eq!(
            plain.dcg().total_weight(),
            organized.take_dcg().total_weight()
        );
    }
}
