//! # cbs-profiler
//!
//! The call-graph profiling mechanisms of the Arnold–Grove CGO'05
//! reproduction: the paper's contribution and every baseline it is
//! evaluated against.
//!
//! | Type | Paper section | Mechanism |
//! |------|--------------|-----------|
//! | [`CounterBasedSampler`] | §4 | **The contribution**: timer-opened windows, every `stride`-th invocation sampled, `samples_per_tick` samples per window |
//! | [`TimerSampler`] | §3.3 | Jikes RVM default: one sample at the first yieldpoint after each tick |
//! | [`PcSampler`] | §3.3 | Whaley-style asynchronous stack observation |
//! | [`ExhaustiveProfiler`] | §3.1 | Perfect counts (ground truth), or costed "PIC counter" instrumentation |
//! | [`CodePatchingProfiler`] | §3.2 | Suganuma-style warmup-then-burst listeners |
//! | [`MultiProfiler`] | harness | Attach a whole configuration grid to one run |
//!
//! All profilers implement [`CallGraphProfiler`]: they accumulate a
//! [`DynamicCallGraph`](cbs_dcg::DynamicCallGraph) and account for their
//! own simulated overhead in [`ProfilingCosts`] millicycles, so overhead
//! percentages are exact and independent per profiler.
//!
//! ## Example
//!
//! ```
//! use cbs_bytecode::ProgramBuilder;
//! use cbs_profiler::{CallGraphProfiler, CbsConfig, CounterBasedSampler};
//! use cbs_vm::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let cls = b.add_class("C", 0);
//! let f = b.function("f", cls, 0, 0, |c| { c.const_(1).ret(); })?;
//! let main = b.function("main", cls, 0, 1, |c| {
//!     c.counted_loop(0, 200_000, |c| { c.call(f).pop(); });
//!     c.const_(0).ret();
//! })?;
//! b.set_entry(main);
//! let program = b.build()?;
//!
//! let mut cbs = CounterBasedSampler::new(CbsConfig::new(3, 16));
//! let report = Vm::new(&program, VmConfig::default()).run(&mut cbs)?;
//! assert!(cbs.samples_taken() > 0);
//! let overhead_pct = 100.0 * cbs.overhead_cycles() as f64 / report.cycles as f64;
//! assert!(overhead_pct < 1.0, "CBS stays under 1% overhead");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cbs;
mod costs;
mod exhaustive;
mod hardware;
pub mod metrics;
mod multi;
mod organizer;
mod patching;
mod pc;
mod timer;
mod tracer;
mod traits;

pub use cbs::{CbsConfig, CounterBasedSampler, SkipPolicy};
pub use costs::{OverheadMeter, ProfilingCosts};
pub use exhaustive::{ExhaustiveCctProfiler, ExhaustiveMode, ExhaustiveProfiler};
pub use hardware::{HardwareConfig, HardwareSampler};
pub use metrics::CbsMetrics;
pub use multi::MultiProfiler;
pub use organizer::{DcgOrganizer, OrganizedSampler, SampleBuffer};
pub use patching::{CodePatchingProfiler, PatchingConfig};
pub use pc::PcSampler;
pub use timer::TimerSampler;
pub use tracer::{CallTreeTracer, MethodTime};
pub use traits::CallGraphProfiler;
