//! Exhaustive call-edge profiling (§3.1).
//!
//! Counts every dynamic call. Two modes:
//!
//! * [`ExhaustiveMode::GroundTruth`] — the *perfect profile* the accuracy
//!   metric compares against. As a measurement artifact it charges no
//!   simulated overhead (the experimental harness uses it to know the true
//!   DCG, the way the paper's offline exhaustive runs do).
//! * [`ExhaustiveMode::Instrumented`] — models making exhaustive counting
//!   an *online* mechanism by instrumenting dispatch sites with counters,
//!   as the Vortex compiler did to Self-style PICs; every call charges an
//!   update, reproducing the reported 15–50% slowdowns.

use crate::costs::{OverheadMeter, ProfilingCosts};
use crate::traits::CallGraphProfiler;
use cbs_dcg::DynamicCallGraph;
use cbs_vm::{CallEvent, Profiler};

/// Whether exhaustive counting is a free measurement or a costed online
/// mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExhaustiveMode {
    /// Perfect profile, no simulated cost (measurement artifact).
    #[default]
    GroundTruth,
    /// Online instrumentation: each call charges a counter update.
    Instrumented,
}

/// The exhaustive profiler.
#[derive(Debug, Default)]
pub struct ExhaustiveProfiler {
    mode: ExhaustiveMode,
    costs: ProfilingCosts,
    dcg: DynamicCallGraph,
    meter: OverheadMeter,
}

impl ExhaustiveProfiler {
    /// Creates a ground-truth profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a profiler in the given mode with explicit costs.
    pub fn with_mode(mode: ExhaustiveMode, costs: ProfilingCosts) -> Self {
        Self {
            mode,
            costs,
            ..Self::default()
        }
    }

    /// The mode.
    pub fn mode(&self) -> ExhaustiveMode {
        self.mode
    }
}

impl Profiler for ExhaustiveProfiler {
    fn on_entry(&mut self, event: &CallEvent<'_>) {
        if self.mode == ExhaustiveMode::Instrumented {
            self.meter.charge(self.costs.instrument_millicycles);
        }
        self.dcg.record_sample(event.edge);
    }
}

impl CallGraphProfiler for ExhaustiveProfiler {
    fn name(&self) -> String {
        match self.mode {
            ExhaustiveMode::GroundTruth => "exhaustive".to_owned(),
            ExhaustiveMode::Instrumented => "pic-counters".to_owned(),
        }
    }

    fn dcg(&self) -> &DynamicCallGraph {
        &self.dcg
    }

    fn take_dcg(&mut self) -> DynamicCallGraph {
        std::mem::take(&mut self.dcg)
    }

    fn overhead_cycles(&self) -> u64 {
        self.meter.cycles()
    }

    fn samples_taken(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId};
    use cbs_dcg::CallEdge;
    use cbs_vm::{Frame, StackSlice, ThreadId};

    fn ev<'a>(frames: &'a [Frame], callee: u32) -> CallEvent<'a> {
        CallEvent {
            edge: CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(callee)),
            clock: 0,
            thread: ThreadId(0),
            stack: StackSlice::for_testing(frames),
        }
    }

    #[test]
    fn counts_every_call_exactly() {
        let mut p = ExhaustiveProfiler::new();
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        for _ in 0..7 {
            p.on_entry(&ev(&frames, 1));
        }
        for _ in 0..3 {
            p.on_entry(&ev(&frames, 2));
        }
        assert_eq!(p.dcg().total_weight(), 10.0);
        assert_eq!(p.overhead_cycles(), 0, "ground truth is free");
    }

    #[test]
    fn instrumented_mode_charges_per_call() {
        let costs = ProfilingCosts::default();
        let per_call = costs.instrument_millicycles;
        let mut p = ExhaustiveProfiler::with_mode(ExhaustiveMode::Instrumented, costs);
        let frames = vec![Frame::new(MethodId::new(0), 0)];
        for _ in 0..1000 {
            p.on_entry(&ev(&frames, 1));
        }
        assert_eq!(p.overhead_cycles(), 1000 * per_call / 1000);
        assert_eq!(p.name(), "pic-counters");
    }
}

/// Ground-truth *context-sensitive* profiling: records the full calling
/// context of every dynamic call into a [`CallingContextTree`].
///
/// Used as the reference the context-sensitive CBS extension is scored
/// against. Like [`ExhaustiveProfiler`], it is a measurement artifact and
/// charges no simulated overhead.
///
/// [`CallingContextTree`]: cbs_dcg::CallingContextTree
#[derive(Debug, Default)]
pub struct ExhaustiveCctProfiler {
    cct: cbs_dcg::CallingContextTree,
    calls: u64,
}

impl ExhaustiveCctProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The complete context tree.
    pub fn cct(&self) -> &cbs_dcg::CallingContextTree {
        &self.cct
    }

    /// Consumes the tree.
    pub fn take_cct(&mut self) -> cbs_dcg::CallingContextTree {
        std::mem::take(&mut self.cct)
    }

    /// Dynamic calls recorded.
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl Profiler for ExhaustiveCctProfiler {
    fn on_entry(&mut self, event: &CallEvent<'_>) {
        self.calls += 1;
        self.cct.add_sample_iter(event.stack.context_steps());
    }
}

#[cfg(test)]
mod cct_tests {
    use super::*;
    use cbs_bytecode::ProgramBuilder;
    use cbs_vm::{Vm, VmConfig};

    #[test]
    fn exhaustive_cct_counts_every_call_in_context() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let g = b
            .function("g", cls, 0, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.call(g).ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 1, |c| {
                c.counted_loop(0, 10, |c| {
                    c.call(f).pop();
                });
                c.call(g).ret();
            })
            .unwrap();
        b.set_entry(main);
        let p = b.build().unwrap();
        let mut prof = ExhaustiveCctProfiler::new();
        Vm::new(&p, VmConfig::default()).run(&mut prof).unwrap();
        assert_eq!(prof.calls(), 21, "10×(f+g) + 1 direct g");
        // Contexts: main->f (10), main->f->g (10), main->g (1).
        assert_eq!(prof.cct().total_weight(), 21.0);
        assert_eq!(prof.cct().max_depth(), 3);
        let _ = (f, g, main);
    }
}
