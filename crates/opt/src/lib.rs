//! # cbs-opt
//!
//! Basic-block optimizer passes for the Arnold–Grove CGO'05 reproduction.
//!
//! Inlining pays off in two ways: it removes call/dispatch overhead
//! directly, and it enlarges the scope of downstream optimizations. This
//! crate provides those downstream optimizations — [`ConstantFolding`],
//! [`Peephole`], [`DeadStoreElimination`], [`NopElimination`] — run to a
//! fixpoint by [`Optimizer`]. The argument-marshalling code the inliner
//! splices in (`store L; load L; …`) genuinely disappears under these
//! passes, so measured inlining speedups are computed, not asserted.
//!
//! ## Example
//!
//! ```
//! use cbs_bytecode::{Op, ProgramBuilder};
//! use cbs_opt::Optimizer;
//!
//! # fn main() -> Result<(), cbs_bytecode::BuildError> {
//! let mut b = ProgramBuilder::new();
//! let cls = b.add_class("C", 0);
//! let main = b.function("main", cls, 0, 0, |c| {
//!     c.const_(6).const_(7).mul().ret();
//! })?;
//! b.set_entry(main);
//! let mut program = b.build()?;
//!
//! Optimizer::new().optimize_method(&mut program, main);
//! assert_eq!(program.method(main).code(), &[Op::Const(42), Op::Return]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cfg;
mod editor;
mod flow;
mod liveness;
mod passes;
mod pipeline;

pub use cfg::{BasicBlock, BlockId, ControlFlowGraph};
pub use editor::CodeEditor;
pub use flow::{JumpThreading, UnreachableCodeElimination};
pub use liveness::LivenessDse;
pub use passes::{ConstantFolding, DeadStoreElimination, NopElimination, Pass, Peephole};
pub use pipeline::{OptStats, Optimizer};
