//! Control-flow passes: jump threading and unreachable-code elimination.
//!
//! Inlining leaves chains of jumps behind (every inlined `return` becomes
//! a jump to the join point, and guard chains jump over one another);
//! these passes clean them up, which both shrinks code and removes real
//! simulated branch cycles.

use crate::editor::CodeEditor;
use crate::passes::Pass;
use cbs_bytecode::Op;

/// Retargets jumps whose destination is itself an unconditional jump.
#[derive(Debug, Clone, Copy, Default)]
pub struct JumpThreading;

impl JumpThreading {
    /// Follows a chain of unconditional jumps from `target`, returning
    /// the final destination. Bounded by the code length so cycles
    /// (`jump @self`) terminate.
    fn resolve(code_at: impl Fn(usize) -> Option<Op>, mut target: u32, len: usize) -> u32 {
        for _ in 0..len {
            match code_at(target as usize) {
                Some(Op::Jump(next)) if next != target => target = next,
                _ => break,
            }
        }
        target
    }
}

impl Pass for JumpThreading {
    fn name(&self) -> &'static str {
        "jump-threading"
    }

    fn apply(&self, editor: &mut CodeEditor) -> usize {
        let len = editor.len();
        let snapshot: Vec<Option<Op>> = (0..len).map(|pc| editor.op(pc).copied()).collect();
        let mut rewrites = 0;
        for pc in 0..len {
            let Some(op) = editor.op(pc).copied() else {
                continue;
            };
            if let Some(t) = op.jump_target() {
                let resolved = Self::resolve(|i| snapshot.get(i).copied().flatten(), t, len);
                if resolved != t {
                    editor.replace(pc, op.with_jump_target(resolved));
                    rewrites += 1;
                }
            }
        }
        rewrites
    }
}

/// Removes instructions no control-flow path can reach.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnreachableCodeElimination;

impl Pass for UnreachableCodeElimination {
    fn name(&self) -> &'static str {
        "unreachable-code-elimination"
    }

    fn apply(&self, editor: &mut CodeEditor) -> usize {
        let len = editor.len();
        if len == 0 {
            return 0;
        }
        let mut reachable = vec![false; len];
        let mut worklist = vec![0u32];
        while let Some(pc) = worklist.pop() {
            let idx = pc as usize;
            if idx >= len || reachable[idx] {
                continue;
            }
            reachable[idx] = true;
            let Some(op) = editor.op(idx) else { continue };
            if op.falls_through() {
                worklist.push(pc + 1);
            }
            if let Some(t) = op.jump_target() {
                worklist.push(t);
            }
        }
        let mut rewrites = 0;
        for (pc, seen) in reachable.iter().enumerate() {
            if !seen && editor.op(pc).is_some() {
                editor.remove(pc);
                rewrites += 1;
            }
        }
        rewrites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pass: &dyn Pass, code: Vec<Op>) -> Vec<Op> {
        let mut e = CodeEditor::new(&code);
        pass.apply(&mut e);
        e.finish()
    }

    #[test]
    fn threads_jump_chains() {
        // 0: jump @2 ; 1: return ; 2: jump @4 ; 3: return ; 4: const; 5: return
        let out = run(
            &JumpThreading,
            vec![
                Op::Jump(2),
                Op::Return,
                Op::Jump(4),
                Op::Return,
                Op::Const(1),
                Op::Return,
            ],
        );
        assert_eq!(out[0], Op::Jump(4), "chain 0->2->4 must collapse");
    }

    #[test]
    fn threads_conditional_through_unconditional() {
        let out = run(
            &JumpThreading,
            vec![
                Op::Const(1),
                Op::JumpIfZero(3),
                Op::Return,
                Op::Jump(5),
                Op::Nop,
                Op::Const(2),
                Op::Return,
            ],
        );
        assert_eq!(out[1], Op::JumpIfZero(5));
    }

    #[test]
    fn self_jump_terminates() {
        // Degenerate `jump @self` (an intentional infinite loop) must not
        // hang the pass.
        let code = vec![Op::Jump(0)];
        let out = run(&JumpThreading, code.clone());
        assert_eq!(out, code);
    }

    #[test]
    fn removes_unreachable_block() {
        // 0: jump @3 ; 1: const(dead) ; 2: pop(dead) ; 3: const ; 4: ret
        let out = run(
            &UnreachableCodeElimination,
            vec![Op::Jump(3), Op::Const(9), Op::Pop, Op::Const(1), Op::Return],
        );
        assert_eq!(out, vec![Op::Jump(1), Op::Const(1), Op::Return]);
    }

    #[test]
    fn keeps_code_reached_only_by_jumps() {
        // 0: jz @3 ; 1: const ; 2: return ; 3: const ; 4: return — all
        // reachable.
        let code = vec![
            Op::Const(0),
            Op::JumpIfZero(4),
            Op::Const(1),
            Op::Return,
            Op::Const(2),
            Op::Return,
        ];
        let out = run(&UnreachableCodeElimination, code.clone());
        assert_eq!(out, code);
    }

    #[test]
    fn code_after_return_is_removed() {
        let out = run(
            &UnreachableCodeElimination,
            vec![Op::Const(1), Op::Return, Op::Nop, Op::Nop],
        );
        assert_eq!(out, vec![Op::Const(1), Op::Return]);
    }
}
