//! The pass pipeline.

use crate::editor::CodeEditor;
use crate::flow::{JumpThreading, UnreachableCodeElimination};
use crate::liveness::LivenessDse;
use crate::passes::{ConstantFolding, DeadStoreElimination, NopElimination, Pass, Peephole};
use cbs_bytecode::{verify, MethodId, Program};
use std::collections::BTreeMap;

/// Statistics from an optimization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Rewrites applied per pass name.
    pub rewrites_by_pass: BTreeMap<&'static str, usize>,
    /// Fixpoint iterations performed.
    pub iterations: usize,
}

impl OptStats {
    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> usize {
        self.rewrites_by_pass.values().sum()
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &OptStats) {
        for (name, n) in &other.rewrites_by_pass {
            *self.rewrites_by_pass.entry(name).or_insert(0) += n;
        }
        self.iterations = self.iterations.max(other.iterations);
    }
}

/// A fixpoint pass pipeline over method bodies.
///
/// The default pipeline runs constant folding, peephole simplification,
/// dead-store elimination and nop removal until nothing changes (bounded
/// by an iteration cap).
#[derive(Debug)]
pub struct Optimizer {
    passes: Vec<Box<dyn Pass>>,
    max_iterations: usize,
}

impl Default for Optimizer {
    fn default() -> Self {
        Self {
            passes: vec![
                Box::new(ConstantFolding),
                Box::new(Peephole),
                Box::new(JumpThreading),
                Box::new(UnreachableCodeElimination),
                Box::new(DeadStoreElimination),
                Box::new(LivenessDse),
                Box::new(NopElimination),
            ],
            max_iterations: 16,
        }
    }
}

impl Optimizer {
    /// Creates the default pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline with an explicit pass list.
    pub fn with_passes(passes: Vec<Box<dyn Pass>>) -> Self {
        Self {
            passes,
            max_iterations: 16,
        }
    }

    /// Optimizes one method in place, re-verifying it afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a pass produced unverifiable code — that is a bug in the
    /// pass, never in the input.
    pub fn optimize_method(&self, program: &mut Program, id: MethodId) -> OptStats {
        let mut stats = OptStats::default();
        for iteration in 1..=self.max_iterations {
            stats.iterations = iteration;
            let mut changed = false;
            for pass in &self.passes {
                let mut editor = CodeEditor::new(program.method(id).code());
                let n = pass.apply(&mut editor);
                if editor.changed() {
                    changed = true;
                    *stats.rewrites_by_pass.entry(pass.name()).or_insert(0) += n;
                    program.replace_method(id, editor.finish());
                }
            }
            if !changed {
                break;
            }
        }
        if let Err(e) = verify::verify_method(program, id) {
            panic!("optimizer produced unverifiable code for {id}: {e}");
        }
        stats
    }

    /// Optimizes every method of the program.
    pub fn optimize_program(&self, program: &mut Program) -> OptStats {
        let mut stats = OptStats::default();
        for i in 0..program.num_methods() {
            let s = self.optimize_method(program, MethodId::new(i as u32));
            stats.merge(&s);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{Op, ProgramBuilder};

    fn one_method_program(
        build: impl FnOnce(&mut cbs_bytecode::CodeBuilder<'_>),
    ) -> (Program, MethodId) {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 1);
        let main = b.function("main", cls, 0, 4, build).unwrap();
        b.set_entry(main);
        (b.build().unwrap(), main)
    }

    #[test]
    fn pipeline_reaches_fixpoint_on_getter_pattern() {
        // The shape the inliner produces for an inlined trivial getter:
        //   new C; store L; load L; getfield 0; return
        // must collapse to: new C; getfield 0; return
        let (mut p, main) = one_method_program(|c| {
            c.new_object(cbs_bytecode::ClassId::new(0))
                .store(1)
                .load(1)
                .get_field(0)
                .ret();
        });
        let stats = Optimizer::new().optimize_method(&mut p, main);
        assert!(stats.total_rewrites() >= 2, "stats: {stats:?}");
        assert_eq!(
            p.method(main).code(),
            &[
                Op::New(cbs_bytecode::ClassId::new(0)),
                Op::GetField(0),
                Op::Return
            ]
        );
    }

    #[test]
    fn cascading_folds() {
        // ((2+3)*4) == 20 folds to a single constant.
        let (mut p, main) = one_method_program(|c| {
            c.const_(2).const_(3).add().const_(4).mul().ret();
        });
        Optimizer::new().optimize_method(&mut p, main);
        assert_eq!(p.method(main).code(), &[Op::Const(20), Op::Return]);
    }

    #[test]
    fn loops_are_preserved() {
        let (mut p, main) = one_method_program(|c| {
            c.counted_loop(0, 10, |c| {
                c.load(1).const_(1).add().store(1);
            });
            c.load(1).ret();
        });
        let before: Vec<Op> = p.method(main).code().to_vec();
        Optimizer::new().optimize_method(&mut p, main);
        // The loop body is already minimal; semantics must be unchanged.
        let after = p.method(main).code();
        assert!(after.len() <= before.len());
        // Execution still yields 10 (checked in integration tests with a
        // VM; here we just re-verify structure).
        assert!(after.iter().any(|op| matches!(op, Op::Jump(_))));
    }

    #[test]
    fn optimize_program_covers_all_methods() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", 0);
        let f = b
            .function("f", cls, 0, 0, |c| {
                c.const_(1).const_(2).add().ret();
            })
            .unwrap();
        let main = b
            .function("main", cls, 0, 0, |c| {
                c.const_(3).const_(4).add().pop().call(f).ret();
            })
            .unwrap();
        b.set_entry(main);
        let mut p = b.build().unwrap();
        let stats = Optimizer::new().optimize_program(&mut p);
        assert_eq!(p.method(f).code(), &[Op::Const(3), Op::Return]);
        assert!(stats.total_rewrites() >= 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = OptStats::default();
        a.rewrites_by_pass.insert("peephole", 2);
        a.iterations = 1;
        let mut b = OptStats::default();
        b.rewrites_by_pass.insert("peephole", 3);
        b.rewrites_by_pass.insert("constant-folding", 1);
        b.iterations = 4;
        a.merge(&b);
        assert_eq!(a.rewrites_by_pass["peephole"], 5);
        assert_eq!(a.total_rewrites(), 6);
        assert_eq!(a.iterations, 4);
    }
}
