//! Liveness-based dead-store elimination.
//!
//! The peephole-level [`DeadStoreElimination`](crate::DeadStoreElimination)
//! only removes stores to slots that are *never* loaded anywhere in the
//! method. This pass runs a classic backward liveness dataflow over the
//! [`ControlFlowGraph`]: a store is dead if its slot is not live-out at
//! that program point (every path re-stores before any load). Inlined
//! bodies produce exactly this shape — the argument spill slots are
//! overwritten by the next inlined call's spills.

use crate::cfg::ControlFlowGraph;
use crate::editor::CodeEditor;
use crate::passes::Pass;
use cbs_bytecode::Op;
use std::collections::HashSet;

/// Liveness-driven dead-store elimination.
#[derive(Debug, Clone, Copy, Default)]
pub struct LivenessDse;

/// Per-block `use`/`def` sets for local slots.
fn use_def(code: &[Op], range: std::ops::Range<usize>) -> (HashSet<u16>, HashSet<u16>) {
    let mut uses = HashSet::new();
    let mut defs = HashSet::new();
    for op in &code[range] {
        match *op {
            Op::Load(x) if !defs.contains(&x) => {
                uses.insert(x);
            }
            Op::Store(x) => {
                defs.insert(x);
            }
            _ => {}
        }
    }
    (uses, defs)
}

impl Pass for LivenessDse {
    fn name(&self) -> &'static str {
        "liveness-dse"
    }

    fn apply(&self, editor: &mut CodeEditor) -> usize {
        let code: Vec<Op> = (0..editor.len())
            .filter_map(|pc| editor.op(pc).copied())
            .collect();
        if code.len() != editor.len() {
            // A previous pass left removals pending; run after compaction.
            return 0;
        }
        let cfg = ControlFlowGraph::build(&code);
        if cfg.is_empty() {
            return 0;
        }

        let n = cfg.len();
        let sets: Vec<(HashSet<u16>, HashSet<u16>)> = cfg
            .blocks()
            .iter()
            .map(|b| use_def(&code, b.range()))
            .collect();

        // Backward fixpoint: live_in = use ∪ (live_out − def);
        // live_out = ∪ successors' live_in.
        let mut live_in: Vec<HashSet<u16>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<u16>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = HashSet::new();
                for &s in &cfg.blocks()[i].successors {
                    out.extend(live_in[s].iter().copied());
                }
                let (uses, defs) = &sets[i];
                let mut inp: HashSet<u16> = uses.clone();
                inp.extend(out.difference(defs).copied());
                if inp != live_in[i] || out != live_out[i] {
                    live_in[i] = inp;
                    live_out[i] = out;
                    changed = true;
                }
            }
        }

        // Walk each block backwards tracking liveness per instruction;
        // a store to a non-live slot becomes a pop.
        let mut rewrites = 0;
        for (i, block) in cfg.blocks().iter().enumerate() {
            let mut live = live_out[i].clone();
            for pc in block.range().rev() {
                match code[pc] {
                    Op::Store(x) => {
                        if live.contains(&x) {
                            live.remove(&x);
                        } else {
                            editor.replace(pc, Op::Pop);
                            rewrites += 1;
                        }
                    }
                    Op::Load(x) => {
                        live.insert(x);
                    }
                    _ => {}
                }
            }
        }
        rewrites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(code: Vec<Op>) -> Vec<Op> {
        let mut e = CodeEditor::new(&code);
        LivenessDse.apply(&mut e);
        e.finish()
    }

    #[test]
    fn overwritten_store_is_dead() {
        // store 0 is immediately overwritten before any load.
        let code = vec![
            Op::Const(1),
            Op::Store(0),
            Op::Const(2),
            Op::Store(0),
            Op::Load(0),
            Op::Return,
        ];
        let out = run(code);
        assert_eq!(out[1], Op::Pop, "first store is dead");
        assert_eq!(out[3], Op::Store(0), "second store is live");
    }

    #[test]
    fn store_live_across_branch_survives() {
        // store 0 at pc1 is read on one arm only — still live.
        let code = vec![
            Op::Const(1),
            Op::Store(0),
            Op::Const(0),
            Op::JumpIfZero(5),
            Op::Return, // (arm A: returns the const... simplified)
            Op::Load(0),
            Op::Return,
        ];
        // Fix stack depths: arm A needs a value. Use a simpler shape:
        let code2 = vec![
            Op::Const(1),
            Op::Store(0),
            Op::Const(7),
            Op::JumpIfZero(6),
            Op::Const(9),
            Op::Return,
            Op::Load(0),
            Op::Return,
        ];
        let _ = code;
        let out = run(code2.clone());
        assert_eq!(out, code2, "store read on the else arm must survive");
    }

    #[test]
    fn store_dead_on_all_paths_removed() {
        // Both arms overwrite slot 0 before loading it.
        let code = vec![
            Op::Const(1),
            Op::Store(0), // dead: both arms re-store
            Op::Const(7),
            Op::JumpIfZero(7),
            Op::Const(2),
            Op::Store(0),
            Op::Jump(9),
            Op::Const(3),
            Op::Store(0),
            Op::Load(0),
            Op::Return,
        ];
        let out = run(code);
        assert_eq!(out[1], Op::Pop);
        assert_eq!(out[5], Op::Store(0));
        assert_eq!(out[8], Op::Store(0));
    }

    #[test]
    fn loop_carried_liveness_is_respected() {
        // slot 1 is accumulated across iterations: the store feeds the
        // next iteration's load through the backedge.
        let code = vec![
            Op::Const(3),
            Op::Store(0),
            // head: (2)
            Op::Load(0),
            Op::JumpIfZero(13),
            Op::Load(1),
            Op::Const(1),
            Op::Add,
            Op::Store(1), // must survive: read next iteration
            Op::Load(0),
            Op::Const(1),
            Op::Sub,
            Op::Store(0), // must survive: read through the backedge
            Op::Jump(2),
            // exit: (13)
            Op::Load(1),
            Op::Return,
        ];
        let out = run(code.clone());
        assert_eq!(out, code, "loop-carried stores must all survive");
    }

    #[test]
    fn final_store_with_no_later_load_is_dead() {
        let code = vec![Op::Const(1), Op::Store(3), Op::Const(0), Op::Return];
        let out = run(code);
        assert_eq!(out[1], Op::Pop);
    }
}
