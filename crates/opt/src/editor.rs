//! Safe in-place code editing with jump-target maintenance.
//!
//! Optimizer passes mark instructions as removed or replace them; the
//! editor tracks which instruction indices are jump targets (multi-
//! instruction rewrites must not span a join point) and, when the edit is
//! finished, compacts the code and remaps every jump target to the first
//! surviving instruction at or after its old position.

use cbs_bytecode::Op;

/// An editable view of one method body.
#[derive(Debug)]
pub struct CodeEditor {
    ops: Vec<Op>,
    removed: Vec<bool>,
    is_target: Vec<bool>,
    changed: bool,
}

impl CodeEditor {
    /// Creates an editor over a method body.
    pub fn new(code: &[Op]) -> Self {
        let mut is_target = vec![false; code.len()];
        for op in code {
            if let Some(t) = op.jump_target() {
                if let Some(flag) = is_target.get_mut(t as usize) {
                    *flag = true;
                }
            }
        }
        Self {
            ops: code.to_vec(),
            removed: vec![false; code.len()],
            is_target,
            changed: false,
        }
    }

    /// Number of instructions (including removed ones).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for the empty body.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The instruction at `pc`, or `None` if it was removed.
    pub fn op(&self, pc: usize) -> Option<&Op> {
        if *self.removed.get(pc)? {
            None
        } else {
            self.ops.get(pc)
        }
    }

    /// Returns `true` if some jump targets instruction `pc`.
    ///
    /// A rewrite that fuses `pc` with its predecessor is only safe when
    /// `pc` is *not* a target (a jumping path would otherwise skip part of
    /// the fused semantics).
    pub fn is_target(&self, pc: usize) -> bool {
        self.is_target.get(pc).copied().unwrap_or(false)
    }

    /// Marks `pc` removed. No-op if already removed.
    pub fn remove(&mut self, pc: usize) {
        if !self.removed[pc] {
            self.removed[pc] = true;
            self.changed = true;
        }
    }

    /// Replaces the instruction at `pc`.
    ///
    /// The replacement must have the same net stack effect along every
    /// path — passes are responsible for that invariant; the pipeline
    /// re-verifies after each pass in debug builds.
    pub fn replace(&mut self, pc: usize, op: Op) {
        if self.ops[pc] != op {
            self.ops[pc] = op;
            self.changed = true;
        }
    }

    /// Whether any edit was made.
    pub fn changed(&self) -> bool {
        self.changed
    }

    /// Compacts the code, dropping removed instructions and remapping
    /// every jump target to the first surviving instruction at or after
    /// its old position.
    pub fn finish(self) -> Vec<Op> {
        // new_index[old] = index in the compacted code of the first
        // surviving instruction with position >= old.
        let mut new_index = vec![0u32; self.ops.len() + 1];
        let mut count = 0u32;
        for (slot, removed) in new_index.iter_mut().zip(&self.removed) {
            *slot = count;
            if !removed {
                count += 1;
            }
        }
        new_index[self.ops.len()] = count;

        self.ops
            .into_iter()
            .zip(self.removed)
            .filter(|(_, removed)| !removed)
            .map(|(op, _)| match op.jump_target() {
                Some(t) => op.with_jump_target(new_index[t as usize]),
                None => op,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let code = vec![Op::Const(1), Op::JumpIfZero(0), Op::Return];
        let e = CodeEditor::new(&code);
        assert!(!e.changed());
        assert_eq!(e.finish(), code);
    }

    #[test]
    fn removal_remaps_forward_jumps() {
        // 0: jump @3 ; 1: nop(removed) ; 2: nop ; 3: return
        let code = vec![Op::Jump(3), Op::Nop, Op::Nop, Op::Return];
        let mut e = CodeEditor::new(&code);
        e.remove(1);
        let out = e.finish();
        assert_eq!(out, vec![Op::Jump(2), Op::Nop, Op::Return]);
    }

    #[test]
    fn removing_a_target_retargets_to_next_survivor() {
        // 0: jump @2 ; 1: const ; 2: nop(removed, target) ; 3: return
        let code = vec![Op::Jump(2), Op::Const(1), Op::Nop, Op::Return];
        let mut e = CodeEditor::new(&code);
        assert!(e.is_target(2));
        e.remove(2);
        let out = e.finish();
        assert_eq!(out, vec![Op::Jump(2), Op::Const(1), Op::Return]);
    }

    #[test]
    fn backedge_targets_remap() {
        // 0: nop(removed) ; 1: const ; 2: jnz @0
        let code = vec![Op::Nop, Op::Const(1), Op::JumpIfNonZero(0)];
        let mut e = CodeEditor::new(&code);
        e.remove(0);
        let out = e.finish();
        assert_eq!(out, vec![Op::Const(1), Op::JumpIfNonZero(0)]);
    }

    #[test]
    fn replace_marks_changed_only_on_difference() {
        let code = vec![Op::Nop, Op::Return];
        let mut e = CodeEditor::new(&code);
        e.replace(0, Op::Nop);
        assert!(!e.changed(), "identical replacement is not a change");
        e.replace(0, Op::Pop);
        assert!(e.changed());
        assert_eq!(e.op(0), Some(&Op::Pop));
    }

    #[test]
    fn op_returns_none_for_removed() {
        let code = vec![Op::Nop, Op::Return];
        let mut e = CodeEditor::new(&code);
        e.remove(0);
        assert_eq!(e.op(0), None);
        assert_eq!(e.op(1), Some(&Op::Return));
        assert_eq!(e.op(9), None);
    }
}
