//! The optimizer passes.
//!
//! Each pass performs one linear scan, applying non-overlapping local
//! rewrites; the [`Optimizer`](crate::Optimizer) pipeline runs passes to a
//! fixpoint. Multi-instruction rewrites are applied only when their
//! interior instructions are not jump targets, so every control-flow path
//! observes the same semantics.
//!
//! These are precisely the "downstream optimizations" whose scope inlining
//! enlarges: a trivial getter inlined as `store L; load L; getfield F`
//! collapses to a bare `getfield F` under peephole + dead-store
//! elimination, which is where the indirect benefit of the paper's
//! profile-directed inlining comes from.

use crate::editor::CodeEditor;
use cbs_bytecode::Op;
use std::collections::HashSet;
use std::fmt;

/// A rewriting pass over one method body.
pub trait Pass: fmt::Debug {
    /// Stable pass name for statistics.
    fn name(&self) -> &'static str;

    /// Applies the pass, returning the number of rewrites performed.
    fn apply(&self, editor: &mut CodeEditor) -> usize;
}

/// Evaluates operations whose operands are constants.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFolding;

impl ConstantFolding {
    fn fold_binop(op: &Op, a: i64, b: i64) -> Option<i64> {
        Some(match op {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::Div if b != 0 => a.wrapping_div(b),
            Op::Rem if b != 0 => a.wrapping_rem(b),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Shl => a.wrapping_shl(b as u32 & 63),
            Op::Shr => a.wrapping_shr(b as u32 & 63),
            Op::CmpEq => i64::from(a == b),
            Op::CmpLt => i64::from(a < b),
            Op::CmpGt => i64::from(a > b),
            _ => return None,
        })
    }
}

impl Pass for ConstantFolding {
    fn name(&self) -> &'static str {
        "constant-folding"
    }

    fn apply(&self, editor: &mut CodeEditor) -> usize {
        let mut rewrites = 0;
        let mut pc = 0;
        while pc < editor.len() {
            // [const a, const b, binop] => [const (a op b)]
            if pc + 2 < editor.len() && !editor.is_target(pc + 1) && !editor.is_target(pc + 2) {
                if let (Some(&Op::Const(a)), Some(&Op::Const(b)), Some(op)) =
                    (editor.op(pc), editor.op(pc + 1), editor.op(pc + 2))
                {
                    if let Some(v) = Self::fold_binop(op, a, b) {
                        editor.replace(pc, Op::Const(v));
                        editor.remove(pc + 1);
                        editor.remove(pc + 2);
                        rewrites += 1;
                        pc += 3;
                        continue;
                    }
                }
            }
            if pc + 1 < editor.len() && !editor.is_target(pc + 1) {
                match (editor.op(pc), editor.op(pc + 1)) {
                    // [const a, neg] => [const -a]
                    (Some(&Op::Const(a)), Some(&Op::Neg)) => {
                        editor.replace(pc, Op::Const(a.wrapping_neg()));
                        editor.remove(pc + 1);
                        rewrites += 1;
                        pc += 2;
                        continue;
                    }
                    // [const c, jz/jnz t] => unconditional or fallthrough
                    (Some(&Op::Const(c)), Some(&Op::JumpIfZero(t))) => {
                        if c == 0 {
                            editor.remove(pc);
                            editor.replace(pc + 1, Op::Jump(t));
                        } else {
                            editor.remove(pc);
                            editor.remove(pc + 1);
                        }
                        rewrites += 1;
                        pc += 2;
                        continue;
                    }
                    (Some(&Op::Const(c)), Some(&Op::JumpIfNonZero(t))) => {
                        if c != 0 {
                            editor.remove(pc);
                            editor.replace(pc + 1, Op::Jump(t));
                        } else {
                            editor.remove(pc);
                            editor.remove(pc + 1);
                        }
                        rewrites += 1;
                        pc += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            pc += 1;
        }
        rewrites
    }
}

/// Local stack-pattern simplifications.
#[derive(Debug, Clone, Copy, Default)]
pub struct Peephole;

impl Pass for Peephole {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn apply(&self, editor: &mut CodeEditor) -> usize {
        let mut rewrites = 0;
        let mut pc = 0;
        while pc < editor.len() {
            // Single-instruction rewrites: (conditional) jump to the
            // immediately following instruction. These do not need the
            // join-point check — the jump itself is what made pc+1 a
            // target.
            match editor.op(pc) {
                Some(&Op::Jump(t)) if t as usize == pc + 1 => {
                    editor.remove(pc);
                    rewrites += 1;
                    pc += 1;
                    continue;
                }
                Some(&Op::JumpIfZero(t)) | Some(&Op::JumpIfNonZero(t)) if t as usize == pc + 1 => {
                    // Only the pop of the condition remains.
                    editor.replace(pc, Op::Pop);
                    rewrites += 1;
                    pc += 1;
                    continue;
                }
                _ => {}
            }
            if pc + 1 < editor.len() && !editor.is_target(pc + 1) {
                let rewrite = match (editor.op(pc), editor.op(pc + 1)) {
                    // Value produced then immediately discarded.
                    (Some(Op::Dup | Op::Const(_) | Op::Load(_)), Some(Op::Pop)) => Some(None),
                    // Self-inverse pairs.
                    (Some(Op::Swap), Some(Op::Swap)) | (Some(Op::Neg), Some(Op::Neg)) => Some(None),
                    // Algebraic identities.
                    (Some(&Op::Const(0)), Some(Op::Add | Op::Sub | Op::Or | Op::Xor)) => Some(None),
                    (Some(&Op::Const(1)), Some(Op::Mul | Op::Div)) => Some(None),
                    (Some(&Op::Const(0)), Some(Op::Shl | Op::Shr)) => Some(None),
                    // Round-trip through a local.
                    (Some(&Op::Load(x)), Some(&Op::Store(y))) if x == y => Some(None),
                    // store x; load x => dup; store x (keeps the value
                    // available without the reload).
                    (Some(&Op::Store(x)), Some(&Op::Load(y))) if x == y => {
                        Some(Some((Op::Dup, Op::Store(x))))
                    }
                    _ => None,
                };
                match rewrite {
                    Some(None) => {
                        editor.remove(pc);
                        editor.remove(pc + 1);
                        rewrites += 1;
                        pc += 2;
                        continue;
                    }
                    Some(Some((a, b))) => {
                        editor.replace(pc, a);
                        editor.replace(pc + 1, b);
                        rewrites += 1;
                        pc += 2;
                        continue;
                    }
                    None => {}
                }
            }
            pc += 1;
        }
        rewrites
    }
}

/// Replaces stores to locals that are never loaded with plain pops.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadStoreElimination;

impl Pass for DeadStoreElimination {
    fn name(&self) -> &'static str {
        "dead-store-elimination"
    }

    fn apply(&self, editor: &mut CodeEditor) -> usize {
        let mut loaded: HashSet<u16> = HashSet::new();
        for pc in 0..editor.len() {
            if let Some(&Op::Load(x)) = editor.op(pc) {
                loaded.insert(x);
            }
        }
        let mut rewrites = 0;
        for pc in 0..editor.len() {
            if let Some(&Op::Store(x)) = editor.op(pc) {
                if !loaded.contains(&x) {
                    editor.replace(pc, Op::Pop);
                    rewrites += 1;
                }
            }
        }
        rewrites
    }
}

/// Removes `nop` padding.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopElimination;

impl Pass for NopElimination {
    fn name(&self) -> &'static str {
        "nop-elimination"
    }

    fn apply(&self, editor: &mut CodeEditor) -> usize {
        let mut rewrites = 0;
        for pc in 0..editor.len() {
            if let Some(Op::Nop) = editor.op(pc) {
                editor.remove(pc);
                rewrites += 1;
            }
        }
        rewrites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pass: &dyn Pass, code: Vec<Op>) -> Vec<Op> {
        let mut e = CodeEditor::new(&code);
        pass.apply(&mut e);
        e.finish()
    }

    #[test]
    fn folds_arithmetic_chain() {
        let out = run(
            &ConstantFolding,
            vec![Op::Const(3), Op::Const(4), Op::Add, Op::Return],
        );
        assert_eq!(out, vec![Op::Const(7), Op::Return]);
    }

    #[test]
    fn does_not_fold_across_join_points() {
        // pc2 (const 4) is a jump target: folding would break the jumping
        // path.
        let code = vec![
            Op::JumpIfZero(2),
            Op::Const(3),
            Op::Const(4),
            Op::Add,
            Op::Return,
        ];
        let out = run(&ConstantFolding, code.clone());
        assert_eq!(out, code, "join point must block the rewrite");
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let code = vec![Op::Const(1), Op::Const(0), Op::Div, Op::Return];
        let out = run(&ConstantFolding, code.clone());
        assert_eq!(out, code, "div-by-zero trap must be preserved");
    }

    #[test]
    fn folds_constant_conditionals() {
        let out = run(
            &ConstantFolding,
            vec![Op::Const(0), Op::JumpIfZero(3), Op::Nop, Op::Return],
        );
        assert_eq!(out, vec![Op::Jump(2), Op::Nop, Op::Return]);
        let out = run(
            &ConstantFolding,
            vec![Op::Const(5), Op::JumpIfZero(3), Op::Nop, Op::Return],
        );
        assert_eq!(out, vec![Op::Nop, Op::Return]);
    }

    #[test]
    fn peephole_removes_push_pop() {
        let out = run(&Peephole, vec![Op::Const(1), Op::Pop, Op::Return]);
        assert_eq!(out, vec![Op::Return]);
        let out = run(&Peephole, vec![Op::Load(0), Op::Pop, Op::Return]);
        assert_eq!(out, vec![Op::Return]);
        let out = run(&Peephole, vec![Op::Dup, Op::Pop, Op::Return]);
        assert_eq!(out, vec![Op::Return]);
    }

    #[test]
    fn peephole_store_load_becomes_dup_store() {
        let out = run(&Peephole, vec![Op::Store(2), Op::Load(2), Op::Return]);
        assert_eq!(out, vec![Op::Dup, Op::Store(2), Op::Return]);
    }

    #[test]
    fn peephole_load_store_same_slot_removed() {
        let out = run(
            &Peephole,
            vec![Op::Load(1), Op::Store(1), Op::Const(0), Op::Return],
        );
        assert_eq!(out, vec![Op::Const(0), Op::Return]);
    }

    #[test]
    fn peephole_algebraic_identities() {
        let out = run(&Peephole, vec![Op::Const(0), Op::Add, Op::Return]);
        assert_eq!(out, vec![Op::Return]);
        let out = run(&Peephole, vec![Op::Const(1), Op::Mul, Op::Return]);
        assert_eq!(out, vec![Op::Return]);
    }

    #[test]
    fn peephole_jump_to_next_removed() {
        let out = run(&Peephole, vec![Op::Jump(1), Op::Return]);
        assert_eq!(out, vec![Op::Return]);
    }

    #[test]
    fn peephole_cond_jump_to_next_becomes_pop() {
        let out = run(&Peephole, vec![Op::Const(1), Op::JumpIfZero(2), Op::Return]);
        // The conditional collapses to a pop of the condition. (The
        // const/pop pair is left for the next fixpoint iteration.)
        assert_eq!(out, vec![Op::Const(1), Op::Pop, Op::Return]);
    }

    #[test]
    fn dead_stores_become_pops() {
        let out = run(
            &DeadStoreElimination,
            vec![Op::Const(1), Op::Store(3), Op::Const(0), Op::Return],
        );
        assert_eq!(out, vec![Op::Const(1), Op::Pop, Op::Const(0), Op::Return]);
    }

    #[test]
    fn live_stores_survive() {
        let code = vec![Op::Const(1), Op::Store(3), Op::Load(3), Op::Return];
        let out = run(&DeadStoreElimination, code.clone());
        assert_eq!(out, code);
    }

    #[test]
    fn nops_removed_and_targets_fixed() {
        let out = run(
            &NopElimination,
            vec![
                Op::Nop,
                Op::Const(1),
                Op::JumpIfNonZero(0),
                Op::Const(0),
                Op::Return,
            ],
        );
        assert_eq!(
            out,
            vec![Op::Const(1), Op::JumpIfNonZero(0), Op::Const(0), Op::Return]
        );
    }
}
