//! Control-flow graph construction over method bodies.
//!
//! Basic blocks are maximal straight-line instruction runs; leaders are
//! the entry, jump targets, and instructions following a branch or
//! return. The CFG backs the dataflow passes (liveness-based dead-store
//! elimination) and is exposed for analyses downstream crates may build.

use cbs_bytecode::Op;

/// Index of a basic block within a [`ControlFlowGraph`].
pub type BlockId = usize;

/// One basic block: a half-open instruction range and its successors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor blocks in control-flow order (fallthrough first).
    pub successors: Vec<BlockId>,
}

impl BasicBlock {
    /// Instruction indices of this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// A method body's control-flow graph.
#[derive(Debug, Clone)]
pub struct ControlFlowGraph {
    blocks: Vec<BasicBlock>,
    /// Block containing each instruction.
    block_of: Vec<BlockId>,
}

impl ControlFlowGraph {
    /// Builds the CFG of `code`.
    ///
    /// Returns an empty graph for an empty body.
    pub fn build(code: &[Op]) -> Self {
        if code.is_empty() {
            return Self {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        // Leaders: entry, every jump target, every instruction after a
        // control transfer.
        let mut leader = vec![false; code.len()];
        leader[0] = true;
        for (pc, op) in code.iter().enumerate() {
            if let Some(t) = op.jump_target() {
                if let Some(l) = leader.get_mut(t as usize) {
                    *l = true;
                }
                if pc + 1 < code.len() {
                    leader[pc + 1] = true;
                }
            }
            if matches!(op, Op::Return) && pc + 1 < code.len() {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; code.len()];
        let mut start = 0usize;
        for pc in 1..=code.len() {
            if pc == code.len() || leader[pc] {
                let id = blocks.len();
                for slot in &mut block_of[start..pc] {
                    *slot = id;
                }
                blocks.push(BasicBlock {
                    start,
                    end: pc,
                    successors: Vec::new(),
                });
                start = pc;
            }
        }

        // Successors from each block's terminator.
        let block_index_of_pc = |pc: usize, block_of: &[BlockId]| -> BlockId { block_of[pc] };
        for block in &mut blocks {
            let last = block.end - 1;
            let op = &code[last];
            let mut succs = Vec::new();
            if op.falls_through() && block.end < code.len() {
                succs.push(block_index_of_pc(block.end, &block_of));
            }
            if let Some(t) = op.jump_target() {
                succs.push(block_index_of_pc(t as usize, &block_of));
            }
            succs.dedup();
            block.successors = succs;
        }

        Self { blocks, block_of }
    }

    /// The basic blocks in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` for an empty body.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_of(&self, pc: usize) -> BlockId {
        self.block_of[pc]
    }

    /// Predecessor lists (computed on demand).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for &s in &b.successors {
                preds[s].push(i);
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_is_one_block() {
        let code = vec![Op::Const(1), Op::Const(2), Op::Add, Op::Return];
        let cfg = ControlFlowGraph::build(&code);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks()[0].range(), 0..4);
        assert!(cfg.blocks()[0].successors.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks() {
        // 0: const ; 1: jz @4 ; 2: const ; 3: jump @5 ; 4: const ; 5: ret
        let code = vec![
            Op::Const(1),
            Op::JumpIfZero(4),
            Op::Const(2),
            Op::Jump(5),
            Op::Const(3),
            Op::Return,
        ];
        let cfg = ControlFlowGraph::build(&code);
        assert_eq!(cfg.len(), 4);
        // Entry block branches to then/else.
        assert_eq!(cfg.blocks()[0].successors, vec![1, 2]);
        // Both arms join at the return block.
        assert_eq!(cfg.blocks()[1].successors, vec![3]);
        assert_eq!(cfg.blocks()[2].successors, vec![3]);
        let preds = cfg.predecessors();
        assert_eq!(preds[3], vec![1, 2]);
    }

    #[test]
    fn loop_backedge_creates_cycle() {
        // counted loop shape: 0: const; 1: store; 2: load; 3: jz @7;
        // 4: nop; 5: nop; 6: jump @2; 7: const; 8: ret
        let code = vec![
            Op::Const(3),
            Op::Store(0),
            Op::Load(0),
            Op::JumpIfZero(7),
            Op::Nop,
            Op::Nop,
            Op::Jump(2),
            Op::Const(0),
            Op::Return,
        ];
        let cfg = ControlFlowGraph::build(&code);
        let head = cfg.block_of(2);
        let body = cfg.block_of(4);
        assert!(cfg.blocks()[body].successors.contains(&head), "backedge");
    }

    #[test]
    fn empty_body_is_empty_graph() {
        let cfg = ControlFlowGraph::build(&[]);
        assert!(cfg.is_empty());
        assert_eq!(cfg.len(), 0);
    }

    #[test]
    fn code_after_return_starts_new_block() {
        let code = vec![Op::Const(1), Op::Return, Op::Const(2), Op::Return];
        let cfg = ControlFlowGraph::build(&code);
        assert_eq!(cfg.len(), 2);
        assert!(
            cfg.blocks()[0].successors.is_empty(),
            "return has no successors"
        );
    }
}
