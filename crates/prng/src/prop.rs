//! A minimal property-test harness (offline stand-in for `proptest`).
//!
//! [`run_cases`] drives a closure over a sequence of deterministically
//! seeded generators. Each case builds its own random inputs from the
//! provided [`SmallRng`]; a panic inside the closure is re-raised with
//! the case number and seed so the failure reproduces with
//! `SmallRng::seed_from_u64(<seed>)`.
//!
//! ```
//! use cbs_prng::prop::run_cases;
//!
//! run_cases("addition_commutes", 16, |rng| {
//!     let a: u32 = rng.gen_range(0..1000);
//!     let b: u32 = rng.gen_range(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::SmallRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base offset mixed into per-case seeds so different properties using
/// the same case index still see unrelated inputs.
const SEED_BASE: u64 = 0x5EED_CA5E_0000_0000;

/// The seed used for case `case` of the property named `name`.
pub fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the property name keeps seeds stable across runs and
    // independent across properties.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SEED_BASE ^ h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `cases` seeded instances of the property `body`.
///
/// # Panics
///
/// Re-panics with case context when any instance fails.
pub fn run_cases(name: &str, cases: u64, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (reproduce with SmallRng::seed_from_u64({seed:#x}))"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_deterministically() {
        let mut firsts = Vec::new();
        run_cases("collect", 5, |rng| firsts.push(rng.next_u64()));
        let mut again = Vec::new();
        run_cases("collect", 5, |rng| again.push(rng.next_u64()));
        assert_eq!(firsts.len(), 5);
        assert_eq!(firsts, again);
        // Distinct cases see distinct streams.
        assert!(firsts.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn distinct_properties_get_distinct_seeds() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run_cases("fails", 3, |_| panic!("boom"));
    }
}
