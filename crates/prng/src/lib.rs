//! Self-contained deterministic randomness for the CBS reproduction.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! external crates. This crate replaces the subset of `rand` the
//! reproduction used — a small, seedable generator with uniform integer
//! ranges, Bernoulli draws and unit-interval doubles — plus a minimal
//! property-test harness (see [`prop`]) standing in for `proptest`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets: fast,
//! high-quality, and reproducible from a single `u64` seed. Nothing here
//! is cryptographic; determinism and statistical uniformity are the only
//! goals.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod prop;

/// A small, fast, seedable pseudo-random generator (xoshiro256++).
///
/// Every simulated stochastic choice in the workspace (workload
/// generation, randomized skip counts, hardware skid) flows through this
/// type, so a fixed seed always reproduces the identical run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step: expands a seed into well-mixed state words.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Distinct seeds yield statistically independent streams; the state
    /// expansion guarantees a non-zero internal state even for seed 0.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent stream for shard/thread `index`.
    ///
    /// Used wherever one configured seed must fan out into per-thread
    /// deterministic sequences (e.g. CBS per-thread skip randomization).
    pub fn seed_for_stream(seed: u64, index: u64) -> Self {
        // Mix the index through SplitMix64 so streams 0,1,2,… are as
        // unrelated as arbitrary seeds.
        let mut sm = seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        let derived = splitmix64(&mut sm);
        Self::seed_from_u64(derived)
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `p` is outside `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen_f64() < p
    }

    /// A uniform value in the given range (exclusive or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoSampleBounds<T>,
    {
        let (lo, hi) = range.into_sample_bounds();
        T::sample_inclusive(self, lo, hi)
    }

    /// An unbiased uniform draw in `[0, span)` via rejection sampling.
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Reject the final partial copy of the span so every residue is
        // equally likely.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Integer types [`SmallRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi]`; panics if `lo > hi`.
    fn sample_inclusive(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                lo.wrapping_add(rng.below(span + 1) as Self)
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                lo.wrapping_add(rng.below(span + 1) as Self)
            }
        }
    )*};
}

impl_sample_unsigned!(u32, u64, usize);
impl_sample_signed!(i32 as u32, i64 as u64);

/// Conversion of range syntax into inclusive sampling bounds.
pub trait IntoSampleBounds<T> {
    /// The `(lo, hi)` inclusive bounds; panics on an empty range.
    fn into_sample_bounds(self) -> (T, T);
}

macro_rules! impl_bounds {
    ($($t:ty),*) => {$(
        impl IntoSampleBounds<$t> for std::ops::Range<$t> {
            #[inline]
            fn into_sample_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty sample range");
                (self.start, self.end - 1)
            }
        }
        impl IntoSampleBounds<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn into_sample_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_bounds!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = SmallRng::seed_for_stream(7, 0);
        let mut b = SmallRng::seed_for_stream(7, 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        let mut a2 = SmallRng::seed_for_stream(7, 0);
        assert_eq!(va[0], a2.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&v));
            seen[(v - 1) as usize] = true;
            let w: i64 = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&w));
            let u: usize = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 6];
        let n = 60_000;
        for _ in 0..n {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        let expected = n / 6;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {i} off by {dev:.3}: {counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval_with_correct_mean() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty sample range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }
}
