//! Profile-shape statistics.
//!
//! The accuracy a sampling profiler can reach on a program depends on the
//! *shape* of its true edge-weight distribution: a concentrated profile
//! (compress) converges in a few hundred samples, a long-tailed one
//! (javac, daikon) does not. These statistics characterize that shape and
//! are used by EXPERIMENTS.md to validate that the synthetic workloads
//! have realistic profiles.

use crate::graph::DynamicCallGraph;

/// Summary statistics of one profile's weight distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileShape {
    /// Number of distinct edges.
    pub edges: usize,
    /// Fraction of total weight in the heaviest 10% of edges.
    pub top_decile_share: f64,
    /// Smallest number of edges covering 90% of the weight.
    pub edges_for_90pct: usize,
    /// Gini coefficient of the weight distribution (0 = uniform,
    /// → 1 = maximally concentrated).
    pub gini: f64,
}

/// Computes the shape statistics of a profile.
///
/// Returns a zeroed shape for an empty graph.
pub fn shape(dcg: &DynamicCallGraph) -> ProfileShape {
    let edges = dcg.edges_by_weight();
    let n = edges.len();
    if n == 0 {
        return ProfileShape {
            edges: 0,
            top_decile_share: 0.0,
            edges_for_90pct: 0,
            gini: 0.0,
        };
    }
    let total: f64 = dcg.total_weight();

    let decile = (n / 10).max(1);
    // A graph whose every edge decayed to zero weight has n > 0 with
    // total == 0; dividing would yield NaN and poison sorted renders.
    let top_decile_share: f64 = if total > 0.0 {
        edges.iter().take(decile).map(|(_, w)| w).sum::<f64>() / total
    } else {
        0.0
    };

    let mut covered = 0.0;
    let mut edges_for_90pct = n;
    for (i, (_, w)) in edges.iter().enumerate() {
        covered += w;
        if covered >= 0.9 * total {
            edges_for_90pct = i + 1;
            break;
        }
    }

    // Gini over the (descending-sorted) weights.
    let mut ascending: Vec<f64> = edges.iter().map(|(_, w)| *w).collect();
    ascending.reverse();
    let sum: f64 = ascending.iter().sum();
    let weighted: f64 = ascending
        .iter()
        .enumerate()
        .map(|(i, w)| (i as f64 + 1.0) * w)
        .sum();
    let gini = if sum > 0.0 {
        (2.0 * weighted / (n as f64 * sum)) - (n as f64 + 1.0) / n as f64
    } else {
        0.0
    };

    ProfileShape {
        edges: n,
        top_decile_share,
        edges_for_90pct,
        gini,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CallEdge;
    use cbs_bytecode::{CallSiteId, MethodId};

    fn graph(weights: &[f64]) -> DynamicCallGraph {
        let mut g = DynamicCallGraph::new();
        for (i, &w) in weights.iter().enumerate() {
            g.record(
                CallEdge::new(
                    MethodId::new(0),
                    CallSiteId::new(i as u32),
                    MethodId::new(i as u32 + 1),
                ),
                w,
            );
        }
        g
    }

    #[test]
    fn uniform_distribution_has_low_gini() {
        let s = shape(&graph(&[1.0; 100]));
        assert_eq!(s.edges, 100);
        assert!(s.gini.abs() < 0.02, "gini {}", s.gini);
        assert!((s.top_decile_share - 0.1).abs() < 0.01);
        assert_eq!(s.edges_for_90pct, 90);
    }

    #[test]
    fn concentrated_distribution_has_high_gini() {
        let mut weights = vec![1.0; 99];
        weights.insert(0, 1000.0);
        let s = shape(&graph(&weights));
        assert!(s.gini > 0.8, "gini {}", s.gini);
        assert!(s.top_decile_share > 0.9);
        assert!(s.edges_for_90pct <= 2);
    }

    #[test]
    fn empty_graph_is_zeroed() {
        let s = shape(&DynamicCallGraph::new());
        assert_eq!(s.edges, 0);
        assert_eq!(s.top_decile_share, 0.0);
        assert_eq!(s.gini, 0.0);
    }

    /// Regression: a non-empty graph whose weights all decayed to zero
    /// must not produce NaN statistics (0/0 in `top_decile_share`).
    #[test]
    fn zero_weight_graph_is_finite() {
        let mut g = graph(&[1.0, 2.0, 3.0]);
        g.decay(0.0, 0.0);
        assert_eq!(g.total_weight(), 0.0);
        let s = shape(&g);
        assert_eq!(s.edges, 3);
        assert_eq!(s.top_decile_share, 0.0);
        assert_eq!(s.gini, 0.0);
        assert!(s.top_decile_share.is_finite() && s.gini.is_finite());
    }

    #[test]
    fn single_edge() {
        let s = shape(&graph(&[5.0]));
        assert_eq!(s.edges, 1);
        assert_eq!(s.edges_for_90pct, 1);
        assert!((s.top_decile_share - 1.0).abs() < 1e-12);
    }
}
