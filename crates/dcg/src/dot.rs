//! Graphviz (DOT) rendering of dynamic call graphs.

use crate::graph::DynamicCallGraph;
use cbs_bytecode::{MethodId, Program};
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Render at most this many edges (heaviest first).
    pub max_edges: usize,
    /// Scale pen widths by edge weight share.
    pub weight_widths: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            max_edges: 64,
            weight_widths: true,
        }
    }
}

/// Renders the heaviest edges of a DCG as a DOT digraph, using method
/// names from `program` when available.
pub fn to_dot(dcg: &DynamicCallGraph, program: Option<&Program>, options: &DotOptions) -> String {
    let name_of = |m: MethodId| -> String {
        match program {
            Some(p) if m.index() < p.num_methods() => p.method(m).name().to_owned(),
            _ => m.to_string(),
        }
    };
    let mut out = String::from("digraph dcg {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    let edges = dcg.top_edges(options.max_edges);
    let mut nodes: Vec<MethodId> = Vec::new();
    for (e, _) in &edges {
        for m in [e.caller, e.callee] {
            if !nodes.contains(&m) {
                nodes.push(m);
            }
        }
    }
    for m in &nodes {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            m.index(),
            escape(&name_of(*m))
        );
    }
    for (e, w) in &edges {
        let pct = dcg.weight_percent(e);
        let width = if options.weight_widths {
            (0.5 + pct / 10.0).min(6.0)
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{pct:.1}%\", penwidth={width:.2}];",
            e.caller.index(),
            e.callee.index()
        );
        let _ = w;
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CallEdge;
    use cbs_bytecode::CallSiteId;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = DynamicCallGraph::new();
        g.record(
            CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1)),
            3.0,
        );
        g.record(
            CallEdge::new(MethodId::new(1), CallSiteId::new(1), MethodId::new(2)),
            1.0,
        );
        let dot = to_dot(&g, None, &DotOptions::default());
        assert!(dot.starts_with("digraph dcg {"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("75.0%"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn caps_edge_count() {
        let mut g = DynamicCallGraph::new();
        for i in 0..100 {
            g.record(
                CallEdge::new(MethodId::new(i), CallSiteId::new(i), MethodId::new(i + 1)),
                f64::from(i + 1),
            );
        }
        let dot = to_dot(
            &g,
            None,
            &DotOptions {
                max_edges: 5,
                weight_widths: false,
            },
        );
        assert_eq!(dot.matches(" -> ").count(), 5);
        assert!(dot.contains("penwidth=1.00"));
    }

    #[test]
    fn escapes_names() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
