//! The complete static call graph (§2).
//!
//! "A dynamic call graph … contains only those edges that are observed at
//! runtime; therefore the edges of a DCG are a subgraph of the complete
//! static call graph." This module builds that complete graph from a
//! program — direct edges from `call` instructions, and one edge per
//! statically possible target of each `callvirt` slot — and checks the
//! containment invariant, which the test suite asserts for every profiler
//! on every workload.

use crate::edge::CallEdge;
use crate::graph::DynamicCallGraph;
use cbs_bytecode::{Op, Program};
use std::collections::HashSet;

/// The complete static call graph of a program.
#[derive(Debug, Clone, Default)]
pub struct StaticCallGraph {
    edges: HashSet<CallEdge>,
}

impl StaticCallGraph {
    /// Builds the static call graph: every `call` contributes its edge,
    /// every `callvirt` contributes one edge per class implementing its
    /// slot.
    pub fn build(program: &Program) -> Self {
        let mut edges = HashSet::new();
        for method in program.methods() {
            for (_, site, op) in method.call_instructions() {
                match *op {
                    Op::Call { target, .. } => {
                        edges.insert(CallEdge::new(method.id(), site, target));
                    }
                    Op::CallVirtual { slot, .. } => {
                        for target in program.virtual_targets(slot) {
                            edges.insert(CallEdge::new(method.id(), site, target));
                        }
                    }
                    _ => {}
                }
            }
        }
        Self { edges }
    }

    /// Whether the static graph admits `edge`.
    pub fn contains(&self, edge: &CallEdge) -> bool {
        self.edges.contains(edge)
    }

    /// Number of static edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` for a program with no call instructions.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Checks §2's containment invariant, returning the first offending
    /// dynamic edge if any.
    pub fn violation<'a>(&self, dcg: &'a DynamicCallGraph) -> Option<&'a CallEdge> {
        dcg.iter().map(|(e, _)| e).find(|e| !self.contains(e))
    }

    /// Fraction of static edges the dynamic graph observed (coverage).
    pub fn coverage(&self, dcg: &DynamicCallGraph) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        let seen = self.edges.iter().filter(|e| dcg.weight(e) > 0.0).count();
        seen as f64 / self.edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_bytecode::{CallSiteId, MethodId, ProgramBuilder, VirtualSlot};

    fn program_with_virtual() -> Program {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", 0);
        let f = b
            .function("Base.f", base, 1, 0, |c| {
                c.const_(1).ret();
            })
            .unwrap();
        b.set_vtable(base, VirtualSlot::new(0), f);
        let sub = b.add_subclass("Sub", base, 0);
        let g = b
            .function("Sub.f", sub, 1, 0, |c| {
                c.const_(2).ret();
            })
            .unwrap();
        b.set_vtable(sub, VirtualSlot::new(0), g);
        let helper = b
            .function("helper", base, 0, 0, |c| {
                c.const_(3).ret();
            })
            .unwrap();
        let main = b
            .function("main", base, 0, 0, |c| {
                c.call(helper).pop();
                c.new_object(sub).call_virtual(VirtualSlot::new(0), 1).ret();
            })
            .unwrap();
        b.set_entry(main);
        b.build().unwrap()
    }

    #[test]
    fn virtual_sites_contribute_all_targets() {
        let p = program_with_virtual();
        let scg = StaticCallGraph::build(&p);
        // helper edge + 2 possible virtual targets.
        assert_eq!(scg.num_edges(), 3);
        assert!(!scg.is_empty());
    }

    #[test]
    fn dynamic_graph_is_contained() {
        let p = program_with_virtual();
        let scg = StaticCallGraph::build(&p);
        let mut dcg = DynamicCallGraph::new();
        // The actually-executed edges: main->helper and main->Sub.f.
        let main_method = p.method_by_name("main").unwrap();
        let main = main_method.id();
        let helper = p.method_by_name("helper").unwrap().id();
        let subf = p.method_by_name("Sub.f").unwrap().id();
        let sites: Vec<CallSiteId> = main_method.call_instructions().map(|(_, s, _)| s).collect();
        dcg.record(CallEdge::new(main, sites[0], helper), 1.0);
        dcg.record(CallEdge::new(main, sites[1], subf), 1.0);
        assert!(scg.violation(&dcg).is_none());
        assert!((scg.coverage(&dcg) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bogus_edge_is_a_violation() {
        let p = program_with_virtual();
        let scg = StaticCallGraph::build(&p);
        let mut dcg = DynamicCallGraph::new();
        dcg.record(
            CallEdge::new(MethodId::new(0), CallSiteId::new(99), MethodId::new(1)),
            1.0,
        );
        assert!(scg.violation(&dcg).is_some());
        assert_eq!(scg.coverage(&dcg), 0.0);
    }
}
