//! # cbs-dcg
//!
//! Dynamic call graph representations and accuracy metrics for the
//! Arnold–Grove CGO'05 reproduction.
//!
//! * [`CallEdge`] — the `(caller, call site, callee)` triple of §2;
//! * [`DynamicCallGraph`] — weighted multigraph with merge/decay and the
//!   per-site receiver distributions the 40% inlining rule consumes;
//! * [`overlap`]/[`accuracy`] — the paper's §6.2 profile-similarity metric;
//! * [`CallingContextTree`] — the context-sensitive extension mentioned in
//!   §1/§7.
//!
//! ## Example
//!
//! ```
//! use cbs_bytecode::{CallSiteId, MethodId};
//! use cbs_dcg::{CallEdge, DynamicCallGraph, accuracy};
//!
//! let edge = CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1));
//! let mut perfect = DynamicCallGraph::new();
//! perfect.record(edge, 1_000_000.0); // exhaustive counts
//! let mut sampled = DynamicCallGraph::new();
//! sampled.record(edge, 37.0); // sparse samples, same shape
//! assert!((accuracy(&sampled, &perfect) - 100.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cct;
pub mod dot;
mod edge;
mod graph;
mod hash;
mod overlap;
pub mod serialize;
mod static_graph;
pub mod stats;

pub use cct::{overlap_cct, CallingContextTree, CctNodeId, ContextStep};
pub use edge::CallEdge;
pub use graph::{coalesce_increments, DynamicCallGraph};
pub use overlap::{accuracy, overlap};
pub use static_graph::StaticCallGraph;
