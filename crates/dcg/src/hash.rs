//! A fast, deterministic hasher for the edge-index hot path.
//!
//! `DynamicCallGraph` interns every recorded edge through a
//! `HashMap<CallEdge, u32>`. With the standard library's default
//! (SipHash-1-3) hasher that lookup dominates bulk ingestion: hashing a
//! 12-byte edge costs more than the weight addition it guards. The
//! edge index never needs DoS resistance — keys are internal profile
//! ids, not attacker-controlled strings — and, crucially, **map
//! iteration order is never observed**: every reduction over a graph
//! walks the sorted slot permutation, so the hasher is free to be
//! anything deterministic without affecting a single output bit.
//!
//! The mixer is the word-at-a-time multiply-rotate used by rustc's
//! interners (FxHash): `state = (state.rotate_left(5) ^ word) * K` with
//! a fixed odd 64-bit constant. It is seed-free, so rebuilt maps probe
//! identically across runs — which keeps re-ingestion timings stable —
//! and it folds a `CallEdge` (three `u32` writes) in three multiplies.

use std::hash::{BuildHasher, Hasher};

/// The FxHash multiplier: `pi.frac() * 2^64`, forced odd.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher (see the module docs).
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeHasher(u64);

impl EdgeHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for EdgeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Zero-sized, seed-free [`BuildHasher`] for [`EdgeHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EdgeHashBuilder;

impl BuildHasher for EdgeHashBuilder {
    type Hasher = EdgeHasher;

    #[inline]
    fn build_hasher(&self) -> EdgeHasher {
        EdgeHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_builders() {
        let edge = crate::CallEdge::new(
            cbs_bytecode::MethodId::new(7),
            cbs_bytecode::CallSiteId::new(3),
            cbs_bytecode::MethodId::new(11),
        );
        assert_eq!(
            EdgeHashBuilder.hash_one(edge),
            EdgeHashBuilder.hash_one(edge)
        );
    }

    #[test]
    fn distinct_edge_components_change_the_hash() {
        // Not a collision-resistance claim — just a smoke check that
        // every written word reaches the state.
        let hash_of = |a: u32, b: u32, c: u32| {
            let mut h = EdgeHashBuilder.build_hasher();
            h.write_u32(a);
            h.write_u32(b);
            h.write_u32(c);
            h.finish()
        };
        let base = hash_of(1, 2, 3);
        assert_ne!(base, hash_of(9, 2, 3));
        assert_ne!(base, hash_of(1, 9, 3));
        assert_ne!(base, hash_of(1, 2, 9));
    }

    #[test]
    fn byte_slice_writes_fold_in_le_words() {
        // The generic `write` path must agree with itself regardless of
        // how callers chunk their bytes only when chunk boundaries are
        // word-aligned; verify the padding rule is stable.
        let mut h1 = EdgeHashBuilder.build_hasher();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = EdgeHashBuilder.build_hasher();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        h2.write(&[9]);
        assert_eq!(h1.finish(), h2.finish());
    }
}
