//! The overlap accuracy metric (paper §6.2).
//!
//! ```text
//! overlap(DCG1, DCG2) = Σ_{e ∈ CallEdges} min(Weight(e, DCG1), Weight(e, DCG2))
//! ```
//!
//! where `CallEdges` is the set of edges present in both graphs and
//! `Weight(e, DCG)` is the *percentage* of total weight attributed to `e`.
//! The result ranges from 0 (no common information) to 100 (identical
//! profiles). A sampled profile's *accuracy* is its overlap with a perfect
//! (exhaustively counted) profile.

use crate::graph::DynamicCallGraph;

/// Computes the overlap percentage between two dynamic call graphs.
///
/// Symmetric in its arguments: the denominator of each weight is its own
/// graph's total, so `overlap(a, b) == overlap(b, a)`.
///
/// Returns 0 when either graph is empty.
///
/// ```
/// use cbs_dcg::{CallEdge, DynamicCallGraph, overlap};
/// use cbs_bytecode::{CallSiteId, MethodId};
///
/// let e = CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1));
/// let mut a = DynamicCallGraph::new();
/// a.record(e, 10.0);
/// let mut b = DynamicCallGraph::new();
/// b.record(e, 3.0); // different counts, same distribution
/// assert!((overlap(&a, &b) - 100.0).abs() < 1e-9);
/// ```
pub fn overlap(a: &DynamicCallGraph, b: &DynamicCallGraph) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    // Iterate the smaller graph; only shared edges contribute. Graph
    // iteration is edge-ordered, so this reduction is deterministic —
    // equal inputs give the bit-identical result regardless of how the
    // graphs were built up (merged from shards or recorded serially).
    let (outer, inner) = if a.num_edges() <= b.num_edges() {
        (a, b)
    } else {
        (b, a)
    };
    for (edge, _) in outer.iter() {
        let wi = inner.weight_percent(edge);
        if wi > 0.0 {
            sum += wi.min(outer.weight_percent(edge));
        }
    }
    sum
}

/// Accuracy of a sampled profile with respect to a perfect profile
/// (`accuracy(DCG_samp) = overlap(DCG_samp, DCG_perfect)`).
pub fn accuracy(sampled: &DynamicCallGraph, perfect: &DynamicCallGraph) -> f64 {
    overlap(sampled, perfect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::CallEdge;
    use cbs_bytecode::{CallSiteId, MethodId};

    fn e(caller: u32, site: u32, callee: u32) -> CallEdge {
        CallEdge::new(
            MethodId::new(caller),
            CallSiteId::new(site),
            MethodId::new(callee),
        )
    }

    fn graph(entries: &[(CallEdge, f64)]) -> DynamicCallGraph {
        entries.iter().copied().collect()
    }

    #[test]
    fn identical_profiles_overlap_100() {
        let g = graph(&[(e(0, 0, 1), 5.0), (e(0, 1, 2), 15.0)]);
        assert!((overlap(&g, &g) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_profiles_overlap_0() {
        let a = graph(&[(e(0, 0, 1), 5.0)]);
        let b = graph(&[(e(2, 2, 3), 5.0)]);
        assert_eq!(overlap(&a, &b), 0.0);
    }

    #[test]
    fn empty_graph_overlap_0() {
        let a = graph(&[(e(0, 0, 1), 5.0)]);
        let b = DynamicCallGraph::new();
        assert_eq!(overlap(&a, &b), 0.0);
        assert_eq!(overlap(&b, &a), 0.0);
        assert_eq!(overlap(&b, &b), 0.0);
    }

    #[test]
    fn scale_invariance() {
        // Overlap compares *distributions*: scaling all weights of one
        // profile changes nothing.
        let a = graph(&[(e(0, 0, 1), 1.0), (e(0, 1, 2), 3.0)]);
        let b = graph(&[(e(0, 0, 1), 10.0), (e(0, 1, 2), 30.0)]);
        assert!((overlap(&a, &b) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_is_min_of_percentages() {
        // a: 50/50 across two edges; b: 100% on the first edge.
        let a = graph(&[(e(0, 0, 1), 1.0), (e(0, 1, 2), 1.0)]);
        let b = graph(&[(e(0, 0, 1), 7.0)]);
        assert!((overlap(&a, &b) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn symmetry() {
        let a = graph(&[(e(0, 0, 1), 2.0), (e(0, 1, 2), 8.0), (e(1, 2, 3), 1.0)]);
        let b = graph(&[(e(0, 0, 1), 6.0), (e(1, 2, 3), 4.0)]);
        assert!((overlap(&a, &b) - overlap(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn bounded_by_100() {
        let a = graph(&[(e(0, 0, 1), 1.0), (e(0, 1, 2), 2.0), (e(1, 2, 3), 3.0)]);
        let b = graph(&[(e(0, 0, 1), 3.0), (e(0, 1, 2), 2.0), (e(1, 2, 3), 1.0)]);
        let o = overlap(&a, &b);
        assert!(o > 0.0 && o <= 100.0, "overlap {o} out of range");
    }

    /// Regression test: `weight_percent` denominators must stay
    /// consistent with the stored weights after `merge`/`merge_all`, so a
    /// merged graph still overlaps itself at exactly 100%.
    #[test]
    fn self_overlap_of_merged_graphs_is_100() {
        // Shards with overlapping edge sets and awkward fractional
        // weights (the decayed-profile case, where totals drift most).
        let shards: Vec<DynamicCallGraph> = (1..=5u32)
            .map(|i| {
                let fi = f64::from(i);
                let mut g = graph(&[
                    (e(0, 0, 1), 0.1 * fi),
                    (e(i, i, i + 1), 1.0 / fi),
                    (e(1, 2, 3), 0.3),
                ]);
                g.decay(0.7, 0.0);
                g
            })
            .collect();
        let merged = DynamicCallGraph::merge_all(&shards);
        assert!(
            (overlap(&merged, &merged) - 100.0).abs() < 1e-9,
            "merged graph self-overlap: {}",
            overlap(&merged, &merged)
        );
        // And against an identically-shaped graph merged in reverse order.
        let reversed = DynamicCallGraph::merge_all(shards.iter().rev());
        assert!((overlap(&merged, &reversed) - 100.0).abs() < 1e-9);

        // Integer-weight shards (the profiler case) are exact.
        let int_shards: Vec<DynamicCallGraph> = (0..3u32)
            .map(|i| graph(&[(e(0, 0, 1), 3.0), (e(i, 0, 2), f64::from(i + 1))]))
            .collect();
        let m = DynamicCallGraph::merge_all(&int_shards);
        assert!((overlap(&m, &m) - 100.0).abs() < 1e-9);
        // Shard-order independence is bitwise for integer weights.
        let m2 = DynamicCallGraph::merge_all(int_shards.iter().rev());
        assert_eq!(m, m2);
        assert_eq!(overlap(&m, &m).to_bits(), overlap(&m2, &m2).to_bits());
    }

    #[test]
    fn accuracy_is_overlap_with_perfect() {
        let perfect = graph(&[(e(0, 0, 1), 90.0), (e(0, 1, 2), 10.0)]);
        let sampled = graph(&[(e(0, 0, 1), 9.0), (e(0, 1, 2), 1.0)]);
        assert!((accuracy(&sampled, &perfect) - 100.0).abs() < 1e-9);
        let biased = graph(&[(e(0, 0, 1), 1.0), (e(0, 1, 2), 1.0)]);
        // min(50,90) + min(50,10) = 60
        assert!((accuracy(&biased, &perfect) - 60.0).abs() < 1e-9);
    }
}
