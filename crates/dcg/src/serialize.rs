//! Plain-text serialization of dynamic call graphs.
//!
//! Profiles are often collected in one process and consumed in another
//! (offline analysis, cross-run comparison, feeding a later compilation);
//! this module defines a stable line-oriented format:
//!
//! ```text
//! # cbs-dcg v1
//! <caller> <site> <callee> <weight>
//! ```
//!
//! one edge per line, ids as decimal integers, weight as a float.
//! Round-tripping is exact for weights representable in `f64`.

use crate::edge::CallEdge;
use crate::graph::DynamicCallGraph;
use cbs_bytecode::{CallSiteId, MethodId};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Magic first line of the format.
const HEADER: &str = "# cbs-dcg v1";

/// A failure to parse the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDcgError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A data line does not have four fields.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Offending field text.
        field: String,
    },
    /// A weight was negative or non-finite.
    BadWeight {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseDcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDcgError::BadHeader => write!(f, "missing `{HEADER}` header"),
            ParseDcgError::BadLine { line } => {
                write!(f, "line {line}: expected `caller site callee weight`")
            }
            ParseDcgError::BadNumber { line, field } => {
                write!(f, "line {line}: `{field}` is not a number")
            }
            ParseDcgError::BadWeight { line } => {
                write!(f, "line {line}: weight must be finite and non-negative")
            }
        }
    }
}

impl Error for ParseDcgError {}

/// Serializes a graph to the text format, edges in deterministic
/// (descending-weight) order.
pub fn to_text(dcg: &DynamicCallGraph) -> String {
    let mut out = String::with_capacity(16 + dcg.num_edges() * 24);
    out.push_str(HEADER);
    out.push('\n');
    for (edge, weight) in dcg.edges_by_weight() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            edge.caller.index(),
            edge.site.index(),
            edge.callee.index(),
            weight
        );
    }
    out
}

/// Parses the text format back into a graph.
///
/// # Errors
///
/// Returns a [`ParseDcgError`] describing the first malformed line.
/// Blank lines and `#` comments after the header are ignored.
pub fn from_text(text: &str) -> Result<DynamicCallGraph, ParseDcgError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == HEADER => {}
        _ => return Err(ParseDcgError::BadHeader),
    }
    let mut dcg = DynamicCallGraph::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseDcgError::BadLine { line: line_no });
        }
        let num = |s: &str| -> Result<u32, ParseDcgError> {
            s.parse().map_err(|_| ParseDcgError::BadNumber {
                line: line_no,
                field: s.to_owned(),
            })
        };
        let caller = MethodId::new(num(fields[0])?);
        let site = CallSiteId::new(num(fields[1])?);
        let callee = MethodId::new(num(fields[2])?);
        let weight: f64 = fields[3].parse().map_err(|_| ParseDcgError::BadNumber {
            line: line_no,
            field: fields[3].to_owned(),
        })?;
        if !weight.is_finite() || weight < 0.0 {
            return Err(ParseDcgError::BadWeight { line: line_no });
        }
        dcg.record(CallEdge::new(caller, site, callee), weight);
    }
    Ok(dcg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicCallGraph {
        let mut g = DynamicCallGraph::new();
        g.record(
            CallEdge::new(MethodId::new(0), CallSiteId::new(1), MethodId::new(2)),
            12.5,
        );
        g.record(
            CallEdge::new(MethodId::new(3), CallSiteId::new(4), MethodId::new(5)),
            1.0,
        );
        g
    }

    #[test]
    fn round_trip_is_exact() {
        let g = sample();
        let parsed = from_text(&to_text(&g)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("{HEADER}\n\n# hot edge\n0 1 2 3.5\n");
        let g = from_text(&text).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_weight(), 3.5);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(from_text("0 1 2 3\n"), Err(ParseDcgError::BadHeader));
        assert_eq!(from_text(""), Err(ParseDcgError::BadHeader));
    }

    #[test]
    fn malformed_lines_pinpointed() {
        let text = format!("{HEADER}\n0 1 2\n");
        assert_eq!(from_text(&text), Err(ParseDcgError::BadLine { line: 2 }));
        let text = format!("{HEADER}\n0 x 2 3\n");
        assert!(matches!(
            from_text(&text),
            Err(ParseDcgError::BadNumber { line: 2, .. })
        ));
        let text = format!("{HEADER}\n0 1 2 -3\n");
        assert_eq!(from_text(&text), Err(ParseDcgError::BadWeight { line: 2 }));
        let text = format!("{HEADER}\n0 1 2 inf\n");
        assert_eq!(from_text(&text), Err(ParseDcgError::BadWeight { line: 2 }));
    }

    /// Regression test: `DynamicCallGraph::record` silently ignores
    /// non-finite weights, so a crafted profile file must not be able to
    /// smuggle `NaN`/`inf` past the parser (every spelling Rust's float
    /// parser accepts is rejected with `BadWeight`, not silently dropped).
    #[test]
    fn non_finite_weight_spellings_rejected_on_parse() {
        for bad in [
            "nan", "NaN", "-nan", "inf", "+inf", "-inf", "infinity", "Infinity",
        ] {
            let text = format!("{HEADER}\n0 1 2 {bad}\n");
            assert_eq!(
                from_text(&text),
                Err(ParseDcgError::BadWeight { line: 2 }),
                "weight `{bad}` must be rejected"
            );
        }
        // Huge literals that overflow to infinity are rejected too.
        let text = format!("{HEADER}\n0 1 2 1e400\n");
        assert_eq!(from_text(&text), Err(ParseDcgError::BadWeight { line: 2 }));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = DynamicCallGraph::new();
        assert_eq!(from_text(&to_text(&g)).unwrap(), g);
    }
}
