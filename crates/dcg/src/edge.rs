//! Call-graph edges.

use cbs_bytecode::{CallSiteId, MethodId};
use std::fmt;

/// One edge of a dynamic call graph.
///
/// Following the paper's §2 definition, an edge is the triple
/// `(caller, call site, callee)`: a call graph is a *multigraph* because a
/// single caller/callee pair may be connected through several distinct call
/// sites, and a single (virtual) call site may reach several callees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallEdge {
    /// The calling method.
    pub caller: MethodId,
    /// The static call site within the caller.
    pub site: CallSiteId,
    /// The invoked method.
    pub callee: MethodId,
}

impl CallEdge {
    /// Creates an edge.
    pub const fn new(caller: MethodId, site: CallSiteId, callee: MethodId) -> Self {
        Self {
            caller,
            site,
            callee,
        }
    }

    /// Packs the edge into a `u128` whose numeric order equals the
    /// derived lexicographic [`Ord`] (caller, then site, then callee) —
    /// a single-word comparison key for sort-heavy internal paths.
    pub(crate) fn sort_key(self) -> u128 {
        (u128::from(u32::from(self.caller)) << 64)
            | (u128::from(u32::from(self.site)) << 32)
            | u128::from(u32::from(self.callee))
    }
}

impl fmt::Display for CallEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -[{}]-> {}", self.caller, self.site, self.callee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_identity_includes_site() {
        let a = CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1));
        let b = CallEdge::new(MethodId::new(0), CallSiteId::new(1), MethodId::new(1));
        assert_ne!(
            a, b,
            "same caller/callee through different sites are distinct edges"
        );
    }

    #[test]
    fn display_shows_all_components() {
        let e = CallEdge::new(MethodId::new(2), CallSiteId::new(7), MethodId::new(3));
        assert_eq!(e.to_string(), "m2 -[s7]-> m3");
    }

    #[test]
    fn edges_order_deterministically() {
        let mut v = [
            CallEdge::new(MethodId::new(1), CallSiteId::new(0), MethodId::new(0)),
            CallEdge::new(MethodId::new(0), CallSiteId::new(1), MethodId::new(0)),
            CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1)),
        ];
        v.sort_unstable();
        assert_eq!(v[0].caller, MethodId::new(0));
        assert_eq!(v[0].site, CallSiteId::new(0));
    }
}
