//! The weighted dynamic call graph.

use crate::edge::CallEdge;
use crate::hash::EdgeHashBuilder;
use cbs_bytecode::{CallSiteId, MethodId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// A dynamic call graph: observed call edges with sample weights.
///
/// Weights are `f64` so the graph can represent exact counts (exhaustive
/// profiling), sample counts (sampling profilers) and decayed weights
/// (continuous profiling) uniformly.
///
/// # Weight contract
///
/// Only *positive, finite* weights are stored. Recording a zero,
/// negative, infinite or NaN weight is a silent no-op in every build
/// profile — callers that want to reject such weights must validate
/// before calling [`record`](Self::record). (Historically debug builds
/// asserted while release builds accepted; the behavior is now uniform.)
///
/// # Storage layout and determinism
///
/// Edges live in an indexed store tuned for the profiling hot path: a
/// hash map interns each edge to a dense slot, and weights live in a flat
/// `Vec<f64>`, so the per-sample cost of [`record_sample`] is one hash
/// lookup and one add — no tree rebalancing, no ordered insertion.
///
/// Determinism is preserved by the *sorted-at-boundary invariant*: a
/// permutation of the slots in ascending edge order is maintained on
/// (rare) first-insertions — eagerly for single records, amortized for
/// bulk ingestion ([`record_all_deferred`] defers it entirely until
/// [`seal`], which always produces the same unique permutation) — and
/// **every** iteration and floating-point reduction — [`iter`],
/// [`merge`], totals, per-method and per-site sums — walks edges in
/// that order. Iteration order is therefore the edge
/// order, exactly as with the previous `BTreeMap` store: every reduction
/// over a graph visits edges identically on every run and on every shard
/// of a parallel experiment, which is what keeps the sharded experiment
/// runner's output bit-identical to the serial path.
///
/// [`record_sample`]: Self::record_sample
/// [`iter`]: Self::iter
/// [`merge`]: Self::merge
/// [`record_all_deferred`]: Self::record_all_deferred
/// [`seal`]: Self::seal
#[derive(Debug, Clone, Default)]
pub struct DynamicCallGraph {
    /// Edge → dense slot. Keyed by a fast deterministic hasher: the map
    /// is a pure index whose iteration order is never observed (all
    /// walks go through `sorted`), so swapping SipHash out cannot
    /// change any output bit.
    index: HashMap<CallEdge, u32, EdgeHashBuilder>,
    /// Slot → edge, in first-observation order.
    edges: Vec<CallEdge>,
    /// Slot → accumulated weight (parallel to `edges`).
    weights: Vec<f64>,
    /// Slots in ascending edge order (the sorted-at-boundary invariant).
    sorted: Vec<u32>,
    /// Freshly interned slots not yet merged into `sorted` — the
    /// unsealed tail of a deferred bulk ingest (see [`seal`](Self::seal)).
    /// Empty whenever the graph is read.
    pending: Vec<u32>,
    /// Slot → weight as of the last [`drain_delta`](Self::drain_delta)
    /// call (lazily grown; empty until the first drain).
    flushed: Vec<f64>,
    total: f64,
}

impl DynamicCallGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` to `edge`'s slot, interning a new slot if needed.
    /// Does not touch `total`; callers keep it consistent.
    fn bump(&mut self, edge: CallEdge, weight: f64) {
        match self.index.entry(edge) {
            Entry::Occupied(slot) => self.weights[*slot.get() as usize] += weight,
            Entry::Vacant(v) => {
                let slot = self.edges.len() as u32;
                v.insert(slot);
                self.edges.push(edge);
                self.weights.push(weight);
                let edges = &self.edges;
                let pos = self.sorted.partition_point(|&s| edges[s as usize] < edge);
                self.sorted.insert(pos, slot);
            }
        }
    }

    /// [`bump`](Self::bump) with the sorted-permutation maintenance
    /// deferred: freshly interned slots go onto `self.pending` instead
    /// of being spliced into `sorted` one by one; [`seal`](Self::seal)
    /// restores the invariant once per batch (or once per *many*
    /// batches — the profile server seals a shard only when it is about
    /// to be read). A deferred ingest of `k` new edges costs `O(k)`
    /// hash inserts now plus one `O(n + k log k)` seal later, instead
    /// of the `O(n·k)` of `k` eager vector splices.
    fn bump_deferred(&mut self, edge: CallEdge, weight: f64) {
        match self.index.entry(edge) {
            Entry::Occupied(slot) => self.weights[*slot.get() as usize] += weight,
            Entry::Vacant(v) => {
                let slot = self.edges.len() as u32;
                v.insert(slot);
                self.edges.push(edge);
                self.weights.push(weight);
                self.pending.push(slot);
            }
        }
    }

    /// Returns `true` when the sorted-at-boundary invariant currently
    /// holds (no deferred slots outstanding). Reads that walk the
    /// sorted permutation require a sealed graph.
    pub fn is_sealed(&self) -> bool {
        self.pending.is_empty()
    }

    /// Restores the sorted-at-boundary invariant after deferred bulk
    /// ingestion ([`record_all_deferred`](Self::record_all_deferred)):
    /// merges the pending slots into the sorted permutation. Edges are
    /// unique per slot (pending slots are freshly interned, so no
    /// pending edge equals an existing one), so the result is the
    /// *unique* ascending-edge permutation — identical to having
    /// spliced each slot in eagerly, no matter how the ingestion was
    /// batched. Idempotent and O(1) when already sealed.
    pub fn seal(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        // Materialize packed comparison keys once (`pending` holds
        // slots in interning order, so this reads `edges` forward) —
        // sorting gathered 12-byte edges through a key closure would
        // re-load a random slot per comparison.
        let mut keyed: Vec<(u128, u32)> = pending
            .iter()
            .map(|&s| (self.edges[s as usize].sort_key(), s))
            .collect();
        keyed.sort_unstable();
        let old = &self.sorted;
        let edges = &self.edges;
        let k = keyed.len();
        let n = old.len();
        let mut merged = Vec::with_capacity(n + k);
        if n > 0 && k * (n.ilog2() as usize + 1) < n {
            // Few new edges, large permutation: gallop. Each pending
            // slot's position is found by binary search and the run of
            // old slots before it is bulk-copied — `O(k log n)` gathered
            // comparisons plus one memcpy of the permutation.
            let mut i = 0;
            for &(key, slot) in &keyed {
                let run = old[i..].partition_point(|&s| edges[s as usize].sort_key() < key);
                merged.extend_from_slice(&old[i..i + run]);
                merged.push(slot);
                i += run;
            }
            merged.extend_from_slice(&old[i..]);
        } else {
            // Comparable sizes: element-wise linear merge, `O(n + k)`.
            let (mut i, mut j) = (0, 0);
            while i < n && j < k {
                if edges[old[i] as usize].sort_key() < keyed[j].0 {
                    merged.push(old[i]);
                    i += 1;
                } else {
                    merged.push(keyed[j].1);
                    j += 1;
                }
            }
            merged.extend_from_slice(&old[i..]);
            merged.extend(keyed[j..].iter().map(|&(_, s)| s));
        }
        self.sorted = merged;
    }

    /// Records `weight` additional observations of `edge`.
    ///
    /// Non-positive and non-finite weights are ignored (see the type-level
    /// weight contract); this holds identically in debug and release
    /// builds.
    pub fn record(&mut self, edge: CallEdge, weight: f64) {
        if weight <= 0.0 || !weight.is_finite() {
            return;
        }
        self.bump(edge, weight);
        self.total += weight;
    }

    /// Records a single observation of `edge`.
    pub fn record_sample(&mut self, edge: CallEdge) {
        self.record(edge, 1.0);
    }

    /// Records one observation of every edge in `edges`, in order.
    ///
    /// Equivalent to calling [`record_sample`](Self::record_sample) per
    /// edge; this is the flush half of a buffer-then-flush sampling
    /// profiler (CBS buffers a window's samples and flushes them here
    /// when the window closes). Because unit weights are exactly
    /// representable, the resulting graph — including the exact
    /// floating-point total — depends only on the multiset of edges, not
    /// on how the batch was split.
    pub fn record_batch(&mut self, edges: &[CallEdge]) {
        for &edge in edges {
            self.bump_deferred(edge, 1.0);
        }
        self.seal();
        self.total += edges.len() as f64;
    }

    /// Records a batch of weighted `(edge, weight)` observations in
    /// order — the bulk entry point of the fleet profile server's
    /// ingest path.
    ///
    /// Exactly equivalent to calling [`record`](Self::record) per
    /// record: the same invalid weights are ignored and the same
    /// floating-point additions happen in the same order, so the
    /// resulting graph — weights, iteration order, and the exact
    /// running total — is bit-identical. The difference is purely
    /// mechanical: the sorted permutation is rebuilt once per batch
    /// instead of once per newly observed edge, keeping bulk ingestion
    /// linear in the batch instead of quadratic in new edges. In the
    /// steady state (no new edges) this path performs no allocation.
    pub fn record_all(&mut self, records: &[(CallEdge, f64)]) {
        self.record_all_deferred(records);
        self.seal();
    }

    /// [`record_all`](Self::record_all) without the final
    /// [`seal`](Self::seal): weights (and the running total) are fully
    /// applied and point lookups ([`weight`](Self::weight)) see them,
    /// but the sorted permutation is left stale until the caller seals.
    ///
    /// This is the aggregator's write-side fast path: a shard absorbing
    /// thousands of frames between snapshot pulls pays for permutation
    /// maintenance once per *pull* instead of once per frame. Every
    /// ordered read (iteration, merge, drain, totals recomputation)
    /// requires a sealed graph — debug builds assert it.
    pub fn record_all_deferred(&mut self, records: &[(CallEdge, f64)]) {
        for &(edge, weight) in records {
            if weight <= 0.0 || !weight.is_finite() {
                continue;
            }
            self.bump_deferred(edge, weight);
            self.total += weight;
        }
    }

    /// Absolute weight of `edge` (0 if absent).
    pub fn weight(&self, edge: &CallEdge) -> f64 {
        self.index
            .get(edge)
            .map_or(0.0, |&slot| self.weights[slot as usize])
    }

    /// `edge`'s share of the total weight, in **percent** (0–100).
    ///
    /// This is the `Weight(e, DCG)` quantity of the paper's overlap metric.
    pub fn weight_percent(&self, edge: &CallEdge) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            100.0 * self.weight(edge) / self.total
        }
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when no edge has been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over `(edge, weight)` pairs in ascending edge order.
    ///
    /// Requires a sealed graph (the default everywhere except between a
    /// [`record_all_deferred`](Self::record_all_deferred) and its
    /// [`seal`](Self::seal); debug builds assert).
    pub fn iter(&self) -> impl Iterator<Item = (&CallEdge, f64)> + '_ {
        debug_assert!(
            self.is_sealed(),
            "ordered read of an unsealed graph: call seal() after record_all_deferred()"
        );
        self.sorted
            .iter()
            .map(move |&s| (&self.edges[s as usize], self.weights[s as usize]))
    }

    /// All edges sorted by descending weight (ties broken by edge order,
    /// so the result is deterministic).
    pub fn edges_by_weight(&self) -> Vec<(CallEdge, f64)> {
        let mut v: Vec<(CallEdge, f64)> = self.iter().map(|(e, w)| (*e, w)).collect();
        v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// The `n` heaviest edges.
    pub fn top_edges(&self, n: usize) -> Vec<(CallEdge, f64)> {
        let mut v = self.edges_by_weight();
        v.truncate(n);
        v
    }

    /// Edges whose share of total weight is at least `percent` (the old
    /// Jikes inliner's "hot edge" query, with `percent = 1.0`).
    pub fn hot_edges(&self, percent: f64) -> Vec<(CallEdge, f64)> {
        self.edges_by_weight()
            .into_iter()
            .filter(|(e, _)| self.weight_percent(e) >= percent)
            .collect()
    }

    /// Merges another graph's observations into this one.
    ///
    /// Edges are visited in edge order and the total is recomputed from
    /// the merged weights afterwards, so the result — including the exact
    /// floating-point total — depends only on the *multiset* of merged
    /// graphs, not on incidental iteration state. For integer-valued
    /// weights (every sampling and exhaustive profiler records unit
    /// samples) merging is exactly commutative and associative.
    pub fn merge(&mut self, other: &DynamicCallGraph) {
        debug_assert!(other.is_sealed(), "merge source must be sealed");
        for (&e, w) in other
            .sorted
            .iter()
            .map(|&s| (&other.edges[s as usize], other.weights[s as usize]))
        {
            if w > 0.0 {
                self.bump_deferred(e, w);
            }
        }
        self.seal();
        self.recompute_total();
    }

    /// Merges every graph of `shards` into one, in iteration order.
    ///
    /// This is the deterministic reduction step of the parallel
    /// experiment runner: shards are always passed in stable cell order,
    /// so the merged graph (weights *and* total) is identical to what the
    /// serial path would have accumulated.
    pub fn merge_all<'a>(shards: impl IntoIterator<Item = &'a DynamicCallGraph>) -> Self {
        let mut out = DynamicCallGraph::new();
        for g in shards {
            out.merge(g);
        }
        out
    }

    /// Recomputes `total` as the edge-ordered sum of stored weights.
    ///
    /// Keeps the `weight_percent` denominator consistent with the stored
    /// weights after bulk operations, so `overlap(g, g) == 100` holds for
    /// merged graphs to within one rounding step per edge.
    fn recompute_total(&mut self) {
        debug_assert!(self.is_sealed(), "recompute_total needs the sorted order");
        // `Sum<f64>` folds from `-0.0` (the IEEE additive identity), so
        // an empty sum is `-0.0` while a fresh graph's field default is
        // `+0.0`. Adding `+0.0` canonicalizes `-0.0` to `+0.0` and is a
        // bitwise no-op for every other value stored weights can sum to,
        // keeping empty graphs bit-identical however they were produced.
        self.total = self
            .sorted
            .iter()
            .map(|&s| self.weights[s as usize])
            .sum::<f64>()
            + 0.0;
    }

    /// Drains the weight growth since the previous drain, in ascending
    /// edge order.
    ///
    /// Returns `(edge, current_weight - weight_at_last_drain)` for every
    /// edge that gained weight, and marks the current weights as flushed.
    /// The first drain therefore returns the whole graph (a *snapshot* in
    /// the `cbs-profiled` wire format); later drains return only the
    /// increments (*delta* frames). All returned deltas are positive and
    /// finite, so replaying them through [`record`](Self::record) on any
    /// other graph reconstructs this graph's growth exactly: unit samples
    /// sum to exactly representable values, and an arbitrary weight `w`
    /// splits across drains as `w1 + (w - w1)` which
    /// [`record`](Self::record)'s additions re-sum bit-identically.
    ///
    /// Weight *loss* between drains (only possible via [`decay`]) is not
    /// emitted — the flushed mark is silently lowered instead. Decay is an
    /// aggregator-side operation in the profile service; clients that
    /// stream their graphs out must not decay locally.
    ///
    /// [`decay`]: Self::decay
    pub fn drain_delta(&mut self) -> Vec<(CallEdge, f64)> {
        self.seal();
        self.flushed.resize(self.weights.len(), 0.0);
        let mut out = Vec::new();
        for &s in &self.sorted {
            let slot = s as usize;
            let cur = self.weights[slot];
            if cur > self.flushed[slot] {
                out.push((self.edges[slot], cur - self.flushed[slot]));
            }
            self.flushed[slot] = cur;
        }
        out
    }

    /// Multiplies every weight by `factor` (exponential decay for
    /// continuous profiling). Edges whose weight falls below `min_weight`
    /// are dropped.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `factor` is negative or non-finite.
    pub fn decay(&mut self, factor: f64, min_weight: f64) {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        self.seal();
        for w in &mut self.weights {
            *w *= factor;
        }
        if self.weights.iter().any(|w| *w < min_weight) {
            // Rare path: rebuild the store around the surviving edges,
            // preserving first-observation order. Flushed marks travel
            // with their edge through the slot reshuffle.
            let survivors: Vec<(CallEdge, f64, f64)> = self
                .edges
                .iter()
                .zip(&self.weights)
                .enumerate()
                .filter(|(_, (_, &w))| w >= min_weight)
                .map(|(slot, (&e, &w))| (e, w, self.flushed.get(slot).copied().unwrap_or(0.0)))
                .collect();
            let had_flushed = !self.flushed.is_empty();
            self.index.clear();
            self.edges.clear();
            self.weights.clear();
            self.sorted.clear();
            self.flushed.clear();
            for (e, w, f) in survivors {
                self.bump_deferred(e, w);
                if had_flushed {
                    self.flushed.push(f);
                }
            }
            self.seal();
        }
        self.recompute_total();
    }

    /// Total weight flowing out of `caller`.
    pub fn outgoing_weight(&self, caller: MethodId) -> f64 {
        self.iter()
            .filter(|(e, _)| e.caller == caller)
            .map(|(_, w)| w)
            .sum()
    }

    /// Total weight flowing into `callee` (its sampled invocation
    /// frequency).
    pub fn incoming_weight(&self, callee: MethodId) -> f64 {
        self.iter()
            .filter(|(e, _)| e.callee == callee)
            .map(|(_, w)| w)
            .sum()
    }

    /// The distribution of callees observed at one call site, as
    /// `(callee, weight)` sorted by descending weight.
    ///
    /// This is the input to the paper's 40% guarded-inlining rule.
    pub fn site_distribution(&self, site: CallSiteId) -> Vec<(MethodId, f64)> {
        let mut per_callee: HashMap<MethodId, f64> = HashMap::new();
        for (e, w) in self.iter() {
            if e.site == site {
                *per_callee.entry(e.callee).or_insert(0.0) += w;
            }
        }
        let mut v: Vec<(MethodId, f64)> = per_callee.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Weight observed at one call site across all callees.
    pub fn site_weight(&self, site: CallSiteId) -> f64 {
        self.iter()
            .filter(|(e, _)| e.site == site)
            .map(|(_, w)| w)
            .sum()
    }

    /// All distinct call sites with positive weight.
    pub fn sites(&self) -> Vec<CallSiteId> {
        let mut v: Vec<CallSiteId> = self.edges.iter().map(|e| e.site).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Merges two increment batches (as produced by
/// [`DynamicCallGraph::drain_delta`]) into one canonical batch: edges
/// ascending, duplicates summed, non-positive and non-finite increments
/// dropped per the graph weight contract.
///
/// This is the requeue/coalescing primitive of the resilient profile
/// transport: two delta flushes that could not be shipped are merged
/// into a single equivalent flush. Duplicate weights are summed in
/// input order (`a` before `b`, each in its own order), so coalescing
/// is bit-deterministic; for the integral sample counts every profiler
/// in this workspace emits, it is also exactly lossless — replaying the
/// merged batch through [`DynamicCallGraph::record`] yields the same
/// graph as replaying the two originals in order.
pub fn coalesce_increments(a: &[(CallEdge, f64)], b: &[(CallEdge, f64)]) -> Vec<(CallEdge, f64)> {
    let mut records: Vec<(CallEdge, f64)> = a
        .iter()
        .chain(b)
        .filter(|(_, w)| w.is_finite() && *w > 0.0)
        .copied()
        .collect();
    // Stable sort: duplicates keep their input order, so the summation
    // below always adds in the same order.
    records.sort_by_key(|r| r.0);
    records.dedup_by(|later, first| {
        if later.0 == first.0 {
            first.1 += later.1;
            true
        } else {
            false
        }
    });
    records
}

/// Graphs compare as (edge → weight) maps plus the running total, so
/// equality is independent of first-observation order — the same
/// semantics the previous ordered-map store had.
impl PartialEq for DynamicCallGraph {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total
            && self.edges.len() == other.edges.len()
            && self.iter().eq(other.iter())
    }
}

impl FromIterator<(CallEdge, f64)> for DynamicCallGraph {
    fn from_iter<T: IntoIterator<Item = (CallEdge, f64)>>(iter: T) -> Self {
        let mut g = DynamicCallGraph::new();
        for (e, w) in iter {
            g.record(e, w);
        }
        g
    }
}

impl Extend<(CallEdge, f64)> for DynamicCallGraph {
    fn extend<T: IntoIterator<Item = (CallEdge, f64)>>(&mut self, iter: T) {
        for (e, w) in iter {
            self.record(e, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(caller: u32, site: u32, callee: u32) -> CallEdge {
        CallEdge::new(
            MethodId::new(caller),
            CallSiteId::new(site),
            MethodId::new(callee),
        )
    }

    #[test]
    fn record_accumulates() {
        let mut g = DynamicCallGraph::new();
        g.record_sample(e(0, 0, 1));
        g.record(e(0, 0, 1), 2.0);
        assert_eq!(g.weight(&e(0, 0, 1)), 3.0);
        assert_eq!(g.total_weight(), 3.0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 0.0);
        assert!(g.is_empty());
    }

    #[test]
    fn non_positive_and_non_finite_weights_ignored_uniformly() {
        // The documented contract: bad weights are silent no-ops in every
        // build profile (debug builds used to assert; release builds
        // silently accepted — now both ignore).
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), -1.0);
        g.record(e(0, 0, 1), f64::NAN);
        g.record(e(0, 0, 1), f64::INFINITY);
        g.record(e(0, 0, 1), f64::NEG_INFINITY);
        assert!(g.is_empty());
        assert_eq!(g.total_weight(), 0.0);
        // A good weight still lands, and bad ones never perturb totals.
        g.record(e(0, 0, 1), 2.0);
        g.record(e(0, 0, 1), -3.0);
        assert_eq!(g.weight(&e(0, 0, 1)), 2.0);
        assert_eq!(g.total_weight(), 2.0);
    }

    #[test]
    fn record_batch_matches_per_sample_recording() {
        let edges = [e(1, 0, 2), e(0, 0, 1), e(1, 0, 2), e(2, 1, 0)];
        let mut batched = DynamicCallGraph::new();
        batched.record_batch(&edges);
        let mut single = DynamicCallGraph::new();
        for &edge in &edges {
            single.record_sample(edge);
        }
        assert_eq!(batched, single);
        assert_eq!(batched.total_weight(), 4.0);
        // Splitting the batch does not change anything either.
        let mut split = DynamicCallGraph::new();
        split.record_batch(&edges[..1]);
        split.record_batch(&edges[1..]);
        split.record_batch(&[]);
        assert_eq!(split, single);
    }

    #[test]
    fn record_all_is_bit_identical_to_per_record_recording() {
        // Interleaves new edges, repeats, invalid weights, and
        // non-integral weights so both the deferred-permutation path and
        // the weight contract are exercised.
        let records: Vec<(CallEdge, f64)> = (0..200u32)
            .map(|i| {
                let w = match i % 5 {
                    0 => f64::from(i) + 0.25,
                    1 => -1.0,     // ignored
                    2 => f64::NAN, // ignored
                    _ => f64::from(i % 13 + 1),
                };
                (e(i % 17, i % 7, i % 11), w)
            })
            .collect();
        let mut batched = DynamicCallGraph::new();
        batched.record_all(&records);
        let mut single = DynamicCallGraph::new();
        for &(edge, w) in &records {
            single.record(edge, w);
        }
        assert_eq!(batched, single);
        assert_eq!(
            batched.total_weight().to_bits(),
            single.total_weight().to_bits()
        );
        let batched_iter: Vec<(CallEdge, u64)> =
            batched.iter().map(|(e, w)| (*e, w.to_bits())).collect();
        let single_iter: Vec<(CallEdge, u64)> =
            single.iter().map(|(e, w)| (*e, w.to_bits())).collect();
        assert_eq!(batched_iter, single_iter, "iteration order and weight bits");
        // Splitting the batch arbitrarily changes nothing either.
        let mut split = DynamicCallGraph::new();
        split.record_all(&records[..37]);
        split.record_all(&records[37..]);
        split.record_all(&[]);
        assert_eq!(
            split.total_weight().to_bits(),
            single.total_weight().to_bits()
        );
        assert_eq!(split, single);
    }

    #[test]
    fn deferred_permutation_merge_keeps_iter_sorted_after_bulk_ops() {
        // Descending-key batches force merge_pending to interleave new
        // slots ahead of existing ones.
        let mut g = DynamicCallGraph::new();
        g.record_all(&[(e(9, 0, 0), 1.0), (e(5, 0, 0), 2.0)]);
        g.record_all(&[(e(7, 0, 0), 3.0), (e(1, 0, 0), 4.0), (e(5, 0, 0), 1.0)]);
        g.record_batch(&[e(3, 0, 0), e(0, 0, 0)]);
        let order: Vec<CallEdge> = g.iter().map(|(edge, _)| *edge).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.weight(&e(5, 0, 0)), 3.0);
        assert_eq!(g.total_weight(), 13.0);
    }

    #[test]
    fn weight_percent_normalizes() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 3.0);
        g.record(e(0, 1, 2), 1.0);
        assert!((g.weight_percent(&e(0, 0, 1)) - 75.0).abs() < 1e-12);
        assert!((g.weight_percent(&e(0, 1, 2)) - 25.0).abs() < 1e-12);
        assert_eq!(g.weight_percent(&e(9, 9, 9)), 0.0);
    }

    #[test]
    fn empty_graph_percent_is_zero() {
        let g = DynamicCallGraph::new();
        assert_eq!(g.weight_percent(&e(0, 0, 1)), 0.0);
    }

    #[test]
    fn edges_by_weight_is_sorted_and_deterministic() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 1.0);
        g.record(e(0, 1, 2), 5.0);
        g.record(e(1, 2, 3), 1.0);
        let v = g.edges_by_weight();
        assert_eq!(v[0].0, e(0, 1, 2));
        // Ties broken by edge order.
        assert_eq!(v[1].0, e(0, 0, 1));
        assert_eq!(v[2].0, e(1, 2, 3));
        assert_eq!(g.top_edges(1).len(), 1);
    }

    #[test]
    fn hot_edges_threshold() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 99.0);
        g.record(e(0, 1, 2), 1.0);
        let hot = g.hot_edges(1.0);
        assert_eq!(hot.len(), 2);
        let hot = g.hot_edges(2.0);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, e(0, 0, 1));
    }

    #[test]
    fn merge_sums_weights() {
        let mut a = DynamicCallGraph::new();
        a.record(e(0, 0, 1), 1.0);
        let mut b = DynamicCallGraph::new();
        b.record(e(0, 0, 1), 2.0);
        b.record(e(1, 1, 2), 4.0);
        a.merge(&b);
        assert_eq!(a.weight(&e(0, 0, 1)), 3.0);
        assert_eq!(a.weight(&e(1, 1, 2)), 4.0);
        assert_eq!(a.total_weight(), 7.0);
    }

    #[test]
    fn merge_all_equals_sequential_merges() {
        let shards: Vec<DynamicCallGraph> = (0..4)
            .map(|i| {
                let mut g = DynamicCallGraph::new();
                g.record(e(i, 0, 1), f64::from(i + 1));
                g.record(e(0, 0, 1), 2.0);
                g
            })
            .collect();
        let merged = DynamicCallGraph::merge_all(&shards);
        let mut seq = DynamicCallGraph::new();
        for s in &shards {
            seq.merge(s);
        }
        assert_eq!(merged, seq);
        assert_eq!(merged.total_weight(), seq.total_weight());
    }

    #[test]
    fn merge_is_commutative_and_associative_for_integer_weights() {
        let mk = |edges: &[(u32, u32, u32, f64)]| {
            let mut g = DynamicCallGraph::new();
            for &(c, s, t, w) in edges {
                g.record(e(c, s, t), w);
            }
            g
        };
        let a = mk(&[(0, 0, 1, 3.0), (1, 1, 2, 7.0)]);
        let b = mk(&[(0, 0, 1, 2.0), (2, 2, 3, 5.0)]);
        let c = mk(&[(1, 1, 2, 1.0), (0, 0, 1, 4.0)]);

        let abc = DynamicCallGraph::merge_all([&a, &b, &c]);
        let cba = DynamicCallGraph::merge_all([&c, &b, &a]);
        assert_eq!(abc, cba, "merge order must not matter");

        let ab_then_c = {
            let mut x = DynamicCallGraph::merge_all([&a, &b]);
            x.merge(&c);
            x
        };
        let a_then_bc = {
            let mut x = a.clone();
            x.merge(&DynamicCallGraph::merge_all([&b, &c]));
            x
        };
        assert_eq!(ab_then_c, a_then_bc, "merge grouping must not matter");
        assert_eq!(abc.total_weight(), 22.0);
    }

    #[test]
    fn iteration_is_edge_ordered() {
        let mut g = DynamicCallGraph::new();
        g.record(e(2, 0, 0), 1.0);
        g.record(e(0, 1, 0), 1.0);
        g.record(e(0, 0, 1), 1.0);
        let order: Vec<CallEdge> = g.iter().map(|(edge, _)| *edge).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "iter() must be deterministic edge order");
    }

    #[test]
    fn equality_ignores_observation_order() {
        let mut a = DynamicCallGraph::new();
        a.record(e(2, 0, 0), 1.0);
        a.record(e(0, 0, 1), 2.0);
        let mut b = DynamicCallGraph::new();
        b.record(e(0, 0, 1), 2.0);
        b.record(e(2, 0, 0), 1.0);
        assert_eq!(a, b, "first-observation order must not affect equality");
        b.record(e(2, 0, 0), 0.5);
        assert_ne!(a, b);
    }

    #[test]
    fn decay_scales_and_prunes() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 10.0);
        g.record(e(0, 1, 2), 0.5);
        g.decay(0.5, 0.5);
        assert_eq!(g.weight(&e(0, 0, 1)), 5.0);
        assert_eq!(g.weight(&e(0, 1, 2)), 0.0, "pruned below min weight");
        assert_eq!(g.num_edges(), 1);
        assert!((g.total_weight() - 5.0).abs() < 1e-12);
        // Pruned edges can be re-observed afresh.
        g.record(e(0, 1, 2), 2.0);
        assert_eq!(g.weight(&e(0, 1, 2)), 2.0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn drain_delta_first_drain_is_a_snapshot() {
        let mut g = DynamicCallGraph::new();
        g.record(e(1, 0, 2), 3.0);
        g.record(e(0, 0, 1), 1.0);
        let d = g.drain_delta();
        // Full graph, ascending edge order.
        assert_eq!(d, vec![(e(0, 0, 1), 1.0), (e(1, 0, 2), 3.0)]);
        // Nothing changed since: empty delta.
        assert!(g.drain_delta().is_empty());
    }

    #[test]
    fn drain_delta_emits_only_growth() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 2.0);
        g.drain_delta();
        g.record(e(0, 0, 1), 0.5);
        g.record(e(2, 1, 3), 4.0);
        let d = g.drain_delta();
        assert_eq!(d, vec![(e(0, 0, 1), 0.5), (e(2, 1, 3), 4.0)]);
        assert!(g.drain_delta().is_empty());
    }

    #[test]
    fn drain_delta_replay_reconstructs_growth_exactly() {
        let mut src = DynamicCallGraph::new();
        let mut dst = DynamicCallGraph::new();
        for round in 0..5u32 {
            for i in 0..20u32 {
                src.record(e(i % 7, i % 3, i % 5), f64::from(round * i + 1) * 0.25);
            }
            for (edge, dw) in src.drain_delta() {
                dst.record(edge, dw);
            }
        }
        assert_eq!(src, dst, "replayed deltas must rebuild the source graph");
        assert_eq!(src.total_weight().to_bits(), dst.total_weight().to_bits());
    }

    #[test]
    fn drain_delta_survives_decay_rebuild() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 8.0);
        g.record(e(1, 1, 2), 0.5);
        g.drain_delta();
        // Prune e(1,1,2); slots are rebuilt, flushed marks must follow
        // their edges (and be lowered to the decayed weights).
        g.decay(0.5, 0.5);
        assert_eq!(g.num_edges(), 1);
        // No growth since the drain: decay loss is not emitted.
        assert!(g.drain_delta().is_empty());
        g.record(e(0, 0, 1), 1.0);
        g.record(e(1, 1, 2), 2.0);
        let d = g.drain_delta();
        assert_eq!(d, vec![(e(0, 0, 1), 1.0), (e(1, 1, 2), 2.0)]);
    }

    #[test]
    fn recomputed_empty_total_is_canonical_positive_zero() {
        // merge/decay recompute the total via `Sum<f64>`, whose identity
        // is `-0.0`; the canonicalization keeps empty graphs bitwise
        // identical to a fresh graph however they were reached.
        let empty_merged = DynamicCallGraph::merge_all([&DynamicCallGraph::new()]);
        assert_eq!(empty_merged.total_weight().to_bits(), 0.0f64.to_bits());
        let mut decayed_empty = DynamicCallGraph::new();
        decayed_empty.record(e(0, 0, 1), 1.0);
        decayed_empty.decay(0.0, 0.5);
        assert!(decayed_empty.is_empty());
        assert_eq!(decayed_empty.total_weight().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn coalesce_increments_is_lossless_and_canonical() {
        let a = vec![(e(1, 0, 2), 2.0), (e(0, 0, 1), 1.0)];
        let b = vec![
            (e(1, 0, 2), 3.0),
            (e(2, 1, 3), 4.0),
            (e(9, 9, 9), f64::NAN), // dropped per weight contract
            (e(9, 9, 9), -1.0),     // dropped
        ];
        let merged = coalesce_increments(&a, &b);
        assert_eq!(
            merged,
            vec![(e(0, 0, 1), 1.0), (e(1, 0, 2), 5.0), (e(2, 1, 3), 4.0)]
        );
        // Replaying the merged batch equals replaying both originals.
        let mut direct = DynamicCallGraph::new();
        for &(edge, w) in a.iter().chain(&b) {
            direct.record(edge, w);
        }
        let mut via_merged = DynamicCallGraph::new();
        for &(edge, w) in &merged {
            via_merged.record(edge, w);
        }
        assert_eq!(direct, via_merged);
        // Coalescing a single batch canonicalizes it.
        assert_eq!(
            coalesce_increments(&a, &[]),
            vec![(e(0, 0, 1), 1.0), (e(1, 0, 2), 2.0)]
        );
    }

    #[test]
    fn incoming_outgoing() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 1.0);
        g.record(e(0, 1, 2), 2.0);
        g.record(e(2, 2, 1), 4.0);
        assert_eq!(g.outgoing_weight(MethodId::new(0)), 3.0);
        assert_eq!(g.incoming_weight(MethodId::new(1)), 5.0);
        assert_eq!(g.incoming_weight(MethodId::new(9)), 0.0);
    }

    #[test]
    fn site_distribution_sorts_by_weight() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 5, 1), 1.0);
        g.record(e(0, 5, 2), 9.0);
        g.record(e(0, 6, 3), 100.0);
        let d = g.site_distribution(CallSiteId::new(5));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (MethodId::new(2), 9.0));
        assert_eq!(g.site_weight(CallSiteId::new(5)), 10.0);
        assert_eq!(g.sites(), vec![CallSiteId::new(5), CallSiteId::new(6)]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let g: DynamicCallGraph = vec![(e(0, 0, 1), 2.0), (e(0, 0, 1), 3.0)]
            .into_iter()
            .collect();
        assert_eq!(g.weight(&e(0, 0, 1)), 5.0);
        let mut g2 = DynamicCallGraph::new();
        g2.extend(g.iter().map(|(e, w)| (*e, w)));
        assert_eq!(g2.total_weight(), 5.0);
    }
}
