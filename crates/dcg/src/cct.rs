//! Calling context tree (context-sensitive profiles).
//!
//! The paper notes (§1, §7) that the CBS mechanism "is easily extensible to
//! context-sensitive profiling": a sample is a call-stack walk, so instead
//! of recording only the topmost edge, the profiler may record the entire
//! path into a calling context tree (Ammons et al.; used online by Whaley).
//! This module provides that representation.

use crate::graph::DynamicCallGraph;
use crate::CallEdge;
use cbs_bytecode::{CallSiteId, MethodId};
use std::collections::HashMap;
use std::fmt;

/// Identifies a node of a [`CallingContextTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CctNodeId(u32);

impl CctNodeId {
    const ROOT: CctNodeId = CctNodeId(0);

    /// Raw dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CctNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One step of a calling context: entering `method` through `site` in the
/// parent context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextStep {
    /// Call site in the parent frame.
    pub site: CallSiteId,
    /// Method entered.
    pub method: MethodId,
}

#[derive(Debug, Clone)]
struct CctNode {
    step: Option<ContextStep>, // None only for the root
    parent: Option<CctNodeId>,
    weight: f64,
    children: HashMap<ContextStep, CctNodeId>,
}

/// A weighted calling context tree.
///
/// Each node represents a distinct call path from the program entry; a
/// node's weight counts samples whose innermost frame had that path.
#[derive(Debug, Clone)]
pub struct CallingContextTree {
    nodes: Vec<CctNode>,
}

impl Default for CallingContextTree {
    fn default() -> Self {
        Self::new()
    }
}

impl CallingContextTree {
    /// Creates a tree containing only the synthetic root.
    pub fn new() -> Self {
        Self {
            nodes: vec![CctNode {
                step: None,
                parent: None,
                weight: 0.0,
                children: HashMap::new(),
            }],
        }
    }

    /// The synthetic root node.
    pub fn root(&self) -> CctNodeId {
        CctNodeId::ROOT
    }

    /// Number of nodes including the root.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Records one sample whose stack, outermost first, is `path`.
    ///
    /// Interior nodes are created on demand; only the innermost node's
    /// weight is incremented. Returns the innermost node.
    pub fn add_sample(&mut self, path: &[ContextStep]) -> CctNodeId {
        self.add_weighted_sample(path, 1.0)
    }

    /// Records `weight` samples of `path`.
    pub fn add_weighted_sample(&mut self, path: &[ContextStep], weight: f64) -> CctNodeId {
        self.add_weighted_sample_iter(path.iter().copied(), weight)
    }

    /// Records one sample whose path (outermost first) is yielded by
    /// `steps`, without requiring a materialized slice.
    ///
    /// This is the hot-path entry point: samplers feed
    /// `StackSlice::context_steps()` straight into the tree walk, so a
    /// context-sensitive sample costs no allocation.
    pub fn add_sample_iter(&mut self, steps: impl IntoIterator<Item = ContextStep>) -> CctNodeId {
        self.add_weighted_sample_iter(steps, 1.0)
    }

    /// Records `weight` samples of the path yielded by `steps`.
    pub fn add_weighted_sample_iter(
        &mut self,
        steps: impl IntoIterator<Item = ContextStep>,
        weight: f64,
    ) -> CctNodeId {
        let mut cur = CctNodeId::ROOT;
        for step in steps {
            cur = self.child_or_insert(cur, step);
        }
        self.nodes[cur.index()].weight += weight;
        cur
    }

    fn child_or_insert(&mut self, parent: CctNodeId, step: ContextStep) -> CctNodeId {
        if let Some(&id) = self.nodes[parent.index()].children.get(&step) {
            return id;
        }
        let id = CctNodeId(self.nodes.len() as u32);
        self.nodes.push(CctNode {
            step: Some(step),
            parent: Some(parent),
            weight: 0.0,
            children: HashMap::new(),
        });
        self.nodes[parent.index()].children.insert(step, id);
        id
    }

    /// The context step that labels `node` (`None` for the root).
    pub fn step(&self, node: CctNodeId) -> Option<ContextStep> {
        self.nodes[node.index()].step
    }

    /// The parent of `node` (`None` for the root).
    pub fn parent(&self, node: CctNodeId) -> Option<CctNodeId> {
        self.nodes[node.index()].parent
    }

    /// Sample weight recorded at exactly this context.
    pub fn weight(&self, node: CctNodeId) -> f64 {
        self.nodes[node.index()].weight
    }

    /// Sum of weights over all nodes.
    pub fn total_weight(&self) -> f64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// The full path of `node`, outermost first.
    pub fn path(&self, node: CctNodeId) -> Vec<ContextStep> {
        let mut steps = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            if let Some(s) = self.nodes[id.index()].step {
                steps.push(s);
            }
            cur = self.nodes[id.index()].parent;
        }
        steps.reverse();
        steps
    }

    /// Longest path length in the tree.
    pub fn max_depth(&self) -> usize {
        fn depth(t: &CallingContextTree, n: CctNodeId) -> usize {
            t.nodes[n.index()]
                .children
                .values()
                .map(|c| 1 + depth(t, *c))
                .max()
                .unwrap_or(0)
        }
        depth(self, CctNodeId::ROOT)
    }

    /// Collapses the context tree to a context-insensitive DCG.
    ///
    /// Every non-root node whose parent is also non-root contributes its
    /// *subtree* weight to the edge `(parent.method, node.site,
    /// node.method)`: a sample taken in some deep context witnessed every
    /// call edge on its path, which is exactly what a call-stack-walking
    /// sampler records into a flat DCG.
    pub fn to_dcg(&self) -> DynamicCallGraph {
        // Compute subtree weights iteratively (children were always
        // allocated after their parents, so a reverse scan accumulates).
        let mut subtree: Vec<f64> = self.nodes.iter().map(|n| n.weight).collect();
        for idx in (1..self.nodes.len()).rev() {
            if let Some(p) = self.nodes[idx].parent {
                subtree[p.index()] += subtree[idx];
            }
        }
        let mut dcg = DynamicCallGraph::new();
        for (idx, node) in self.nodes.iter().enumerate().skip(1) {
            let (Some(step), Some(parent)) = (node.step, node.parent) else {
                continue;
            };
            let Some(parent_step) = self.nodes[parent.index()].step else {
                continue; // parent is the root: no caller frame
            };
            if subtree[idx] > 0.0 {
                dcg.record(
                    CallEdge::new(parent_step.method, step.site, step.method),
                    subtree[idx],
                );
            }
        }
        dcg
    }

    /// Iterates over `(node, step, weight)` for every non-root node.
    pub fn iter(&self) -> impl Iterator<Item = (CctNodeId, ContextStep, f64)> + '_ {
        self.nodes.iter().enumerate().skip(1).map(|(i, n)| {
            (
                CctNodeId(i as u32),
                n.step.expect("non-root nodes have steps"),
                n.weight,
            )
        })
    }

    /// Collects every positively weighted context as `(path, weight)`.
    ///
    /// Paths identify contexts structurally (node ids differ between
    /// trees), which is what context-sensitive overlap needs.
    pub fn weighted_paths(&self) -> Vec<(Vec<ContextStep>, f64)> {
        self.iter()
            .filter(|(_, _, w)| *w > 0.0)
            .map(|(node, _, w)| (self.path(node), w))
            .collect()
    }
}

/// The overlap metric lifted to calling contexts: each distinct call
/// *path* is treated as an edge, weights are shares of total tree weight.
///
/// Context-sensitive profiles are strictly harder to converge than flat
/// DCGs (many contexts share each edge), which is what the
/// context-sensitivity experiment quantifies.
pub fn overlap_cct(a: &CallingContextTree, b: &CallingContextTree) -> f64 {
    let ta = a.total_weight();
    let tb = b.total_weight();
    if ta <= 0.0 || tb <= 0.0 {
        return 0.0;
    }
    let pa = a.weighted_paths();
    let bmap: std::collections::HashMap<Vec<ContextStep>, f64> =
        b.weighted_paths().into_iter().collect();
    let mut sum = 0.0;
    for (path, wa) in pa {
        if let Some(wb) = bmap.get(&path) {
            sum += (100.0 * wa / ta).min(100.0 * wb / tb);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(site: u32, method: u32) -> ContextStep {
        ContextStep {
            site: CallSiteId::new(site),
            method: MethodId::new(method),
        }
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = CallingContextTree::new();
        t.add_sample(&[step(0, 1), step(1, 2)]);
        t.add_sample(&[step(0, 1), step(2, 3)]);
        // root + m1 + m2 + m3
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.total_weight(), 2.0);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn same_method_different_context_distinct_nodes() {
        let mut t = CallingContextTree::new();
        let a = t.add_sample(&[step(0, 1), step(1, 9)]);
        let b = t.add_sample(&[step(0, 2), step(1, 9)]);
        assert_ne!(a, b, "m9 under m1 and under m2 are distinct contexts");
        assert_eq!(t.step(a), t.step(b));
    }

    #[test]
    fn path_round_trips() {
        let mut t = CallingContextTree::new();
        let p = vec![step(0, 1), step(3, 4), step(5, 6)];
        let leaf = t.add_sample(&p);
        assert_eq!(t.path(leaf), p);
        assert_eq!(t.path(t.root()), Vec::new());
    }

    #[test]
    fn weights_accumulate_per_context() {
        let mut t = CallingContextTree::new();
        let a = t.add_sample(&[step(0, 1)]);
        t.add_weighted_sample(&[step(0, 1)], 2.5);
        assert_eq!(t.weight(a), 3.5);
    }

    #[test]
    fn to_dcg_uses_subtree_weights() {
        let mut t = CallingContextTree::new();
        // main -> f (sampled 1), main -> f -> g (sampled 2)
        t.add_sample(&[step(0, 1), step(1, 2)]);
        t.add_weighted_sample(&[step(0, 1), step(1, 2), step(2, 3)], 2.0);
        let dcg = t.to_dcg();
        // Edge m1->m2 witnessed by all 3 samples; m2->m3 by 2.
        let e12 = CallEdge::new(MethodId::new(1), CallSiteId::new(1), MethodId::new(2));
        let e23 = CallEdge::new(MethodId::new(2), CallSiteId::new(2), MethodId::new(3));
        assert_eq!(dcg.weight(&e12), 3.0);
        assert_eq!(dcg.weight(&e23), 2.0);
        // Root-level frame (entry method) has no caller, so no edge.
        assert_eq!(dcg.num_edges(), 2);
    }

    #[test]
    fn iter_skips_root() {
        let mut t = CallingContextTree::new();
        t.add_sample(&[step(0, 1)]);
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, step(0, 1));
    }

    #[test]
    fn weighted_paths_skip_interior_zero_nodes() {
        let mut t = CallingContextTree::new();
        t.add_sample(&[step(0, 1), step(1, 2)]);
        let paths = t.weighted_paths();
        assert_eq!(paths.len(), 1, "interior node m1 has zero weight");
        assert_eq!(paths[0].0.len(), 2);
        assert_eq!(paths[0].1, 1.0);
    }

    #[test]
    fn cct_overlap_identical_trees_is_100() {
        let mut t = CallingContextTree::new();
        t.add_weighted_sample(&[step(0, 1)], 3.0);
        t.add_weighted_sample(&[step(0, 1), step(1, 2)], 1.0);
        assert!((overlap_cct(&t, &t) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cct_overlap_distinguishes_contexts() {
        // Same flat edges, different context weights.
        let mut a = CallingContextTree::new();
        a.add_weighted_sample(&[step(0, 1), step(1, 9)], 9.0);
        a.add_weighted_sample(&[step(0, 2), step(1, 9)], 1.0);
        let mut b = CallingContextTree::new();
        b.add_weighted_sample(&[step(0, 1), step(1, 9)], 1.0);
        b.add_weighted_sample(&[step(0, 2), step(1, 9)], 9.0);
        let o = overlap_cct(&a, &b);
        assert!(
            (o - 20.0).abs() < 1e-9,
            "min(90,10)+min(10,90) = 20, got {o}"
        );
    }

    #[test]
    fn cct_overlap_empty_is_zero() {
        let t = CallingContextTree::new();
        let mut u = CallingContextTree::new();
        u.add_sample(&[step(0, 1)]);
        assert_eq!(overlap_cct(&t, &u), 0.0);
    }
}
