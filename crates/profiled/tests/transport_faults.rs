//! Transport-fault tests against a live loopback server: the
//! deterministic fault proxy drives drops, delayed (stale) replies,
//! truncations at every frame byte, connection resets, and busy
//! refusals through the client stack, and the resilient layer must
//! deliver *exactly* the same pooled profile as a fault-free run —
//! zero lost weight, zero double-counted weight, bit-identical.

use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_prng::SmallRng;
use cbs_profiled::wire::{read_msg, write_msg, OP_EPOCH, OP_PULL_CHUNK, OP_STATS, ST_ERR, ST_OK};
use cbs_profiled::{
    serve, AggregatorConfig, ClientError, Fault, FaultSchedule, FaultStream, NetConfig,
    ProfileClient, PushOutcome, ResilientClient, RetryPolicy, ServerHandle, ShardedAggregator,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn edge(rng: &mut SmallRng) -> CallEdge {
    CallEdge::new(
        MethodId::new(rng.gen_range(0..3000u32)),
        CallSiteId::new(rng.gen_range(0..8u32)),
        MethodId::new(rng.gen_range(0..3000u32)),
    )
}

fn start_server(config: NetConfig) -> ServerHandle {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
    serve("127.0.0.1:0", agg, config).expect("binds")
}

/// Short socket timeouts so tests that genuinely hit the real socket
/// (never the injected, instant "timeouts") fail fast instead of
/// stalling the suite.
fn fast_config() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..NetConfig::default()
    }
}

/// No real sleeping in deterministic tests.
fn no_sleep<S: std::io::Read + std::io::Write>(c: ResilientClient<S>) -> ResilientClient<S> {
    c.with_sleep(Box::new(|_| {}))
}

/// Regression for the reply-desynchronization bug: a reply that arrives
/// after the client's timeout must never be attributed to the next
/// request. First demonstrate the failure mode against a naive client,
/// then show [`ProfileClient`] poisons itself instead.
#[test]
fn late_reply_is_never_attributed_to_the_next_request() {
    let config = fast_config();
    let server = start_server(config);

    // A naive client that keeps using the connection after a timeout
    // reads the *stats* answer as the reply to its *epoch* request.
    let schedule = FaultSchedule::scripted([Fault::DelayReply, Fault::None]).shared();
    let mut naive = FaultStream::connect(server.addr(), config, schedule).expect("connects");
    write_msg(&mut naive, &[&[OP_STATS]]).expect("request sent");
    let err = read_msg(&mut naive, config.max_frame_bytes).expect_err("reply delayed past timeout");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    write_msg(&mut naive, &[&[OP_EPOCH]]).expect("next request sent");
    let misattributed = read_msg(&mut naive, config.max_frame_bytes)
        .expect("stale bytes are readable")
        .expect("a whole frame is buffered");
    assert_eq!(misattributed[0], ST_OK);
    assert!(
        String::from_utf8_lossy(&misattributed[1..]).contains("frames="),
        "the 'epoch reply' is actually the stale stats reply: {:?}",
        String::from_utf8_lossy(&misattributed[1..])
    );

    // ProfileClient refuses to fall into that trap: the timed-out
    // exchange poisons the connection and every later call fails fast.
    let schedule = FaultSchedule::scripted([Fault::DelayReply, Fault::None]).shared();
    let stream = FaultStream::connect(server.addr(), config, schedule).expect("connects");
    let mut client = ProfileClient::from_stream(stream, config);
    match client.stats_text() {
        Err(ClientError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::TimedOut),
        other => panic!("delayed reply must surface as a timeout: {other:?}"),
    }
    assert!(client.is_poisoned());
    match client.advance_epoch() {
        Err(ClientError::Poisoned) => {}
        other => panic!("poisoned connection must refuse the next exchange: {other:?}"),
    }
    server.shutdown();
}

/// Wire-level fault matrix, reply side: the reply truncated at *every*
/// byte boundary, a mid-exchange reset, and a busy refusal. Every
/// transport fault poisons; the server-side refusal does not.
#[test]
fn reply_fault_matrix_poisons_exactly_the_transport_faults() {
    let config = fast_config();
    let server = start_server(config);

    // Measure the clean stats reply so the truncation sweep can cover
    // every byte of the frame (4-byte header + status + payload).
    let mut probe = ProfileClient::connect(server.addr(), config).expect("connects");
    let stats = probe.stats_text().expect("clean stats");
    let frame_len = 4 + 1 + stats.len();

    for cut in 0..frame_len {
        let schedule = FaultSchedule::scripted([Fault::TruncateReply(cut)]).shared();
        let stream = FaultStream::connect(server.addr(), config, schedule).expect("connects");
        let mut client = ProfileClient::from_stream(stream, config);
        match client.stats_text() {
            Err(ClientError::Io(_) | ClientError::Protocol(_)) => {}
            other => panic!("cut at byte {cut} must fail the exchange: {other:?}"),
        }
        assert!(client.is_poisoned(), "cut at byte {cut} must poison");
    }

    // Mid-exchange connection reset.
    let schedule = FaultSchedule::scripted([Fault::ResetOnWrite]).shared();
    let stream = FaultStream::connect(server.addr(), config, schedule).expect("connects");
    let mut client = ProfileClient::from_stream(stream, config);
    match client.stats_text() {
        Err(ClientError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
        other => panic!("reset must surface as an I/O error: {other:?}"),
    }
    assert!(client.is_poisoned());

    // A busy refusal is a well-framed server answer: no poisoning, and
    // the very next exchange on the same connection succeeds.
    let schedule = FaultSchedule::scripted([Fault::Busy, Fault::None]).shared();
    let stream = FaultStream::connect(server.addr(), config, schedule).expect("connects");
    let mut client = ProfileClient::from_stream(stream, config);
    match client.stats_text() {
        Err(ClientError::Server(msg)) => assert!(msg.starts_with("busy"), "{msg}"),
        other => panic!("busy must surface as a server rejection: {other:?}"),
    }
    assert!(!client.is_poisoned(), "ST_ERR keeps framing intact");
    assert!(client
        .stats_text()
        .expect("connection reusable")
        .contains("frames="));
    server.shutdown();
}

/// Wire-level fault matrix, request side: a request truncated at every
/// byte boundary (client dies mid-write) must never wedge or kill the
/// server, and an oversized reply is rejected client-side before
/// allocation.
#[test]
fn request_truncation_and_oversized_replies_are_survivable() {
    let config = fast_config();
    let server = start_server(config);

    // A full valid OP_STATS request frame, cut at every byte.
    let mut request = Vec::new();
    write_msg(&mut request, &[&[OP_STATS]]).expect("in-memory write");
    for cut in 0..request.len() {
        let mut raw = TcpStream::connect(server.addr()).expect("connects");
        raw.write_all(&request[..cut]).expect("partial write");
        drop(raw); // close mid-frame
    }
    // The server survived every mutilation and still serves.
    let mut client = ProfileClient::connect(server.addr(), config).expect("connects");
    assert!(client
        .stats_text()
        .expect("still serving")
        .contains("frames="));

    // Oversized reply: the client's frame limit is below the server's,
    // so a large merged snapshot arrives as an over-limit frame and is
    // refused before the body is read — poisoning the connection.
    let mut rng = SmallRng::seed_from_u64(0xB16);
    let mut big = DynamicCallGraph::new();
    for _ in 0..2_000 {
        big.record(edge(&mut rng), rng.gen_range(1..100u64) as f64);
    }
    client.push_snapshot(&big).expect("accepted");
    let tiny = NetConfig {
        max_frame_bytes: 256,
        ..config
    };
    let mut small_client = ProfileClient::connect(server.addr(), tiny).expect("connects");
    match small_client.pull() {
        Err(ClientError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        other => panic!("over-limit reply must be refused: {other:?}"),
    }
    assert!(small_client.is_poisoned());
    server.shutdown();
}

/// `OP_PUSH_SEQ` deduplicates per `(client, seq)`: replays acknowledge
/// as duplicates without re-applying, sequence gaps (from outbox
/// coalescing) are tolerated, and ids are independent.
#[test]
fn sequenced_pushes_are_exactly_once() {
    let config = fast_config();
    let server = start_server(config);
    let mut client = ProfileClient::connect(server.addr(), config).expect("connects");
    let e = CallEdge::new(MethodId::new(1), CallSiteId::new(0), MethodId::new(2));
    let frame = cbs_profiled::DcgCodec::encode_delta(&[(e, 5.0)]);

    assert_eq!(client.push_seq(7, 1, &frame).unwrap(), PushOutcome::Applied);
    assert_eq!(
        client.push_seq(7, 1, &frame).unwrap(),
        PushOutcome::Duplicate,
        "replay of an applied sequence must not re-apply"
    );
    // A gap (seq 2 was coalesced away client-side) is fine.
    assert_eq!(client.push_seq(7, 3, &frame).unwrap(), PushOutcome::Applied);
    // Late replay below the high-water mark is still a duplicate.
    assert_eq!(
        client.push_seq(7, 2, &frame).unwrap(),
        PushOutcome::Duplicate
    );
    // Another client id has its own sequence space.
    assert_eq!(client.push_seq(8, 1, &frame).unwrap(), PushOutcome::Applied);

    let merged = server.aggregator().merged_snapshot();
    assert_eq!(merged.weight(&e), 15.0, "exactly three applications");
    server.shutdown();
}

/// Chunked PULL: a merged snapshot larger than `max_frame_bytes`
/// degrades into multiple pages that reassemble bit-identically to the
/// in-process merged snapshot, while the single-frame `OP_PULL` path
/// refuses (frame limit) without killing the connection.
#[test]
fn chunked_pull_reassembles_an_oversized_snapshot_bit_identically() {
    let config = NetConfig {
        max_frame_bytes: 4096,
        ..fast_config()
    };
    let server = start_server(config);
    let mut client = ProfileClient::connect(server.addr(), config).expect("connects");

    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut vm = DynamicCallGraph::new();
    while vm.num_edges() < 3_000 {
        vm.record(edge(&mut rng), rng.gen_range(1..1000u64) as f64);
    }
    // Stream it up in under-limit delta slices.
    let all: Vec<(CallEdge, f64)> = vm.iter().map(|(e, w)| (*e, w)).collect();
    for slice in all.chunks(100) {
        client
            .push_delta(slice)
            .expect("slice fits the frame limit");
    }

    // The whole snapshot does not fit one frame…
    match client.pull() {
        Err(ClientError::Server(msg)) => assert!(msg.contains("frame limit"), "{msg}"),
        other => panic!("single-frame pull must hit the frame limit: {other:?}"),
    }
    // …but the paged pull reassembles it exactly, on the same
    // connection (the refusal did not poison).
    let (pulled, pages) = client.pull_chunked_counted().expect("chunked pull");
    assert!(pages > 1, "snapshot must have spanned multiple pages");
    let merged = server.aggregator().merged_snapshot();
    assert_eq!(pulled, merged);
    for (e, w) in merged.iter() {
        assert_eq!(pulled.weight(e).to_bits(), w.to_bits(), "edge {e}");
    }
    assert_eq!(
        pulled.total_weight().to_bits(),
        merged.total_weight().to_bits()
    );
    assert_eq!(pulled, vm, "nothing lost on the way up either");
    server.shutdown();
}

/// Regression for the out-of-sequence chunk request bug: `OP_PULL_CHUNK`
/// for a page > 0 on a connection that never captured page 0 — or whose
/// capture was cleared by a completed pull — must draw a clean `ST_ERR`
/// that names the missing capture, never a stale page, a panic, or a
/// dead connection.
#[test]
fn chunk_page_without_a_page0_capture_is_refused_cleanly() {
    let config = fast_config();
    let server = start_server(config);
    let mut pusher = ProfileClient::connect(server.addr(), config).expect("connects");
    pusher
        .push_delta(&[(
            CallEdge::new(MethodId::new(1), CallSiteId::new(0), MethodId::new(2)),
            5.0,
        )])
        .expect("accepted");

    let mut raw = TcpStream::connect(server.addr()).expect("connects");
    let ask = |raw: &mut TcpStream, page: u32| -> Vec<u8> {
        write_msg(raw, &[&[OP_PULL_CHUNK], &page.to_be_bytes()]).expect("request sent");
        read_msg(raw, config.max_frame_bytes)
            .expect("reply readable")
            .expect("whole frame")
    };

    // Page 3 before any page 0 on this connection: refused by name.
    let reply = ask(&mut raw, 3);
    assert_eq!(reply[0], ST_ERR);
    assert!(
        String::from_utf8_lossy(&reply[1..]).contains("no page-0 capture"),
        "{:?}",
        String::from_utf8_lossy(&reply[1..])
    );

    // The refusal kept the connection: page 0 captures and serves.
    let reply = ask(&mut raw, 0);
    assert_eq!(reply[0], ST_OK);
    let total = u32::from_be_bytes(reply[1..5].try_into().unwrap());
    assert_eq!(total, 1, "tiny snapshot fits one page");

    // That was the final page, so the capture is cleared; a later
    // page > 0 must restart from page 0, not re-read stale pages.
    let reply = ask(&mut raw, 1);
    assert_eq!(reply[0], ST_ERR);
    assert!(
        String::from_utf8_lossy(&reply[1..]).contains("no page-0 capture"),
        "{:?}",
        String::from_utf8_lossy(&reply[1..])
    );

    // The server is unharmed: a well-behaved chunked pull still
    // reassembles the exact merged snapshot.
    let mut client = ProfileClient::connect(server.addr(), config).expect("connects");
    assert_eq!(
        client.pull_chunked().expect("chunked pull"),
        server.aggregator().merged_snapshot()
    );
    server.shutdown();
}

/// The PR's acceptance scenario: a seeded fault schedule failing well
/// over 20% of exchanges — drops, stale-reply timeouts, truncations,
/// resets, and a scripted busy refusal — while a VM streams 60 delta
/// flushes through the resilient client. The pooled profile must be
/// **bit-identical** to the fault-free run's: zero lost weight, zero
/// double-counted weight.
#[test]
fn faulty_and_clean_runs_pool_bit_identical_profiles() {
    let config = fast_config();
    let policy = RetryPolicy {
        max_attempts: 32,
        ..RetryPolicy::default()
    };

    // One VM workload, two transports. Integral weights (sample counts)
    // keep addition exact under any regrouping.
    let batches: Vec<Vec<(CallEdge, f64)>> = {
        let mut rng = SmallRng::seed_from_u64(0xFA117);
        let mut vm = DynamicCallGraph::new();
        (0..60)
            .map(|_| {
                for _ in 0..rng.gen_range(1..60usize) {
                    vm.record(edge(&mut rng), rng.gen_range(1..1000u64) as f64);
                }
                vm.drain_delta()
            })
            .collect()
    };

    let run = |client: &mut ResilientClient<_>| {
        for batch in &batches {
            client.push_delta(batch.clone()).expect("delivered");
        }
        client.flush().expect("outbox drained");
        client.pull().expect("pulled")
    };

    let clean_server = start_server(config);
    // Rate 0.0: the proxy is in the path but never injects.
    let schedule = FaultSchedule::seeded(0, 0.0).shared();
    let mut clean_client = no_sleep(ResilientClient::connect_faulty(
        clean_server.addr().to_string(),
        config,
        policy,
        1,
        schedule,
    ));
    let clean = run(&mut clean_client);
    let clean_merged = clean_server.aggregator().merged_snapshot();
    clean_server.shutdown();

    let faulty_server = start_server(config);
    let schedule = FaultSchedule::seeded(0xD15EA5E, 0.30)
        .with_script([Fault::Busy])
        .shared();
    let mut faulty_client = no_sleep(ResilientClient::connect_faulty(
        faulty_server.addr().to_string(),
        config,
        policy,
        1,
        Arc::clone(&schedule),
    ));
    let faulty = run(&mut faulty_client);
    let faulty_merged = faulty_server.aggregator().merged_snapshot();
    faulty_server.shutdown();

    // The schedule really was hostile: >= 20% of exchanges faulted,
    // with every fault kind represented.
    let counts = schedule.lock().unwrap().counts();
    let rate = counts.faulted() as f64 / counts.total() as f64;
    assert!(rate >= 0.20, "observed fault rate {rate:.3} ({counts:?})");
    assert!(counts.drops > 0, "{counts:?}");
    assert!(counts.delays > 0, "{counts:?}");
    assert!(counts.truncations > 0, "{counts:?}");
    assert!(counts.resets > 0, "{counts:?}");
    assert!(counts.busies >= 1, "{counts:?}");
    let stats = faulty_client.stats();
    assert!(stats.reconnects > 0, "faults must have forced reconnects");
    assert!(stats.retries > 0);

    // Bit-identical pooled profiles, down to the running total.
    assert_eq!(faulty, clean);
    assert_eq!(faulty.num_edges(), clean.num_edges());
    for (e, w) in clean.iter() {
        assert_eq!(faulty.weight(e).to_bits(), w.to_bits(), "edge {e}");
    }
    assert_eq!(
        faulty.total_weight().to_bits(),
        clean.total_weight().to_bits()
    );
    // And both equal the server-side truth and the VM's own graph.
    assert_eq!(faulty_merged, clean_merged);
    let mut vm_total = DynamicCallGraph::new();
    for batch in &batches {
        for &(e, w) in batch {
            vm_total.record(e, w);
        }
    }
    assert_eq!(clean, vm_total, "zero lost weight, zero double-counting");
}

/// The resilient client also retries pulls: a schedule that faults the
/// first pull attempts still converges to the exact snapshot.
#[test]
fn resilient_pull_retries_through_faults() {
    let config = fast_config();
    let server = start_server(config);
    let mut rng = SmallRng::seed_from_u64(0x9E77);
    let mut vm = DynamicCallGraph::new();
    for _ in 0..300 {
        vm.record(edge(&mut rng), rng.gen_range(1..50u64) as f64);
    }
    let mut pusher = ProfileClient::connect(server.addr(), config).expect("connects");
    pusher.push_snapshot(&vm).expect("accepted");

    let schedule = FaultSchedule::scripted([
        Fault::DropRequest,
        Fault::ResetOnWrite,
        Fault::TruncateReply(3),
        Fault::Busy,
        Fault::DelayReply,
    ])
    .shared();
    let mut client = no_sleep(ResilientClient::connect_faulty(
        server.addr().to_string(),
        config,
        RetryPolicy::default(),
        42,
        schedule,
    ));
    let pulled = client.pull().expect("retried to success");
    assert_eq!(pulled, vm);
    assert!(client.stats().retries >= 5);
    server.shutdown();
}
