//! OP_METRICS loopback acceptance: a live server scraped over the wire
//! reports exact, deterministic counters for the traffic it served, and
//! telemetry never changes a profile byte.
//!
//! The whole scenario lives in one `#[test]` so this binary owns the
//! process-global registry: absolute counter values can be pinned
//! without interference from sibling tests.

use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_profiled::{
    serve, AggregatorConfig, DcgCodec, NetConfig, ProfileClient, PushOutcome, ShardedAggregator,
};
use cbs_telemetry::parse_counter;
use std::sync::Arc;

fn edge(caller: u32, callee: u32) -> CallEdge {
    CallEdge::new(
        MethodId::new(caller),
        CallSiteId::new(0),
        MethodId::new(callee),
    )
}

fn pin(exposition: &str, name: &str, want: u64) {
    assert_eq!(
        parse_counter(exposition, name),
        Some(want),
        "counter {name} in:\n{exposition}"
    );
}

#[test]
fn op_metrics_scrape_reports_exact_counters_and_is_inert() {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(2)));
    let server = serve("127.0.0.1:0", agg, NetConfig::default()).expect("binds");
    let mut client = ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");

    // One snapshot push, one dedup'd seq push pair, one pull, one stats.
    let mut vm = DynamicCallGraph::new();
    vm.record(edge(1, 2), 3.0);
    vm.record(edge(1, 3), 5.0);
    vm.record(edge(2, 3), 7.0);
    client.push_snapshot(&vm).expect("snapshot accepted");

    let delta = DcgCodec::encode_delta(&[(edge(3, 4), 11.0)]);
    assert_eq!(
        client.push_seq(7, 1, &delta).expect("first push applies"),
        PushOutcome::Applied
    );
    assert_eq!(
        client.push_seq(7, 1, &delta).expect("retry is absorbed"),
        PushOutcome::Duplicate
    );

    let pulled = client.pull().expect("pull succeeds");
    assert_eq!(pulled.num_edges(), 4);

    let stats = client.stats_text().expect("stats succeed");
    assert!(stats.contains("stats_version=2"), "stats:\n{stats}");
    assert!(stats.contains("dedup_clients=1"), "stats:\n{stats}");

    // The scrape counts itself (the op counter increments before the
    // registry is rendered), so op.metrics pins at 1 on first scrape.
    let text = client.metrics_text().expect("metrics succeed");
    assert!(text.starts_with("# cbs-telemetry v1\n"), "got:\n{text}");
    pin(&text, "profiled.server.connections", 1);
    pin(&text, "profiled.server.op.push", 1);
    pin(&text, "profiled.server.op.push_seq", 2);
    pin(&text, "profiled.server.op.pull", 1);
    pin(&text, "profiled.server.op.stats", 1);
    pin(&text, "profiled.server.op.metrics", 1);
    pin(&text, "profiled.server.dedup_hits", 1);
    pin(&text, "profiled.server.err_replies", 0);
    pin(&text, "profiled.server.bad_frames", 0);
    pin(&text, "profiled.agg.frames", 2);
    // Snapshot records 3 edges, the applied delta 1; the duplicate adds 0.
    pin(&text, "profiled.agg.records", 4);
    // Scrape-time gauges are published by the handler itself.
    assert!(text.contains("gauge profiled.agg.edges 4"), "got:\n{text}");
    assert!(
        text.contains("gauge profiled.server.dedup_clients 1"),
        "got:\n{text}"
    );

    // A second scrape moves only the scrape's own bookkeeping.
    let text2 = client.metrics_text().expect("metrics succeed");
    pin(&text2, "profiled.server.op.metrics", 2);
    pin(&text2, "profiled.server.op.push", 1);
    server.shutdown();

    // Inertness: the same traffic against a telemetry-disabled process
    // yields a bit-identical pulled profile.
    cbs_telemetry::global().set_enabled(false);
    let agg2 = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(2)));
    let server2 = serve("127.0.0.1:0", agg2, NetConfig::default()).expect("binds");
    let mut client2 =
        ProfileClient::connect(server2.addr(), NetConfig::default()).expect("connects");
    client2.push_snapshot(&vm).expect("snapshot accepted");
    assert_eq!(
        client2.push_seq(7, 1, &delta).expect("push applies"),
        PushOutcome::Applied
    );
    let pulled2 = client2.pull().expect("pull succeeds");
    cbs_telemetry::global().set_enabled(true);

    assert_eq!(pulled, pulled2, "telemetry changed the merged profile");
    for (e, w) in pulled.iter() {
        assert_eq!(pulled2.weight(e).to_bits(), w.to_bits(), "edge {e}");
    }

    // And the disabled run left every counter where the first scrape's
    // follow-up put it: disabled registries are frozen, not just quiet.
    let text3 = cbs_telemetry::global().render();
    pin(&text3, "profiled.server.op.push", 1);
    pin(&text3, "profiled.server.op.push_seq", 2);
    pin(&text3, "profiled.server.connections", 1);
    server2.shutdown();
}
