//! Concurrency and cache-consistency acceptance for the streaming
//! ingest / cached-snapshot server paths:
//!
//! * pulls racing a storm of pushes always decode to *valid* snapshots
//!   (every intermediate pull is a well-formed frame whose totals are
//!   a prefix of the push history);
//! * after the storm, the final pull is bit-identical to a serial
//!   ingest of the same frames;
//! * push → pull → push → pull observes the new data (the cache never
//!   serves a pre-push snapshot after the push's ack);
//! * `advance_epoch` over the wire invalidates the cached encoding.

use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_prng::prop::run_cases;
use cbs_prng::SmallRng;
use cbs_profiled::{
    serve, AggregatorConfig, DcgCodec, NetConfig, ProfileClient, ShardedAggregator,
};
use std::sync::Arc;

fn e(caller: u32, site: u32, callee: u32) -> CallEdge {
    CallEdge::new(
        MethodId::new(caller),
        CallSiteId::new(site),
        MethodId::new(callee),
    )
}

/// Deterministic synthetic frames: `pushers × frames_per_pusher`
/// snapshot frames with unit weights (unit weights make aggregation
/// exactly commutative, so any interleaving must converge to the same
/// graph).
fn storm_frames(pushers: u32, frames_per_pusher: u32) -> Vec<Vec<Vec<u8>>> {
    (0..pushers)
        .map(|p| {
            (0..frames_per_pusher)
                .map(|f| {
                    let mut g = DynamicCallGraph::new();
                    for i in 0..40u32 {
                        g.record(e((p * 7 + i) % 19, i % 5, (f + i) % 11), 1.0);
                    }
                    DcgCodec::encode_snapshot(&g)
                })
                .collect()
        })
        .collect()
}

#[test]
fn pulls_racing_a_push_storm_always_decode_valid_snapshots() {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(8)));
    let server = serve("127.0.0.1:0", Arc::clone(&agg), NetConfig::default()).expect("binds");
    let addr = server.addr();
    let frames = storm_frames(4, 24);

    // Serial reference: the same frames through one fresh aggregator.
    let serial = ShardedAggregator::new(AggregatorConfig::with_shards(8));
    for pusher in &frames {
        for bytes in pusher {
            serial.ingest(&DcgCodec::decode(bytes).unwrap());
        }
    }
    let expected = serial.merged_snapshot();
    let expected_bytes = DcgCodec::encode_snapshot(&expected);
    let total_records: usize = frames
        .iter()
        .flatten()
        .map(|b| DcgCodec::decode(b).unwrap().edges.len())
        .sum();

    std::thread::scope(|scope| {
        for pusher in &frames {
            scope.spawn(move || {
                let mut c = ProfileClient::connect(addr, NetConfig::default()).expect("connects");
                for bytes in pusher {
                    c.push_frame(bytes).expect("push");
                }
            });
        }
        // Two pullers race the storm; every snapshot they see must be
        // valid and monotone (total weight only grows under unit-weight
        // pushes with decay disabled).
        for _ in 0..2 {
            scope.spawn(move || {
                let mut c = ProfileClient::connect(addr, NetConfig::default()).expect("connects");
                let mut last_total = 0.0f64;
                for _ in 0..30 {
                    let snap = c.pull().expect("mid-storm pull decodes");
                    let total = snap.total_weight();
                    assert!(
                        total >= last_total,
                        "snapshot went backwards: {total} < {last_total}"
                    );
                    assert!(total <= total_records as f64 + 0.5, "over-counted");
                    last_total = total;
                }
            });
        }
    });

    // Quiesced: the final pull is bit-identical to the serial ingest.
    let mut c = ProfileClient::connect(addr, NetConfig::default()).expect("connects");
    let final_pull = c.pull().expect("final pull");
    assert_eq!(final_pull, expected);
    assert_eq!(
        DcgCodec::encode_snapshot(&final_pull),
        expected_bytes,
        "final snapshot encoding must be byte-identical to serial ingest"
    );
    // The chunked path serves the same capture.
    assert_eq!(c.pull_chunked().expect("chunked pull"), expected);
    server.shutdown();
}

#[test]
fn pull_observes_every_push_and_epoch_invalidates_the_cache() {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig {
        shards: 4,
        decay_factor: 0.5,
        min_weight: 0.0,
    }));
    let server = serve("127.0.0.1:0", Arc::clone(&agg), NetConfig::default()).expect("binds");
    let mut c = ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");

    // push → pull → push → pull: the second pull must see the second
    // push (an ack'd push is never hidden by the snapshot cache).
    c.push_delta(&[(e(1, 0, 2), 8.0)]).expect("push 1");
    let first = c.pull().expect("pull 1");
    assert_eq!(first.weight(&e(1, 0, 2)), 8.0);
    c.push_delta(&[(e(1, 0, 2), 4.0), (e(3, 1, 4), 2.0)])
        .expect("push 2");
    let second = c.pull().expect("pull 2");
    assert_eq!(second.weight(&e(1, 0, 2)), 12.0);
    assert_eq!(second.weight(&e(3, 1, 4)), 2.0);

    // With no interleaving mutation, repeated pulls serve the *same*
    // cached encoding object (O(1) hit path, no rebuild).
    let enc1 = agg.encoded_snapshot();
    let enc2 = agg.encoded_snapshot();
    assert!(
        Arc::ptr_eq(&enc1, &enc2),
        "repeated pulls must hit the cache"
    );

    // advance_epoch over the wire invalidates: the cached encoding is
    // rebuilt and the decayed weights show up in the next pull.
    let epoch = c.advance_epoch().expect("epoch");
    assert_eq!(epoch, 1);
    let enc3 = agg.encoded_snapshot();
    assert!(
        !Arc::ptr_eq(&enc1, &enc3),
        "advance_epoch must invalidate the cached encoding"
    );
    let decayed = c.pull().expect("pull 3");
    assert!(
        (decayed.weight(&e(1, 0, 2)) - 6.0).abs() < 1e-12,
        "12 × 0.5 after one epoch"
    );
    server.shutdown();
}

/// Property acceptance for the 40%-rule query path: for arbitrary
/// random frame streams and shard counts 1/4/8, every inliner-facing
/// query against the aggregator's *cached merged snapshot* —
/// `site_distribution`, `outgoing_weight`, `hot_edges` — is
/// bit-identical to a brute-force scan of a serially re-ingested copy
/// of the same frames. Sharding and caching are contention plumbing;
/// they must never show up in a query answer.
#[test]
fn queries_match_brute_force_scans_of_a_serial_reingest() {
    // Brute-force references: explicit scans, no graph query helpers.
    fn brute_site_distribution(
        g: &DynamicCallGraph,
        caller: MethodId,
        site: CallSiteId,
    ) -> Vec<(MethodId, f64)> {
        let mut per: Vec<(MethodId, f64)> = Vec::new();
        for (edge, w) in g.iter() {
            if edge.caller == caller && edge.site == site {
                match per.iter_mut().find(|(c, _)| *c == edge.callee) {
                    Some((_, acc)) => *acc += w,
                    None => per.push((edge.callee, w)),
                }
            }
        }
        per.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        per
    }
    fn brute_outgoing(g: &DynamicCallGraph, caller: MethodId) -> f64 {
        let mut weights = Vec::new();
        for (edge, w) in g.iter() {
            if edge.caller == caller {
                weights.push(w);
            }
        }
        // `Iterator::sum` semantics (its identity is `-0.0`), so an
        // absent caller compares bit-identically too.
        weights.into_iter().sum()
    }
    fn brute_hot(g: &DynamicCallGraph, percent: f64) -> Vec<(CallEdge, f64)> {
        let total: f64 = g.iter().map(|(_, w)| w).sum();
        let mut v: Vec<(CallEdge, f64)> = g
            .iter()
            .filter(|&(_, w)| total > 0.0 && 100.0 * w / total >= percent)
            .map(|(e, w)| (*e, w))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    run_cases("aggregator_query_consistency", 128, |rng| {
        // A random stream of snapshot and delta frames over a dense id
        // range, so site ids repeat under many callers (the shard-filter
        // regression surface) and weights mix the integral and raw-bits
        // codec paths.
        let random_edge = |rng: &mut SmallRng| {
            CallEdge::new(
                MethodId::new(rng.gen_range(0..12u32)),
                CallSiteId::new(rng.gen_range(0..4u32)),
                MethodId::new(rng.gen_range(0..10u32)),
            )
        };
        let random_weight = |rng: &mut SmallRng| {
            if rng.gen_bool(0.5) {
                rng.gen_range(1..1000u64) as f64
            } else {
                rng.gen_f64() * 100.0 + f64::MIN_POSITIVE
            }
        };
        let frames: Vec<Vec<u8>> = (0..rng.gen_range(1..6usize))
            .map(|_| {
                let records: Vec<(CallEdge, f64)> = (0..rng.gen_range(0..80usize))
                    .map(|_| (random_edge(rng), random_weight(rng)))
                    .collect();
                if rng.gen_bool(0.5) {
                    let mut g = DynamicCallGraph::new();
                    for &(e, w) in &records {
                        g.record(e, w);
                    }
                    DcgCodec::encode_snapshot(&g)
                } else {
                    DcgCodec::encode_delta(&records)
                }
            })
            .collect();

        // Serial re-ingest: every frame applied to one plain graph.
        let mut serial = DynamicCallGraph::new();
        for bytes in &frames {
            for &(e, w) in &DcgCodec::decode(bytes).unwrap().edges {
                serial.record(e, w);
            }
        }

        for shards in [1, 4, 8] {
            let agg = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
            for bytes in &frames {
                agg.ingest(&DcgCodec::decode(bytes).unwrap());
            }
            // Warm the snapshot cache so the queries exercise the
            // cached path, then probe present *and* absent ids.
            let _ = agg.merged_snapshot();
            for caller in (0..13u32).map(MethodId::new) {
                for site in (0..5u32).map(CallSiteId::new) {
                    let got = agg.site_distribution(caller, site);
                    let want = brute_site_distribution(&serial, caller, site);
                    assert_eq!(got.len(), want.len(), "shards={shards} {caller} {site}");
                    for ((gc, gw), (wc, ww)) in got.iter().zip(&want) {
                        assert_eq!(gc, wc, "shards={shards} {caller} {site}");
                        assert_eq!(
                            gw.to_bits(),
                            ww.to_bits(),
                            "shards={shards} {caller} {site} callee {gc}"
                        );
                    }
                }
                let got = agg.outgoing_weight(caller);
                assert_eq!(
                    got.to_bits(),
                    brute_outgoing(&serial, caller).to_bits(),
                    "shards={shards} outgoing({caller})"
                );
            }
            for percent in [0.0, 0.5, 5.0, 50.0, 101.0] {
                let got = agg.hot_edges(percent);
                let want = brute_hot(&serial, percent);
                assert_eq!(got.len(), want.len(), "shards={shards} hot({percent})");
                for ((ge, gw), (we, ww)) in got.iter().zip(&want) {
                    assert_eq!(ge, we, "shards={shards} hot({percent})");
                    assert_eq!(
                        gw.to_bits(),
                        ww.to_bits(),
                        "shards={shards} hot({percent}) {ge}"
                    );
                }
            }
        }
    });
}

#[test]
fn cross_shard_count_snapshots_are_bit_identical() {
    // The encoded merged snapshot must not depend on the shard count:
    // partitioning is an implementation detail of contention, not of
    // the aggregate.
    let mut g = DynamicCallGraph::new();
    for i in 0..500u32 {
        g.record(e(i % 83, i % 13, i % 29), 0.75 + f64::from(i % 7));
    }
    let bytes = DcgCodec::encode_snapshot(&g);
    let mut encodings = Vec::new();
    for shards in [1, 2, 4, 8, 16] {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
        agg.ingest(&DcgCodec::decode(&bytes).unwrap());
        encodings.push((shards, agg.encoded_snapshot().as_ref().clone()));
    }
    let (_, first) = &encodings[0];
    for (shards, enc) in &encodings {
        assert_eq!(enc, first, "shards={shards} diverged");
    }
}
