//! Full-service loopback tests: a live TCP server, a streaming VM
//! client, and bit-exact reconstruction of the merged fleet profile.

use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_prng::SmallRng;
use cbs_profiled::{
    serve, AggregatorConfig, ClientError, NetConfig, ProfileClient, ShardedAggregator,
};
use std::sync::Arc;

fn edge(rng: &mut SmallRng) -> CallEdge {
    CallEdge::new(
        MethodId::new(rng.gen_range(0..4000u32)),
        CallSiteId::new(rng.gen_range(0..8u32)),
        MethodId::new(rng.gen_range(0..4000u32)),
    )
}

/// The PR's acceptance scenario: one VM streams a 10k-edge snapshot and
/// then 100 incremental delta flushes; the client's pulled fleet profile
/// is bit-identical to the server's own merged snapshot.
#[test]
fn snapshot_plus_100_deltas_reconstructs_bit_identically() {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
    let server = serve("127.0.0.1:0", agg, NetConfig::default()).expect("binds");
    let mut client = ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");

    let mut rng = SmallRng::seed_from_u64(0x10AD_BA11);
    let mut vm = DynamicCallGraph::new();
    while vm.num_edges() < 10_000 {
        // Integral weights: counter-based sampling produces counts, and
        // they keep additive splits across frames bit-exact.
        vm.record(edge(&mut rng), rng.gen_range(1..1000u64) as f64);
    }
    client.push_snapshot(&vm).expect("snapshot accepted");
    vm.drain_delta(); // align the flush mark with what was pushed

    for _ in 0..100 {
        for _ in 0..rng.gen_range(1..40usize) {
            vm.record(edge(&mut rng), rng.gen_range(1..1000u64) as f64);
        }
        let increments = vm.drain_delta();
        assert!(!increments.is_empty());
        client.push_delta(&increments).expect("delta accepted");
    }

    let pulled = client.pull().expect("pull succeeds");
    let merged = server.aggregator().merged_snapshot();
    assert_eq!(pulled, merged);
    assert_eq!(pulled.num_edges(), merged.num_edges());
    for (e, w) in merged.iter() {
        assert_eq!(pulled.weight(e).to_bits(), w.to_bits(), "edge {e}");
    }
    assert_eq!(
        pulled.total_weight().to_bits(),
        merged.total_weight().to_bits(),
        "totals accumulate in the same canonical edge order on both sides"
    );
    // The stream was lossless, so the server graph equals the VM's own.
    assert_eq!(merged, vm);

    let stats = server.aggregator().stats();
    assert_eq!(stats.frames, 101);
    server.shutdown();
}

/// Many VMs pushing concurrently over their own connections converge to
/// the union of their graphs, and the server survives a malformed frame
/// and an oversized frame arriving mid-stream.
#[test]
fn concurrent_vms_and_hostile_clients() {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
    let config = NetConfig {
        max_frame_bytes: 1 << 16,
        ..NetConfig::default()
    };
    let server = serve("127.0.0.1:0", agg, config).expect("binds");
    let addr = server.addr();

    let graphs: Vec<DynamicCallGraph> = (0..8u64)
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(0xF1EE7 + i);
            let mut g = DynamicCallGraph::new();
            for _ in 0..200 {
                g.record(edge(&mut rng), rng.gen_range(1..100u64) as f64);
            }
            g
        })
        .collect();

    std::thread::scope(|scope| {
        for g in &graphs {
            scope.spawn(move || {
                let mut client = ProfileClient::connect(addr, config).expect("connects");
                client.push_snapshot(g).expect("accepted");
            });
        }
        // A hostile client pushes garbage; the server must reject the
        // frame, keep the connection, and keep serving everyone else.
        scope.spawn(|| {
            let mut client = ProfileClient::connect(addr, config).expect("connects");
            match client.push_frame(b"CBSPgarbage") {
                Err(ClientError::Server(msg)) => assert!(msg.contains("bad frame"), "{msg}"),
                other => panic!("garbage must be rejected server-side: {other:?}"),
            }
            // The same connection still works after the rejection.
            let mut g = DynamicCallGraph::new();
            g.record(
                CallEdge::new(MethodId::new(1), CallSiteId::new(0), MethodId::new(2)),
                7.0,
            );
            client.push_snapshot(&g).expect("connection survived");
        });
    });

    let merged = server.aggregator().merged_snapshot();
    let mut expected = DynamicCallGraph::merge_all(&graphs);
    expected.record(
        CallEdge::new(MethodId::new(1), CallSiteId::new(0), MethodId::new(2)),
        7.0,
    );
    // Concurrent arrival order varies, so compare weights per edge (the
    // integral weights make addition order-independent here).
    assert_eq!(merged.num_edges(), expected.num_edges());
    for (e, w) in expected.iter() {
        assert_eq!(merged.weight(e), w, "edge {e}");
    }

    // An oversized frame draws an error reply, not a dead server.
    let mut big_rng = SmallRng::seed_from_u64(99);
    let mut big = DynamicCallGraph::new();
    for _ in 0..20_000 {
        big.record(edge(&mut big_rng), 1e18 + 0.5); // raw-bits weights, ~14 B/edge
    }
    let mut client = ProfileClient::connect(addr, config).expect("connects");
    match client.push_snapshot(&big) {
        Err(ClientError::Server(_) | ClientError::Io(_)) => {}
        other => panic!("oversized push must fail: {other:?}"),
    }
    let mut client = ProfileClient::connect(addr, config).expect("server still accepts");
    assert!(client
        .stats_text()
        .expect("still serving")
        .contains("frames="));
    server.shutdown();
}

/// `OP_PLAN` end to end: the daemon builds the 40%-rule inlining plan
/// from its merged snapshot, serves it versioned by snapshot
/// generation, answers repeated pulls from the cache byte-identically,
/// and rebuilds after the aggregate changes.
#[test]
fn op_plan_serves_versioned_plans_from_the_generation_keyed_cache() {
    use cbs_inliner::PlanKind;

    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
    let server = serve("127.0.0.1:0", Arc::clone(&agg), NetConfig::default()).expect("binds");
    let mut client = ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");

    let e = |caller: u32, site: u32, callee: u32| {
        CallEdge::new(
            MethodId::new(caller),
            CallSiteId::new(site),
            MethodId::new(callee),
        )
    };
    // One polymorphic site where only one receiver clears the 40% rule,
    // and one monomorphic site.
    client
        .push_delta(&[
            (e(0, 0, 2), 60.0),
            (e(0, 0, 3), 35.0),
            (e(0, 0, 4), 5.0),
            (e(1, 1, 5), 50.0),
        ])
        .expect("accepted");

    let plan = client.pull_plan().expect("plan pulled");
    assert_eq!(plan.generation, 1, "one ingested frame");
    assert_eq!(plan.total_weight, 150.0);
    assert_eq!(plan.entries.len(), 2, "plan: {}", plan.render());
    let poly = &plan.entries[0];
    assert_eq!(
        (poly.caller, poly.site),
        (MethodId::new(0), CallSiteId::new(0))
    );
    match &poly.kind {
        PlanKind::Devirtualize { callee, weight } => {
            assert_eq!(*callee, MethodId::new(2), "only m2 clears 40%");
            assert_eq!(*weight, 60.0);
        }
        other => panic!("60/35/5 must devirtualize to the majority receiver: {other:?}"),
    }
    let mono = &plan.entries[1];
    assert_eq!(
        (mono.caller, mono.site),
        (MethodId::new(1), CallSiteId::new(1))
    );
    match &mono.kind {
        PlanKind::Direct { callee } => assert_eq!(*callee, MethodId::new(5)),
        other => panic!("a single observed receiver is a direct entry: {other:?}"),
    }

    // Unchanged aggregate: repeated pulls serve the *same* cached
    // encoding object (O(1) hit path, no rebuild), so the wire answer
    // is bit-identical.
    let enc1 = agg.encoded_plan();
    let enc2 = agg.encoded_plan();
    assert!(
        Arc::ptr_eq(&enc1, &enc2),
        "repeated plan pulls must hit the cache"
    );
    let again = client.pull_plan().expect("second pull");
    assert_eq!(again.render(), plan.render());

    // New weight flips the 40% outcome: the cache is invalidated and
    // the next plan carries the new generation and a guarded entry.
    client.push_delta(&[(e(0, 0, 3), 40.0)]).expect("accepted");
    let enc3 = agg.encoded_plan();
    assert!(
        !Arc::ptr_eq(&enc1, &enc3),
        "an ingested frame must invalidate the cached plan"
    );
    let updated = client.pull_plan().expect("rebuilt plan");
    assert_eq!(updated.generation, 2);
    match &updated.entries[0].kind {
        PlanKind::Guarded { targets } => {
            assert_eq!(
                targets,
                &vec![(MethodId::new(3), 75.0), (MethodId::new(2), 60.0)],
                "60/75/5: both heavy receivers now clear 40%, heaviest first"
            );
        }
        other => panic!("both receivers above 40% must guard: {other:?}"),
    }
    server.shutdown();
}

/// Epoch advance over the wire applies decay to later pulls.
#[test]
fn epoch_advance_decays_the_fleet_profile() {
    let agg = Arc::new(ShardedAggregator::new(AggregatorConfig {
        shards: 2,
        decay_factor: 0.5,
        min_weight: 0.0,
    }));
    let server = serve("127.0.0.1:0", agg, NetConfig::default()).expect("binds");
    let mut client = ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");

    let mut g = DynamicCallGraph::new();
    g.record(
        CallEdge::new(MethodId::new(0), CallSiteId::new(0), MethodId::new(1)),
        16.0,
    );
    client.push_snapshot(&g).expect("accepted");
    assert_eq!(client.pull().expect("pull").total_weight(), 16.0);
    assert_eq!(client.advance_epoch().expect("epoch"), 1);
    assert_eq!(client.advance_epoch().expect("epoch"), 2);
    assert_eq!(client.pull().expect("pull").total_weight(), 4.0);
    server.shutdown();
}
