//! Fuzz-style property tests for the binary codec: `decode(encode(g))`
//! must reproduce `g` bit-exactly for arbitrary random graphs, and no
//! random mutilation of a valid frame may crash the decoder.

use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_prng::prop::run_cases;
use cbs_prng::SmallRng;
use cbs_profiled::{DcgCodec, FrameKind};

fn random_graph(rng: &mut SmallRng) -> DynamicCallGraph {
    let mut g = DynamicCallGraph::new();
    let edges = rng.gen_range(0..200usize);
    for _ in 0..edges {
        // Bias ids toward the dense low range but sprinkle the full u32
        // space (varint width transitions included).
        let id = |rng: &mut SmallRng| -> u32 {
            if rng.gen_bool(0.8) {
                rng.gen_range(0..500u32)
            } else {
                rng.gen_range(0..=u32::MAX)
            }
        };
        let edge = CallEdge::new(
            MethodId::new(id(rng)),
            CallSiteId::new(id(rng)),
            MethodId::new(id(rng)),
        );
        // Mix integral (varint path) and fractional (raw-bits path)
        // weights across many magnitudes.
        let w = if rng.gen_bool(0.5) {
            rng.gen_range(1..1u64 << 40) as f64
        } else {
            rng.gen_f64() * 10f64.powi(rng.gen_range(-12i32..12)) + f64::MIN_POSITIVE
        };
        g.record(edge, w);
    }
    g
}

#[test]
fn decode_encode_is_identity_on_random_graphs() {
    run_cases("codec_round_trip", 64, |rng| {
        let g = random_graph(rng);
        let bytes = DcgCodec::encode_snapshot(&g);
        let back = DcgCodec::decode_snapshot(&bytes).expect("own encoding decodes");
        // Every edge weight round-trips bit-exactly.
        assert_eq!(back.num_edges(), g.num_edges());
        for (edge, w) in g.iter() {
            assert_eq!(back.weight(edge).to_bits(), w.to_bits(), "edge {edge}");
        }
        // The running total is recomputed in canonical (edge) order —
        // identical to a merged/drained graph's total. A graph whose
        // observation history summed fractional weights in a different
        // order can differ in the last total bit, so compare against the
        // canonical form of `g`, which is full equality (weights *and*
        // total).
        let canon = DynamicCallGraph::merge_all([&g]);
        assert_eq!(back, canon);
        // Holds bitwise even for empty graphs: `recompute_total`
        // canonicalizes the IEEE `-0.0` an empty `f64` sum produces.
        assert_eq!(
            back.total_weight().to_bits(),
            canon.total_weight().to_bits()
        );
    });
}

#[test]
fn delta_frames_round_trip_drained_increments() {
    run_cases("codec_delta_round_trip", 32, |rng| {
        let mut g = random_graph(rng);
        g.drain_delta();
        let extra: Vec<(CallEdge, f64)> = (0..rng.gen_range(1..50usize))
            .map(|i| {
                (
                    CallEdge::new(
                        MethodId::new(rng.gen_range(0..100u32)),
                        CallSiteId::new(i as u32),
                        MethodId::new(rng.gen_range(0..100u32)),
                    ),
                    rng.gen_range(1..1000u64) as f64,
                )
            })
            .collect();
        for &(e, w) in &extra {
            g.record(e, w);
        }
        let drained = g.drain_delta();
        let frame = DcgCodec::decode(&DcgCodec::encode_delta(&drained)).expect("delta decodes");
        assert_eq!(frame.kind, FrameKind::Delta);
        assert_eq!(frame.edges, drained, "drain order is already wire order");
    });
}

#[test]
fn decoder_never_panics_on_mutilated_frames() {
    run_cases("codec_no_panic_on_garbage", 64, |rng| {
        let g = random_graph(rng);
        let mut bytes = DcgCodec::encode_snapshot(&g);
        match rng.gen_range(0..3u32) {
            0 => {
                // Truncate anywhere.
                let cut = rng.gen_range(0..=bytes.len());
                bytes.truncate(cut);
            }
            1 => {
                // Flip random bytes.
                for _ in 0..rng.gen_range(1..8usize) {
                    if bytes.is_empty() {
                        break;
                    }
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] = rng.next_u64() as u8;
                }
            }
            _ => {
                // Pure noise.
                bytes = (0..rng.gen_range(0..64usize))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
            }
        }
        // Must return (Ok or Err), never panic or hang.
        let _ = DcgCodec::decode(&bytes);
    });
}
