//! Deterministic transport fault injection.
//!
//! [`FaultStream`] is an in-process proxy implementing `Read + Write`
//! that wraps a real connection and corrupts exchanges on a seeded
//! schedule: it can drop a request, delay a reply past the client's
//! timeout, truncate a reply mid-frame, reset the connection, or
//! synthesize a server-busy refusal. Because every "timeout" is
//! returned immediately (no wall-clock waiting) and the schedule is
//! driven by [`cbs_prng::SmallRng`], a faulty run is exactly
//! reproducible from its seed — which is what lets the fleet experiment
//! assert that the profile pooled over a lossy transport is
//! *bit-identical* to the fault-free one.
//!
//! The proxy understands the service's length-prefixed framing just
//! enough to buffer one request per flush and pre-read one reply frame,
//! so each request/response exchange receives exactly one fault
//! decision. A [`FaultSchedule`] is shared (`Arc<Mutex<..>>`) across
//! the reconnections a [`ResilientClient`](crate::ResilientClient)
//! performs, so the fault sequence continues across connections instead
//! of restarting.

use crate::wire::{read_msg, write_msg, NetConfig, ST_ERR};
use cbs_prng::SmallRng;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

/// One injected transport fault, applied to a single exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward the exchange untouched.
    None,
    /// Discard the request; the reply read times out. The server never
    /// sees the request.
    DropRequest,
    /// Forward the request but hold the reply past the client's
    /// timeout: the read times out once, then the stale reply becomes
    /// readable — the classic desynchronization scenario.
    DelayReply,
    /// Forward the request but cut the reply off after this many bytes,
    /// then end the stream. The server *did* apply the request.
    TruncateReply(usize),
    /// Reset the connection at the write: the request is never sent and
    /// every later operation fails with `ConnectionReset`.
    ResetOnWrite,
    /// Swallow the request and synthesize a framed
    /// `ST_ERR busy: injected` refusal, as an overloaded server would.
    Busy,
}

/// How many exchanges of each kind a schedule has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Exchanges forwarded untouched.
    pub clean: usize,
    /// [`Fault::DropRequest`] injections.
    pub drops: usize,
    /// [`Fault::DelayReply`] injections.
    pub delays: usize,
    /// [`Fault::TruncateReply`] injections.
    pub truncations: usize,
    /// [`Fault::ResetOnWrite`] injections.
    pub resets: usize,
    /// [`Fault::Busy`] injections.
    pub busies: usize,
    /// Scripted crash points fired ([`CrashSpec`] consumed).
    pub crashes: usize,
}

impl FaultCounts {
    /// Total faulted exchanges (everything but `clean`).
    pub fn faulted(&self) -> usize {
        self.drops + self.delays + self.truncations + self.resets + self.busies
    }

    /// Total exchanges that passed through a fault decision.
    pub fn total(&self) -> usize {
        self.clean + self.faulted()
    }
}

/// A point in the durable store's write path where a scripted crash can
/// fire (see `cbs-store`). Each site models a distinct torn state a real
/// power loss could leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Before the WAL append: the operation leaves no trace at all.
    BeforeWalAppend,
    /// After the WAL append (and sync) but before the `ST_OK`: the
    /// operation is durable but the client never saw the ack.
    AfterWalAppend,
    /// After the WAL append but before the aggregator apply: the record
    /// is journaled (durable per policy) yet was never applied in the
    /// crashed process — recovery must replay it. This is the gap the
    /// staged (append / apply / commit) write path opens up.
    BeforeApply,
    /// After the checkpoint's temp file is written but before the atomic
    /// rename: recovery must fall back to the previous checkpoint and
    /// replay the whole WAL.
    MidCheckpoint,
    /// The WAL record is written torn — only a prefix of its bytes
    /// reaches the disk — and the process dies. Recovery must detect
    /// the bad CRC and truncate.
    TornWalRecord,
}

/// A one-shot scripted crash: fires at the `skip`+1-th occurrence of
/// `site`, then is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Where in the write path to crash.
    pub site: CrashSite,
    /// Matching events to let pass before firing (0 = first).
    pub skip: usize,
    /// For [`CrashSite::TornWalRecord`]: how many bytes of the record
    /// body reach the disk. Ignored at other sites.
    pub torn_keep: usize,
}

impl CrashSpec {
    /// A crash at the first occurrence of `site`.
    pub fn at(site: CrashSite) -> Self {
        Self {
            site,
            skip: 0,
            torn_keep: 0,
        }
    }

    /// Lets `skip` matching events pass before firing.
    #[must_use]
    pub fn after(mut self, skip: usize) -> Self {
        self.skip = skip;
        self
    }

    /// Sets the torn-record prefix length (only meaningful with
    /// [`CrashSite::TornWalRecord`]).
    #[must_use]
    pub fn keeping(mut self, torn_keep: usize) -> Self {
        self.torn_keep = torn_keep;
        self
    }
}

/// A deterministic supply of [`Fault`] decisions: an explicit scripted
/// prefix, then seeded random draws at a configured rate. May also
/// carry one scripted [`CrashSpec`] for the durable store's write path.
#[derive(Debug)]
pub struct FaultSchedule {
    script: VecDeque<Fault>,
    rng: SmallRng,
    rate: f64,
    counts: FaultCounts,
    crash: Option<CrashSpec>,
}

impl FaultSchedule {
    /// A schedule that replays exactly `script`, then injects nothing.
    pub fn scripted(script: impl IntoIterator<Item = Fault>) -> Self {
        Self {
            script: script.into_iter().collect(),
            rng: SmallRng::seed_from_u64(0),
            rate: 0.0,
            counts: FaultCounts::default(),
            crash: None,
        }
    }

    /// A seeded random schedule faulting each exchange with probability
    /// `rate` (clamped to `[0, 1]`), choosing uniformly among the fault
    /// kinds.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        Self {
            script: VecDeque::new(),
            rng: SmallRng::seed_from_u64(seed),
            rate: rate.clamp(0.0, 1.0),
            counts: FaultCounts::default(),
            crash: None,
        }
    }

    /// Prepends `script` to whatever this schedule would otherwise
    /// produce (scripted decisions are consumed first).
    #[must_use]
    pub fn with_script(mut self, script: impl IntoIterator<Item = Fault>) -> Self {
        let mut front: VecDeque<Fault> = script.into_iter().collect();
        front.append(&mut self.script);
        self.script = front;
        self
    }

    /// Arms one scripted crash point (replacing any previous one).
    #[must_use]
    pub fn with_crash(mut self, spec: CrashSpec) -> Self {
        self.crash = Some(spec);
        self
    }

    /// Called by the durable store at each crash site it passes:
    /// returns `Some(spec)` exactly when the armed crash fires (its
    /// `skip` countdown reaching zero consumes the spec and counts a
    /// crash); `None` otherwise.
    pub fn crash_fires(&mut self, site: CrashSite) -> Option<CrashSpec> {
        let spec = self.crash.as_mut()?;
        if spec.site != site {
            return None;
        }
        if spec.skip > 0 {
            spec.skip -= 1;
            return None;
        }
        let fired = self.crash.take();
        self.counts.crashes += 1;
        fired
    }

    /// Wraps the schedule for sharing across reconnections.
    pub fn shared(self) -> Arc<Mutex<FaultSchedule>> {
        Arc::new(Mutex::new(self))
    }

    /// Injection counts so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn draw(&mut self) -> Fault {
        let fault = if let Some(f) = self.script.pop_front() {
            f
        } else if self.rng.gen_bool(self.rate) {
            match self.rng.gen_range(0u32..5) {
                0 => Fault::DropRequest,
                1 => Fault::DelayReply,
                // The proxy clamps to the reply length, so any small
                // value exercises header and body truncations.
                2 => Fault::TruncateReply(self.rng.gen_range(0usize..12)),
                3 => Fault::ResetOnWrite,
                _ => Fault::Busy,
            }
        } else {
            Fault::None
        };
        match fault {
            Fault::None => self.counts.clean += 1,
            Fault::DropRequest => self.counts.drops += 1,
            Fault::DelayReply => self.counts.delays += 1,
            Fault::TruncateReply(_) => self.counts.truncations += 1,
            Fault::ResetOnWrite => self.counts.resets += 1,
            Fault::Busy => self.counts.busies += 1,
        }
        fault
    }
}

/// A fault-injecting proxy around a connection to the profile server.
///
/// Writes are buffered until `flush`, at which point the buffered
/// request consumes one decision from the schedule and is forwarded,
/// dropped, or answered synthetically; replies are pre-read from the
/// inner stream so that timeouts, truncations, and stale late replies
/// can all be served deterministically without any real waiting.
pub struct FaultStream<S: Read + Write = TcpStream> {
    inner: S,
    schedule: Arc<Mutex<FaultSchedule>>,
    max_frame_bytes: usize,
    /// Request bytes accumulated since the last flush.
    wbuf: Vec<u8>,
    /// Reply bytes ready for the client to read.
    rbuf: VecDeque<u8>,
    /// A delayed reply, released into `rbuf` after the timeout fires.
    late: Vec<u8>,
    /// Reads to fail with `TimedOut` before serving anything further.
    pending_timeouts: usize,
    /// After a truncated reply drains, reads return end-of-stream.
    truncated: bool,
    /// A reset fault breaks the stream permanently with this kind.
    broken: Option<io::ErrorKind>,
}

impl<S: Read + Write> std::fmt::Debug for FaultStream<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultStream")
            .field("buffered_request", &self.wbuf.len())
            .field("buffered_reply", &self.rbuf.len())
            .field("pending_timeouts", &self.pending_timeouts)
            .field("truncated", &self.truncated)
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

impl FaultStream<TcpStream> {
    /// Connects to `addr` with `config`'s timeouts and wraps the
    /// connection in the fault proxy.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: NetConfig,
        schedule: Arc<Mutex<FaultSchedule>>,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self::new(stream, config, schedule))
    }
}

impl<S: Read + Write> FaultStream<S> {
    /// Wraps an established stream. `config` supplies the frame limit
    /// used when pre-reading replies.
    pub fn new(inner: S, config: NetConfig, schedule: Arc<Mutex<FaultSchedule>>) -> Self {
        Self {
            inner,
            schedule,
            max_frame_bytes: config.max_frame_bytes,
            wbuf: Vec::new(),
            rbuf: VecDeque::new(),
            late: Vec::new(),
            pending_timeouts: 0,
            truncated: false,
            broken: None,
        }
    }

    /// Reads one full reply frame (length prefix included) from the
    /// inner stream.
    fn read_reply_frame(&mut self) -> io::Result<Vec<u8>> {
        let body = read_msg(&mut self.inner, self.max_frame_bytes)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-exchange")
        })?;
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);
        Ok(frame)
    }

    fn forward_request(&mut self, request: &[u8]) -> io::Result<()> {
        self.inner.write_all(request)?;
        self.inner.flush()
    }
}

impl<S: Read + Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(kind) = self.broken {
            return Err(io::Error::new(kind, "injected connection reset"));
        }
        self.wbuf.extend_from_slice(buf);
        Ok(buf.len())
    }

    /// One flush of a buffered request is one exchange: it consumes one
    /// fault decision from the schedule.
    fn flush(&mut self) -> io::Result<()> {
        if let Some(kind) = self.broken {
            return Err(io::Error::new(kind, "injected connection reset"));
        }
        if self.wbuf.is_empty() {
            return Ok(());
        }
        let request = std::mem::take(&mut self.wbuf);
        let fault = self.schedule.lock().expect("fault schedule lock").draw();
        match fault {
            Fault::None => {
                self.forward_request(&request)?;
                let reply = self.read_reply_frame()?;
                self.rbuf.extend(reply);
            }
            Fault::DropRequest => {
                // The server never sees the request; the client's reply
                // read "times out" (immediately — no real waiting).
                self.pending_timeouts = 1;
            }
            Fault::DelayReply => {
                self.forward_request(&request)?;
                // The reply exists but arrives after the timeout: one
                // read fails, then the stale bytes become readable. A
                // client that keeps using this connection would decode
                // them as the answer to its *next* request.
                self.late = self.read_reply_frame()?;
                self.pending_timeouts = 1;
            }
            Fault::TruncateReply(keep) => {
                self.forward_request(&request)?;
                let reply = self.read_reply_frame()?;
                // Keep at most len-1 bytes so the frame is always
                // actually cut short.
                let keep = keep.min(reply.len().saturating_sub(1));
                self.rbuf.extend(&reply[..keep]);
                self.truncated = true;
            }
            Fault::ResetOnWrite => {
                self.broken = Some(io::ErrorKind::ConnectionReset);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected connection reset",
                ));
            }
            Fault::Busy => {
                let mut reply = Vec::new();
                write_msg(&mut reply, &[&[ST_ERR], b"busy: injected"])
                    .expect("writing to a Vec cannot fail");
                self.rbuf.extend(reply);
            }
        }
        Ok(())
    }
}

impl<S: Read + Write> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(kind) = self.broken {
            return Err(io::Error::new(kind, "injected connection reset"));
        }
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(&front) = self.rbuf.front() {
            let mut n = 0;
            buf[n] = front;
            self.rbuf.pop_front();
            n += 1;
            while n < buf.len() {
                match self.rbuf.pop_front() {
                    Some(b) => {
                        buf[n] = b;
                        n += 1;
                    }
                    None => break,
                }
            }
            return Ok(n);
        }
        if self.pending_timeouts > 0 {
            self.pending_timeouts -= 1;
            if self.pending_timeouts == 0 && !self.late.is_empty() {
                let late = std::mem::take(&mut self.late);
                self.rbuf.extend(late);
            }
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected reply timeout",
            ));
        }
        if self.truncated {
            return Ok(0); // end-of-stream after the cut
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A loopback "server" for unit tests: replies are pre-canned in a
    /// cursor, requests are appended to a sink.
    #[derive(Debug)]
    struct Canned {
        requests: Vec<u8>,
        replies: Cursor<Vec<u8>>,
    }

    impl Read for Canned {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.replies.read(buf)
        }
    }

    impl Write for Canned {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.requests.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn canned_ok_reply(payload: &[u8]) -> Canned {
        let mut replies = Vec::new();
        write_msg(&mut replies, &[&[crate::wire::ST_OK], payload]).unwrap();
        Canned {
            requests: Vec::new(),
            replies: Cursor::new(replies),
        }
    }

    fn exchange_through(
        fs: &mut FaultStream<Canned>,
        request: &[u8],
    ) -> io::Result<Option<Vec<u8>>> {
        write_msg(fs, &[request])?;
        read_msg(fs, 1 << 20)
    }

    #[test]
    fn clean_exchange_passes_through() {
        let sched = FaultSchedule::scripted([Fault::None]).shared();
        let mut fs = FaultStream::new(canned_ok_reply(b"hi"), NetConfig::default(), sched.clone());
        let reply = exchange_through(&mut fs, b"req").unwrap().unwrap();
        assert_eq!(reply, b"\x00hi");
        assert_eq!(fs.inner.requests, b"\x00\x00\x00\x03req");
        assert_eq!(sched.lock().unwrap().counts().clean, 1);
    }

    #[test]
    fn dropped_request_never_reaches_the_server_and_times_out() {
        let sched = FaultSchedule::scripted([Fault::DropRequest]).shared();
        let mut fs = FaultStream::new(canned_ok_reply(b"hi"), NetConfig::default(), sched);
        let err = exchange_through(&mut fs, b"req").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(fs.inner.requests.is_empty(), "request must be dropped");
    }

    #[test]
    fn delayed_reply_times_out_then_turns_stale() {
        let sched = FaultSchedule::scripted([Fault::DelayReply]).shared();
        let mut fs = FaultStream::new(canned_ok_reply(b"late"), NetConfig::default(), sched);
        let err = exchange_through(&mut fs, b"req").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The request *was* delivered, and the reply now sits in the
        // receive buffer where a naive client would misattribute it.
        assert_eq!(fs.inner.requests, b"\x00\x00\x00\x03req");
        let stale = read_msg(&mut fs, 1 << 20).unwrap().unwrap();
        assert_eq!(stale, b"\x00late");
    }

    #[test]
    fn truncated_reply_is_cut_then_eof() {
        for keep in 0..7 {
            let sched = FaultSchedule::scripted([Fault::TruncateReply(keep)]).shared();
            let mut fs = FaultStream::new(canned_ok_reply(b"hi"), NetConfig::default(), sched);
            match exchange_through(&mut fs, b"req") {
                // A cut at byte 0 is indistinguishable from a clean
                // close; every other cut is a framing error.
                Ok(None) => assert_eq!(keep, 0, "only a zero-byte cut reads as clean EOF"),
                Ok(Some(r)) => panic!("keep={keep}: cut frame parsed as {r:?}"),
                Err(e) => assert!(
                    matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                    ),
                    "keep={keep}: {e:?}"
                ),
            }
        }
    }

    #[test]
    fn reset_breaks_the_connection_permanently() {
        let sched = FaultSchedule::scripted([Fault::ResetOnWrite]).shared();
        let mut fs = FaultStream::new(canned_ok_reply(b"hi"), NetConfig::default(), sched);
        let err = exchange_through(&mut fs, b"req").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(fs.inner.requests.is_empty());
        let mut b = [0u8; 1];
        assert_eq!(
            fs.read(&mut b).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn busy_synthesizes_a_framed_refusal() {
        let sched = FaultSchedule::scripted([Fault::Busy]).shared();
        let mut fs = FaultStream::new(canned_ok_reply(b"hi"), NetConfig::default(), sched);
        let reply = exchange_through(&mut fs, b"req").unwrap().unwrap();
        assert_eq!(reply[0], ST_ERR);
        assert_eq!(&reply[1..], b"busy: injected");
        assert!(fs.inner.requests.is_empty(), "request must be swallowed");
    }

    #[test]
    fn seeded_schedule_is_reproducible_and_hits_its_rate() {
        let draws = |seed| {
            let mut s = FaultSchedule::seeded(seed, 0.25);
            (0..400).map(|_| s.draw()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7), "same seed, same schedule");
        assert_ne!(draws(7), draws(8), "different seed, different schedule");
        let mut s = FaultSchedule::seeded(7, 0.25);
        for _ in 0..400 {
            s.draw();
        }
        let c = s.counts();
        assert_eq!(c.total(), 400);
        let rate = c.faulted() as f64 / c.total() as f64;
        assert!((0.15..0.40).contains(&rate), "observed fault rate {rate}");
    }

    #[test]
    fn scripted_crash_fires_once_after_its_skip_countdown() {
        let mut s = FaultSchedule::scripted([])
            .with_crash(CrashSpec::at(CrashSite::AfterWalAppend).after(2).keeping(5));
        // Non-matching sites never consume the spec.
        assert_eq!(s.crash_fires(CrashSite::BeforeWalAppend), None);
        assert_eq!(s.crash_fires(CrashSite::MidCheckpoint), None);
        // Two matching events pass, the third fires.
        assert_eq!(s.crash_fires(CrashSite::AfterWalAppend), None);
        assert_eq!(s.crash_fires(CrashSite::AfterWalAppend), None);
        let fired = s.crash_fires(CrashSite::AfterWalAppend).unwrap();
        assert_eq!(fired.site, CrashSite::AfterWalAppend);
        assert_eq!(fired.torn_keep, 5);
        // Consumed: never fires again.
        assert_eq!(s.crash_fires(CrashSite::AfterWalAppend), None);
        assert_eq!(s.counts().crashes, 1);
        assert_eq!(s.counts().faulted(), 0, "crashes are not transport faults");
    }

    #[test]
    fn scripted_prefix_runs_before_seeded_draws() {
        let mut s = FaultSchedule::seeded(3, 1.0).with_script([Fault::Busy, Fault::None]);
        assert_eq!(s.draw(), Fault::Busy);
        assert_eq!(s.draw(), Fault::None);
        assert_ne!(s.draw(), Fault::None, "rate 1.0 always faults");
    }
}
