//! The bounded `OP_PUSH_SEQ` dedup table.
//!
//! Exactly-once sequenced pushes need the server to remember, per
//! client id, the highest sequence it has applied. An unbounded
//! `HashMap` grows forever under fleet client churn (every VM that ever
//! connected stays resident), so [`DedupTable`] caps the client count
//! and evicts the *least recently applied* client when a new one would
//! exceed the cap.
//!
//! Recency is a monotone touch counter, bumped **only when a record is
//! applied** — never when a duplicate is acknowledged. That restriction
//! is what makes the table recoverable: the durable store journals
//! exactly the applied records, so replaying the journal reproduces the
//! same touch values in the same order and eviction decisions are
//! bit-for-bit deterministic across a crash and restart.
//!
//! Evicting a client forgets its sequence history: if that client later
//! retries an old batch, the retry is applied again (the table cannot
//! distinguish it from a first delivery). The cap therefore trades a
//! bounded memory footprint for at-least-once delivery of clients idle
//! long enough to be evicted — the default cap (65 536 clients) makes
//! that window far wider than any retry policy's horizon.

use crate::metrics::ProfiledMetrics;
use std::collections::HashMap;

/// One client's dedup state, as exported for checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupEntry {
    /// Client id.
    pub client: u64,
    /// Highest applied sequence.
    pub seq: u64,
    /// Touch stamp of the client's most recent applied record.
    pub touch: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    seq: u64,
    touch: u64,
}

/// Highest applied push sequence per client id, bounded by a
/// least-recently-applied eviction policy (see the module docs).
#[derive(Debug, Clone)]
pub struct DedupTable {
    capacity: usize,
    next_touch: u64,
    map: HashMap<u64, Entry>,
}

impl Default for DedupTable {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl DedupTable {
    /// Default client cap: generous for any realistic fleet, small
    /// enough (tens of bytes per client) to bound the table at a few
    /// megabytes.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// An empty table capped at `capacity` clients (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            next_touch: 0,
            map: HashMap::new(),
        }
    }

    /// The client cap (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clients currently tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no client is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The highest applied sequence recorded for `client`, if tracked.
    /// Reads do not refresh recency (see the module docs).
    pub fn last_seq(&self, client: u64) -> Option<u64> {
        self.map.get(&client).map(|e| e.seq)
    }

    /// Records an applied `(client, seq)` pair, refreshing the client's
    /// recency, then evicts least-recently-applied clients until the
    /// table fits its cap again. Returns how many clients were evicted
    /// (also counted on `profiled.server.dedup_evictions`).
    ///
    /// Eviction scans for the minimum touch stamp — O(len), paid only
    /// when the table is at capacity and a *new* client arrives, which
    /// is exactly the fleet-churn case the cap exists for.
    pub fn record(&mut self, client: u64, seq: u64) -> usize {
        let touch = self.next_touch;
        self.next_touch += 1;
        self.map.insert(client, Entry { seq, touch });
        let mut evicted = 0usize;
        if self.capacity > 0 {
            while self.map.len() > self.capacity {
                // Touch stamps are unique; the id tiebreak only guards
                // against hand-restored duplicates.
                let victim = self
                    .map
                    .iter()
                    .min_by_key(|(id, e)| (e.touch, **id))
                    .map(|(id, _)| *id)
                    .expect("non-empty over-cap table");
                self.map.remove(&victim);
                evicted += 1;
            }
        }
        if evicted > 0 {
            ProfiledMetrics::get()
                .server_dedup_evictions
                .add(evicted as u64);
        }
        evicted
    }

    /// The highest sequence across all tracked clients (0 when empty) —
    /// the `dedup_max_seq` stats field.
    pub fn max_seq(&self) -> u64 {
        self.map.values().map(|e| e.seq).max().unwrap_or(0)
    }

    /// The touch stamp the next applied record will receive (journaled
    /// by checkpoints so recovery resumes the same recency sequence).
    pub fn next_touch(&self) -> u64 {
        self.next_touch
    }

    /// Every tracked entry, sorted by client id — the canonical
    /// (deterministic) order checkpoints serialize.
    pub fn entries(&self) -> Vec<DedupEntry> {
        let mut v: Vec<DedupEntry> = self
            .map
            .iter()
            .map(|(&client, e)| DedupEntry {
                client,
                seq: e.seq,
                touch: e.touch,
            })
            .collect();
        v.sort_unstable_by_key(|e| e.client);
        v
    }

    /// Replaces the table contents from a checkpoint: the entries keep
    /// their recorded touch stamps and the touch counter resumes at
    /// `next_touch`. The capacity is *not* restored — it is
    /// configuration, and a restart may legitimately lower it (the next
    /// [`record`](Self::record) then evicts down to the new cap).
    pub fn restore(&mut self, next_touch: u64, entries: &[DedupEntry]) {
        self.map.clear();
        for e in entries {
            self.map.insert(
                e.client,
                Entry {
                    seq: e.seq,
                    touch: e.touch,
                },
            );
        }
        self.next_touch = next_touch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let mut t = DedupTable::new(8);
        assert_eq!(t.last_seq(7), None);
        t.record(7, 3);
        assert_eq!(t.last_seq(7), Some(3));
        t.record(7, 5);
        assert_eq!(t.last_seq(7), Some(5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.max_seq(), 5);
    }

    #[test]
    fn eviction_is_least_recently_applied_and_bounded() {
        let mut t = DedupTable::new(3);
        t.record(1, 1);
        t.record(2, 1);
        t.record(3, 1);
        // Refresh client 1: it is now the most recent.
        t.record(1, 2);
        assert_eq!(t.record(4, 1), 1, "one eviction at cap");
        assert_eq!(t.len(), 3);
        assert_eq!(t.last_seq(2), None, "client 2 was the oldest applier");
        assert_eq!(t.last_seq(1), Some(2));
        assert_eq!(t.last_seq(3), Some(1));
        assert_eq!(t.last_seq(4), Some(1));
    }

    #[test]
    fn duplicate_reads_do_not_refresh_recency() {
        let mut t = DedupTable::new(2);
        t.record(1, 1);
        t.record(2, 1);
        // Reading client 1 must not save it from eviction.
        assert_eq!(t.last_seq(1), Some(1));
        t.record(3, 1);
        assert_eq!(t.last_seq(1), None, "reads must not bump recency");
        assert_eq!(t.last_seq(2), Some(1));
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut t = DedupTable::new(0);
        for client in 0..1000 {
            assert_eq!(t.record(client, 1), 0);
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn restore_round_trips_entries_and_touch_counter() {
        let mut t = DedupTable::new(4);
        t.record(9, 2);
        t.record(4, 7);
        t.record(9, 3);
        let entries = t.entries();
        let next = t.next_touch();

        let mut r = DedupTable::new(4);
        r.restore(next, &entries);
        assert_eq!(r.entries(), entries);
        assert_eq!(r.next_touch(), next);
        assert_eq!(r.last_seq(9), Some(3));
        // And the recency sequence continues identically.
        t.record(5, 1);
        r.record(5, 1);
        assert_eq!(r.entries(), t.entries());
    }

    #[test]
    fn restore_beyond_a_lowered_cap_evicts_on_next_record() {
        let mut t = DedupTable::new(0);
        for client in 0..5 {
            t.record(client, 1);
        }
        let mut r = DedupTable::new(3);
        r.restore(t.next_touch(), &t.entries());
        assert_eq!(r.len(), 5, "restore keeps checkpointed entries");
        assert_eq!(r.record(9, 1), 3, "next record evicts down to cap");
        assert_eq!(r.len(), 3);
    }
}
