//! The sharded, decaying, fleet-wide profile aggregator.
//!
//! Frames from many VM instances are folded into `N` shard graphs,
//! hash-partitioned by **caller** so every edge of a method — and hence
//! every call site's whole receiver distribution — lives in exactly one
//! shard. Ingestion from concurrent connections therefore contends only
//! on the shards a frame actually touches, while the 40%-rule queries
//! ([`site_distribution`]) stay single-graph exact.
//!
//! Freshness is a *virtual epoch clock*: [`advance_epoch`] only bumps an
//! atomic counter; each shard applies `decay_factor^(elapsed epochs)`
//! lazily the next time it is locked. Decay is multiplicative per epoch,
//! so a shard that sleeps through `k` epochs catches up in one
//! `decay(factor.powi(k))` — identical to having decayed every epoch.
//!
//! Consistency: [`merged_snapshot`] locks all shards (in index order —
//! every multi-shard path uses that order, so there is no lock-order
//! inversion), brings each to the current epoch, and merges in shard
//! order. The result is a true cut: it contains exactly the frames
//! ingested before the lock sweep completed, and two snapshots of the
//! same ingestion history are bit-identical.
//!
//! [`advance_epoch`]: ShardedAggregator::advance_epoch
//! [`merged_snapshot`]: ShardedAggregator::merged_snapshot
//! [`site_distribution`]: ShardedAggregator::site_distribution

use crate::codec::DcgFrame;
use crate::metrics::ProfiledMetrics;
use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Tuning for a [`ShardedAggregator`].
#[derive(Debug, Clone, Copy)]
pub struct AggregatorConfig {
    /// Number of shards (`0` is treated as `1`).
    pub shards: usize,
    /// Per-epoch multiplicative decay (`1.0` disables decay).
    pub decay_factor: f64,
    /// Edges whose decayed weight falls below this are dropped.
    pub min_weight: f64,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            decay_factor: 1.0,
            min_weight: 0.0,
        }
    }
}

impl AggregatorConfig {
    /// Config with `shards` shards and decay disabled.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// One shard: a graph plus the epoch its decay has been applied up to.
#[derive(Debug, Default)]
struct Shard {
    graph: DynamicCallGraph,
    epoch: u64,
}

/// Counters describing an aggregator's ingestion history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Frames ingested (snapshots + deltas).
    pub frames: u64,
    /// Edge records applied across all frames.
    pub records: u64,
    /// Current epoch.
    pub epoch: u64,
    /// Distinct edges currently held, per shard (index order).
    pub shard_edges: Vec<usize>,
}

impl AggregatorStats {
    /// Distinct edges across all shards.
    pub fn total_edges(&self) -> usize {
        self.shard_edges.iter().sum()
    }
}

/// A concurrent, sharded, epoch-decayed profile aggregator.
///
/// All methods take `&self`; the type is `Sync` and is shared across
/// server connection threads behind an `Arc`.
#[derive(Debug)]
pub struct ShardedAggregator {
    shards: Vec<Mutex<Shard>>,
    epoch: AtomicU64,
    frames: AtomicU64,
    records: AtomicU64,
    decay_factor: f64,
    min_weight: f64,
}

impl ShardedAggregator {
    /// Creates an empty aggregator.
    pub fn new(config: AggregatorConfig) -> Self {
        let n = config.shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            epoch: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            records: AtomicU64::new(0),
            decay_factor: config.decay_factor,
            min_weight: config.min_weight,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard an edge belongs to. Partitioning is by caller, mixed
    /// through SplitMix64's finalizer so dense `MethodId`s spread evenly
    /// over any shard count.
    pub fn shard_of(&self, caller: MethodId) -> usize {
        let mut z = u64::from(u32::from(caller)).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Locks `shard` and brings its decay up to the current epoch.
    fn locked_current(&self, shard: usize) -> MutexGuard<'_, Shard> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut guard = self.shards[shard].lock().expect("shard lock");
        Self::catch_up(&mut guard, epoch, self.decay_factor, self.min_weight);
        guard
    }

    /// Applies the lazy decay catch-up to one locked shard (shared by
    /// [`locked_current`](Self::locked_current) and
    /// [`merged_snapshot`](Self::merged_snapshot)).
    fn catch_up(guard: &mut Shard, epoch: u64, decay_factor: f64, min_weight: f64) {
        if guard.epoch < epoch {
            let elapsed = (epoch - guard.epoch).min(i32::MAX as u64) as i32;
            if decay_factor != 1.0 {
                let m = ProfiledMetrics::get();
                let before = guard.graph.num_edges();
                guard.graph.decay(decay_factor.powi(elapsed), min_weight);
                m.agg_decay_catchups.inc();
                m.agg_pruned_edges
                    .add(before.saturating_sub(guard.graph.num_edges()) as u64);
            }
            guard.epoch = epoch;
        }
    }

    /// Folds a decoded frame into the shards.
    ///
    /// Snapshot and delta frames are both *additive*: a snapshot is a
    /// VM's first flush, deltas are its subsequent growth, so the
    /// aggregate over a fleet is simply the sum of everything pushed
    /// (then decayed by the epoch clock). Records are grouped so each
    /// touched shard is locked exactly once per frame.
    pub fn ingest(&self, frame: &DcgFrame) {
        self.ingest_records(&frame.edges);
        self.frames.fetch_add(1, Ordering::Relaxed);
        ProfiledMetrics::get().agg_frames.inc();
    }

    /// Folds raw `(edge, weight)` records (already validated positive and
    /// finite, as the codec guarantees) into the shards.
    pub fn ingest_records(&self, records: &[(CallEdge, f64)]) {
        if self.shards.len() == 1 {
            let mut guard = self.locked_current(0);
            for &(e, w) in records {
                guard.graph.record(e, w);
            }
        } else {
            // One pass per touched shard. Frames are edge-sorted, so each
            // shard's records are applied in edge order — the same order
            // every time, keeping repeated ingestion histories
            // bit-identical.
            let mut touched: Vec<bool> = vec![false; self.shards.len()];
            for (e, _) in records {
                touched[self.shard_of(e.caller)] = true;
            }
            for (shard, hit) in touched.into_iter().enumerate() {
                if !hit {
                    continue;
                }
                let mut guard = self.locked_current(shard);
                for &(e, w) in records {
                    if self.shard_of(e.caller) == shard {
                        guard.graph.record(e, w);
                    }
                }
            }
        }
        self.records
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        ProfiledMetrics::get().agg_records.add(records.len() as u64);
    }

    /// Advances the virtual epoch clock by one, returning the new epoch.
    ///
    /// O(1): shards decay lazily on their next lock.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A consistent fleet-wide snapshot: all shards locked (index
    /// order), decayed to the current epoch, and merged in shard order.
    pub fn merged_snapshot(&self) -> DynamicCallGraph {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut guards: Vec<MutexGuard<'_, Shard>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut guard = shard.lock().expect("shard lock");
            Self::catch_up(&mut guard, epoch, self.decay_factor, self.min_weight);
            guards.push(guard);
        }
        DynamicCallGraph::merge_all(guards.iter().map(|g| &g.graph))
    }

    /// Fleet-wide hot edges: edges holding at least `percent` of the
    /// merged total weight, heaviest first (the inliner's hot-edge
    /// query).
    pub fn hot_edges(&self, percent: f64) -> Vec<(CallEdge, f64)> {
        self.merged_snapshot().hot_edges(percent)
    }

    /// The fleet-wide receiver distribution of one call site, sorted by
    /// descending weight — the input to the paper's 40% guarded-inlining
    /// rule.
    ///
    /// A call site lives inside exactly one caller, so its whole
    /// distribution sits in one shard; only `caller`'s shard is locked.
    pub fn site_distribution(&self, caller: MethodId, site: CallSiteId) -> Vec<(MethodId, f64)> {
        let guard = self.locked_current(self.shard_of(caller));
        guard.graph.site_distribution(site)
    }

    /// Total weight flowing out of `caller`, from its single shard.
    pub fn outgoing_weight(&self, caller: MethodId) -> f64 {
        let guard = self.locked_current(self.shard_of(caller));
        guard.graph.outgoing_weight(caller)
    }

    /// Ingestion counters and per-shard sizes.
    pub fn stats(&self) -> AggregatorStats {
        AggregatorStats {
            frames: self.frames.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            epoch: self.epoch(),
            shard_edges: self
                .shards
                .iter()
                .map(|s| s.lock().expect("shard lock").graph.num_edges())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::DcgCodec;

    fn e(caller: u32, site: u32, callee: u32) -> CallEdge {
        CallEdge::new(
            MethodId::new(caller),
            CallSiteId::new(site),
            MethodId::new(callee),
        )
    }

    fn graph(entries: &[(CallEdge, f64)]) -> DynamicCallGraph {
        entries.iter().copied().collect()
    }

    #[test]
    fn sharded_merge_equals_direct_merge_for_any_shard_count() {
        let a = graph(&[(e(0, 0, 1), 3.0), (e(7, 1, 2), 1.0), (e(93, 2, 3), 4.0)]);
        let b = graph(&[(e(0, 0, 1), 2.0), (e(41, 3, 5), 8.0)]);
        let expected = DynamicCallGraph::merge_all([&a, &b]);
        for shards in [1, 2, 4, 8, 13] {
            let agg = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
            agg.ingest(&DcgCodec::decode(&DcgCodec::encode_snapshot(&a)).unwrap());
            agg.ingest(&DcgCodec::decode(&DcgCodec::encode_snapshot(&b)).unwrap());
            let merged = agg.merged_snapshot();
            assert_eq!(merged, expected, "shards={shards}");
            assert_eq!(agg.stats().frames, 2);
            assert_eq!(agg.stats().records, 5);
            assert_eq!(agg.stats().total_edges(), merged.num_edges());
        }
    }

    #[test]
    fn caller_partitioning_keeps_sites_whole() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(8));
        // Virtual site 4 in caller 2 dispatches to three receivers.
        agg.ingest_records(&[
            (e(2, 4, 10), 50.0),
            (e(2, 4, 11), 45.0),
            (e(2, 4, 12), 5.0),
            (e(3, 9, 10), 100.0),
        ]);
        let dist = agg.site_distribution(MethodId::new(2), CallSiteId::new(4));
        assert_eq!(dist.len(), 3);
        assert_eq!(dist[0], (MethodId::new(10), 50.0));
        // 40%-rule shares are exact per-site fractions.
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((dist[0].1 / total - 0.5).abs() < 1e-12);
        assert_eq!(agg.outgoing_weight(MethodId::new(2)), 100.0);
        // All of caller 2's edges share one shard.
        let s = agg.shard_of(MethodId::new(2));
        let shard_sizes = agg.stats().shard_edges;
        assert!(shard_sizes[s] >= 3);
    }

    #[test]
    fn lazy_epoch_decay_matches_eager_per_epoch_decay() {
        let cfg = AggregatorConfig {
            shards: 4,
            decay_factor: 0.5,
            min_weight: 0.0,
        };
        let agg = ShardedAggregator::new(cfg);
        agg.ingest_records(&[(e(0, 0, 1), 16.0), (e(9, 1, 2), 4.0)]);
        // Three epochs pass without the shards being touched.
        agg.advance_epoch();
        agg.advance_epoch();
        agg.advance_epoch();
        let merged = agg.merged_snapshot();
        assert!(
            (merged.weight(&e(0, 0, 1)) - 2.0).abs() < 1e-12,
            "16 × 0.5³"
        );
        assert!((merged.weight(&e(9, 1, 2)) - 0.5).abs() < 1e-12);
        // Fresh weight lands undecayed after the catch-up.
        agg.ingest_records(&[(e(0, 0, 1), 1.0)]);
        assert!((agg.merged_snapshot().weight(&e(0, 0, 1)) - 3.0).abs() < 1e-12);
        assert_eq!(agg.epoch(), 3);
    }

    #[test]
    fn decay_prunes_below_min_weight() {
        let cfg = AggregatorConfig {
            shards: 2,
            decay_factor: 0.1,
            min_weight: 0.5,
        };
        let agg = ShardedAggregator::new(cfg);
        agg.ingest_records(&[(e(0, 0, 1), 100.0), (e(1, 1, 2), 1.0)]);
        agg.advance_epoch();
        let merged = agg.merged_snapshot();
        assert_eq!(merged.num_edges(), 1, "light edge pruned: {merged:?}");
        assert!((merged.weight(&e(0, 0, 1)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn hot_edges_are_fleet_wide() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        // Two "VMs" each see half of a hot edge's traffic.
        agg.ingest_records(&[(e(0, 0, 1), 49.0), (e(5, 1, 2), 1.0)]);
        agg.ingest_records(&[(e(0, 0, 1), 49.0), (e(6, 2, 3), 1.0)]);
        let hot = agg.hot_edges(50.0);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, e(0, 0, 1));
        assert_eq!(hot[0].1, 98.0);
    }

    #[test]
    fn concurrent_ingestion_converges_to_the_same_multiset() {
        use std::sync::Arc;
        let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
        let frames: Vec<Vec<(CallEdge, f64)>> = (0..16u32)
            .map(|i| {
                (0..50u32)
                    .map(|j| (e(j % 11, j % 5, (i + j) % 7), 1.0))
                    .collect()
            })
            .collect();
        // Expected: same records ingested serially.
        let serial = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        for f in &frames {
            serial.ingest_records(f);
        }
        let expected = serial.merged_snapshot();

        std::thread::scope(|scope| {
            for chunk in frames.chunks(4) {
                let agg = Arc::clone(&agg);
                scope.spawn(move || {
                    for f in chunk {
                        agg.ingest_records(f);
                    }
                });
            }
        });
        // Unit weights: addition is exact, so any interleaving converges
        // to the identical graph.
        assert_eq!(agg.merged_snapshot(), expected);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(0));
        assert_eq!(agg.num_shards(), 1);
        agg.ingest_records(&[(e(0, 0, 1), 1.0)]);
        assert_eq!(agg.merged_snapshot().num_edges(), 1);
    }
}
