//! The sharded, decaying, fleet-wide profile aggregator.
//!
//! Frames from many VM instances are folded into `N` shard graphs,
//! hash-partitioned by **caller** so every edge of a method — and hence
//! every call site's whole receiver distribution — lives in exactly one
//! shard. Ingestion from concurrent connections therefore contends only
//! on the shards a frame actually touches, while the 40%-rule queries
//! ([`site_distribution`]) stay single-graph exact.
//!
//! Freshness is a *virtual epoch clock*: [`advance_epoch`] only bumps an
//! atomic counter; each shard applies one multiplicative decay pass per
//! elapsed epoch lazily the next time it is locked. The catch-up is one
//! `decay(factor)` **per epoch** rather than a single
//! `decay(factor.powi(k))`: sequential single multiplies produce the
//! same bit pattern no matter how the elapsed epochs are grouped across
//! catch-ups, which is what lets a crash-recovered aggregator (whose
//! catch-up points differ from the original run's) reproduce weights
//! bit-for-bit.
//!
//! Consistency: [`merged_snapshot`] locks all shards (in index order —
//! every multi-shard path uses that order, so there is no lock-order
//! inversion), brings each to the current epoch, and merges in shard
//! order. The result is a true cut: it contains exactly the frames
//! ingested before the lock sweep completed, and two snapshots of the
//! same ingestion history are bit-identical.
//!
//! [`advance_epoch`]: ShardedAggregator::advance_epoch
//! [`merged_snapshot`]: ShardedAggregator::merged_snapshot
//! [`site_distribution`]: ShardedAggregator::site_distribution

use crate::codec::{CodecError, DcgCodec, DcgFrame, FrameKind};
use crate::metrics::ProfiledMetrics;
use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Below this many total edges a merged-snapshot rebuild stays serial;
/// at or above it (and with ≥ 4 shards) shard graphs are merged by a
/// small pool of scoped threads in a fixed reduction order.
const PARALLEL_MERGE_MIN_EDGES: usize = 4096;

/// Reusable scratch for partitioning a frame's records into per-shard
/// buckets.
///
/// One instance per connection (or per ingesting thread) makes the
/// steady-state ingest path allocation-free: the bucket `Vec`s are
/// cleared — not dropped — between frames, so after the first few
/// frames their capacity plateaus and every subsequent partition only
/// writes into retained storage.
#[derive(Debug, Default)]
pub struct IngestScratch {
    buckets: Vec<Vec<(CallEdge, f64)>>,
}

impl IngestScratch {
    /// Creates an empty scratch; buckets are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures one (empty) bucket per shard, retaining capacity.
    fn reset(&mut self, shards: usize) {
        self.buckets.resize_with(shards, Vec::new);
        for b in &mut self.buckets {
            b.clear();
        }
    }
}

/// Tuning for a [`ShardedAggregator`].
#[derive(Debug, Clone, Copy)]
pub struct AggregatorConfig {
    /// Number of shards (`0` is treated as `1`).
    pub shards: usize,
    /// Per-epoch multiplicative decay (`1.0` disables decay).
    pub decay_factor: f64,
    /// Edges whose decayed weight falls below this are dropped.
    pub min_weight: f64,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            decay_factor: 1.0,
            min_weight: 0.0,
        }
    }
}

impl AggregatorConfig {
    /// Config with `shards` shards and decay disabled.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// One shard: a graph plus the epoch its decay has been applied up to.
#[derive(Debug, Default)]
struct Shard {
    graph: DynamicCallGraph,
    epoch: u64,
}

/// A merged snapshot (graph + its canonical encoding) stamped with the
/// generation it was built from.
///
/// The stamp is read *before* the shard sweep that builds the snapshot,
/// while mutators bump the generation *after* applying their records —
/// so a cached entry can only be stamped older than the data it holds,
/// never newer. A stale stamp therefore forces at worst a redundant
/// rebuild of identical bytes; it can never serve data older than its
/// generation.
#[derive(Debug)]
struct SnapshotCache {
    generation: u64,
    graph: Arc<DynamicCallGraph>,
    encoded: Arc<Vec<u8>>,
}

/// The encoded fleet inlining plan stamped with the generation it was
/// built from; same freshness argument as [`SnapshotCache`].
#[derive(Debug)]
struct PlanCache {
    generation: u64,
    encoded: Arc<Vec<u8>>,
}

/// Counters describing an aggregator's ingestion history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Frames ingested (snapshots + deltas).
    pub frames: u64,
    /// Edge records applied across all frames.
    pub records: u64,
    /// Current epoch.
    pub epoch: u64,
    /// Distinct edges currently held, per shard (index order).
    pub shard_edges: Vec<usize>,
}

impl AggregatorStats {
    /// Distinct edges across all shards.
    pub fn total_edges(&self) -> usize {
        self.shard_edges.iter().sum()
    }
}

/// A concurrent, sharded, epoch-decayed profile aggregator.
///
/// All methods take `&self`; the type is `Sync` and is shared across
/// server connection threads behind an `Arc`.
#[derive(Debug)]
pub struct ShardedAggregator {
    shards: Vec<Mutex<Shard>>,
    epoch: AtomicU64,
    frames: AtomicU64,
    records: AtomicU64,
    /// Bumped after every state change that can alter the merged
    /// snapshot (record-applying ingest, epoch advance). The snapshot
    /// cache compares its stamp against this to decide hit vs rebuild.
    generation: AtomicU64,
    cache: Mutex<Option<SnapshotCache>>,
    plan_cache: Mutex<Option<PlanCache>>,
    decay_factor: f64,
    min_weight: f64,
}

impl ShardedAggregator {
    /// Creates an empty aggregator.
    pub fn new(config: AggregatorConfig) -> Self {
        let n = config.shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            epoch: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            records: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            cache: Mutex::new(None),
            plan_cache: Mutex::new(None),
            decay_factor: config.decay_factor,
            min_weight: config.min_weight,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard an edge belongs to. Partitioning is by caller, mixed
    /// through SplitMix64's finalizer so dense `MethodId`s spread evenly
    /// over any shard count.
    pub fn shard_of(&self, caller: MethodId) -> usize {
        let mut z = u64::from(u32::from(caller)).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Locks `shard` and brings its decay up to the current epoch.
    fn locked_current(&self, shard: usize) -> MutexGuard<'_, Shard> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut guard = self.shards[shard].lock().expect("shard lock");
        Self::catch_up(&mut guard, epoch, self.decay_factor, self.min_weight);
        guard
    }

    /// Applies the lazy decay catch-up to one locked shard (shared by
    /// [`locked_current`](Self::locked_current) and
    /// [`merged_snapshot`](Self::merged_snapshot)).
    fn catch_up(guard: &mut Shard, epoch: u64, decay_factor: f64, min_weight: f64) {
        if guard.epoch < epoch {
            if decay_factor != 1.0 {
                let m = ProfiledMetrics::get();
                let before = guard.graph.num_edges();
                // One multiply per elapsed epoch, never a pre-folded
                // power: `(w·f)·f` and `w·(f·f)` differ in their last
                // rounding bit, so folding would make the weights
                // depend on *when* catch-ups happened (e.g. on pull
                // timing) — and crash recovery, whose catch-up points
                // differ from the original run's, could then never be
                // bit-identical. Pruning per pass matches eager
                // per-epoch decay exactly.
                for _ in guard.epoch..epoch {
                    guard.graph.decay(decay_factor, min_weight);
                }
                m.agg_decay_catchups.inc();
                m.agg_pruned_edges
                    .add(before.saturating_sub(guard.graph.num_edges()) as u64);
            }
            guard.epoch = epoch;
        }
    }

    /// Folds a decoded frame into the shards.
    ///
    /// Snapshot and delta frames are both *additive*: a snapshot is a
    /// VM's first flush, deltas are its subsequent growth, so the
    /// aggregate over a fleet is simply the sum of everything pushed
    /// (then decayed by the epoch clock). Records are grouped so each
    /// touched shard is locked exactly once per frame.
    pub fn ingest(&self, frame: &DcgFrame) {
        self.ingest_records(&frame.edges);
        self.frames.fetch_add(1, Ordering::Relaxed);
        ProfiledMetrics::get().agg_frames.inc();
    }

    /// Folds raw `(edge, weight)` records (already validated positive and
    /// finite, as the codec guarantees) into the shards.
    ///
    /// Convenience wrapper over
    /// [`ingest_records_with`](Self::ingest_records_with) using a
    /// throwaway scratch; pooled callers (the server's connection
    /// threads) pass their own to keep the path allocation-free.
    pub fn ingest_records(&self, records: &[(CallEdge, f64)]) {
        let mut scratch = IngestScratch::new();
        self.ingest_records_with(records, &mut scratch);
    }

    /// Folds raw records into the shards through a caller-owned
    /// partitioning scratch.
    ///
    /// The records are partitioned into per-shard buckets in **one
    /// pass**; each bucket preserves the input (edge-sorted) order of
    /// its shard's records, so the weights land in exactly the order the
    /// old one-scan-per-shard path applied them and repeated ingestion
    /// histories stay bit-identical.
    pub fn ingest_records_with(&self, records: &[(CallEdge, f64)], scratch: &mut IngestScratch) {
        if self.shards.len() == 1 {
            let mut guard = self.locked_current(0);
            guard.graph.record_all_deferred(records);
        } else {
            scratch.reset(self.shards.len());
            for &(e, w) in records {
                scratch.buckets[self.shard_of(e.caller)].push((e, w));
            }
            self.apply_buckets(scratch);
        }
        self.finish_ingest(records.len());
    }

    /// Locks each touched shard once (index order) and applies its
    /// bucket, clearing buckets for reuse.
    ///
    /// Records are applied *deferred*: weights land immediately, but
    /// the shard's sorted permutation is left stale until the next
    /// snapshot rebuild seals it ([`rebuild_merged`](Self::rebuild_merged)).
    /// A shard absorbing thousands of frames between pulls therefore
    /// pays for permutation maintenance once per pull, not per frame.
    fn apply_buckets(&self, scratch: &mut IngestScratch) {
        for (shard, bucket) in scratch.buckets.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut guard = self.locked_current(shard);
            guard.graph.record_all_deferred(bucket);
            bucket.clear();
        }
    }

    /// Record-count bookkeeping shared by every ingest path; bumps the
    /// snapshot generation when any record was applied.
    fn finish_ingest(&self, records: usize) {
        self.records.fetch_add(records as u64, Ordering::Relaxed);
        ProfiledMetrics::get().agg_records.add(records as u64);
        if records > 0 {
            self.generation.fetch_add(1, Ordering::Release);
        }
    }

    /// Decodes an encoded frame *streamingly* into the shards: records
    /// fold straight into the partitioning scratch as they are decoded,
    /// with no intermediate `Vec<(CallEdge, f64)>`.
    ///
    /// All-or-nothing: the frame is fully validated before any shard is
    /// touched, so a malformed frame applies nothing. Returns the frame
    /// kind and the number of records applied.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] the eager [`DcgCodec::decode`] would return for
    /// the same bytes (the two paths accept and reject identical inputs).
    pub fn ingest_frame_bytes(
        &self,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<(FrameKind, usize), CodecError> {
        let (kind, count) = self.partition_frame(bytes, scratch)?;
        self.apply_partitioned(scratch);
        Ok((kind, count))
    }

    /// Decodes and partitions an encoded frame into `scratch`'s
    /// per-shard buckets without touching any shard — the validation
    /// half of [`ingest_frame_bytes`](Self::ingest_frame_bytes).
    ///
    /// Accepts and rejects exactly the inputs [`DcgCodec::decode`]
    /// does, and a frame that partitions cleanly always applies. The
    /// durable store splits its write path on this boundary: partition
    /// *before* journaling (with concurrent appenders a bad frame can
    /// no longer be truncated back off the log, so it must prove itself
    /// first), then fold the already-decoded buckets in under the apply
    /// turnstile — one decode per record instead of a validation pass
    /// plus a decode pass.
    pub fn partition_frame(
        &self,
        bytes: &[u8],
        scratch: &mut IngestScratch,
    ) -> Result<(FrameKind, usize), CodecError> {
        let iter = DcgCodec::records(bytes)?;
        let kind = iter.kind();
        scratch.reset(self.shards.len());
        let single = self.shards.len() == 1;
        let mut count = 0usize;
        for rec in iter {
            let (e, w) = rec?;
            let shard = if single { 0 } else { self.shard_of(e.caller) };
            scratch.buckets[shard].push((e, w));
            count += 1;
        }
        Ok((kind, count))
    }

    /// Folds buckets previously filled by
    /// [`partition_frame`](Self::partition_frame) into the shards and
    /// does the per-frame bookkeeping. Returns the record count
    /// applied (the partition's count: the buckets drain into the
    /// shards exactly as filled).
    pub fn apply_partitioned(&self, scratch: &mut IngestScratch) -> usize {
        let count = scratch.buckets.iter().map(Vec::len).sum();
        self.apply_buckets(scratch);
        self.frames.fetch_add(1, Ordering::Relaxed);
        ProfiledMetrics::get().agg_frames.inc();
        self.finish_ingest(count);
        count
    }

    /// Advances the virtual epoch clock by one, returning the new epoch.
    ///
    /// O(1): shards decay lazily on their next lock. Invalidates the
    /// snapshot cache (the next snapshot must re-run decay catch-up).
    pub fn advance_epoch(&self) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.generation.fetch_add(1, Ordering::Release);
        epoch
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot generation (bumps on record-applying ingest
    /// and on [`advance_epoch`](Self::advance_epoch)).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Restores the epoch clock after recovery: sets the global epoch
    /// **and** stamps every shard as already decayed through it, so no
    /// catch-up decay fires for the restored span.
    ///
    /// A checkpoint snapshot is captured post-catch-up — its weights
    /// already reflect every decay through its epoch. Re-ingesting it
    /// into a fresh aggregator (epoch 0) and then calling
    /// `restore_clock(epoch)` therefore reproduces the checkpointed
    /// shard state exactly; decaying again would double-apply.
    ///
    /// Recovery-only: callers must be the sole owner (no concurrent
    /// ingest), as during `ProfileStore::open`.
    pub fn restore_clock(&self, epoch: u64) {
        for shard in &self.shards {
            shard.lock().expect("shard lock").epoch = epoch;
        }
        self.epoch.store(epoch, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Restores the frame/record counters after recovery, so
    /// `OP_STATS` continues the pre-crash sequence instead of counting
    /// the checkpoint snapshot as one giant frame.
    ///
    /// Recovery-only, like [`restore_clock`](Self::restore_clock).
    pub fn restore_counters(&self, frames: u64, records: u64) {
        self.frames.store(frames, Ordering::Relaxed);
        self.records.store(records, Ordering::Relaxed);
    }

    /// Builds a merged snapshot from the live shards: all shards locked
    /// (index order), decayed to the current epoch, and merged with a
    /// fixed reduction order.
    ///
    /// Caller-partitioning means every edge lives in exactly one shard,
    /// so merging only copies disjoint edge sets and the merged graph —
    /// including its canonically re-summed total — is bit-identical for
    /// *any* merge tree shape. That freedom is what lets large rebuilds
    /// fan the per-shard merges out over scoped threads (chunked, fixed
    /// chunk boundaries, chunk results folded in index order) without
    /// perturbing a single output bit vs the serial shard-order merge.
    fn rebuild_merged(&self) -> DynamicCallGraph {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut guards: Vec<MutexGuard<'_, Shard>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut guard = shard.lock().expect("shard lock");
            Self::catch_up(&mut guard, epoch, self.decay_factor, self.min_weight);
            // Seal the deferred ingest tail: this is the read boundary
            // where the per-frame permutation debt is settled at once.
            guard.graph.seal();
            guards.push(guard);
        }
        let total_edges: usize = guards.iter().map(|g| g.graph.num_edges()).sum();
        if guards.len() >= 4 && total_edges >= PARALLEL_MERGE_MIN_EDGES {
            // Four chunks ≈ four merge workers; the last partial merge
            // below walks the chunk results in index order.
            let chunk = guards.len().div_ceil(4);
            let partials: Vec<DynamicCallGraph> = std::thread::scope(|s| {
                let workers: Vec<_> = guards
                    .chunks(chunk)
                    .map(|gs| {
                        s.spawn(move || DynamicCallGraph::merge_all(gs.iter().map(|g| &g.graph)))
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("merge worker"))
                    .collect()
            });
            DynamicCallGraph::merge_all(partials.iter())
        } else {
            DynamicCallGraph::merge_all(guards.iter().map(|g| &g.graph))
        }
    }

    /// The cached `(graph, encoded)` pair for the current generation,
    /// rebuilding on a cold or stale cache.
    ///
    /// The generation stamp is read under the cache lock *before* the
    /// shard sweep; mutators bump it *after* applying. A concurrent push
    /// can therefore make a just-built entry carry data newer than its
    /// stamp (forcing one redundant rebuild later) but never older — a
    /// cache hit is always at least as fresh as the generation it
    /// matched. Holding the cache lock across the rebuild also
    /// serializes concurrent pullers onto one rebuild instead of N.
    fn cached_snapshot(&self) -> (Arc<DynamicCallGraph>, Arc<Vec<u8>>) {
        let m = ProfiledMetrics::get();
        let mut cache = self.cache.lock().expect("snapshot cache lock");
        let generation = self.generation.load(Ordering::Acquire);
        if let Some(c) = cache.as_ref() {
            if c.generation == generation {
                m.agg_cache_hits.inc();
                return (Arc::clone(&c.graph), Arc::clone(&c.encoded));
            }
            m.agg_cache_invalidations.inc();
        }
        m.agg_cache_misses.inc();
        let graph = Arc::new(self.rebuild_merged());
        let encoded = Arc::new(DcgCodec::encode_snapshot(&graph));
        *cache = Some(SnapshotCache {
            generation,
            graph: Arc::clone(&graph),
            encoded: Arc::clone(&encoded),
        });
        (graph, encoded)
    }

    /// A consistent fleet-wide snapshot, served from the
    /// generation-stamped cache (rebuilt only after ingest or an epoch
    /// advance). The returned graph is bit-identical to locking all
    /// shards and merging them in shard order.
    pub fn merged_snapshot(&self) -> DynamicCallGraph {
        self.merged_snapshot_shared().as_ref().clone()
    }

    /// [`merged_snapshot`](Self::merged_snapshot) without the copy:
    /// hands out the cache's shared graph.
    pub fn merged_snapshot_shared(&self) -> Arc<DynamicCallGraph> {
        self.cached_snapshot().0
    }

    /// The canonical [`DcgCodec::encode_snapshot`] bytes of the merged
    /// snapshot, shared from the cache — the server's `OP_PULL` /
    /// `OP_PULL_CHUNK` fast path: repeated pulls of an unchanged
    /// aggregate are O(1), re-serving the same encoded buffer.
    pub fn encoded_snapshot(&self) -> Arc<Vec<u8>> {
        self.cached_snapshot().1
    }

    /// The canonical [`DcgCodec::encode_plan`] bytes of the fleet
    /// inlining plan — [`cbs_inliner::build_plan`] with the paper's
    /// [`NewLinearPolicy`](cbs_inliner::NewLinearPolicy) run against the
    /// merged snapshot, stamped with the snapshot generation.
    ///
    /// Cached under the same generation discipline as
    /// [`encoded_snapshot`](Self::encoded_snapshot): an unchanged
    /// aggregate serves the identical buffer (so `OP_PLAN` answers are
    /// bit-identical), and the cache invalidates exactly when pulls do.
    pub fn encoded_plan(&self) -> Arc<Vec<u8>> {
        let m = ProfiledMetrics::get();
        let mut cache = self.plan_cache.lock().expect("plan cache lock");
        let generation = self.generation.load(Ordering::Acquire);
        if let Some(c) = cache.as_ref() {
            if c.generation == generation {
                m.plan_cache_hits.inc();
                return Arc::clone(&c.encoded);
            }
            m.plan_cache_invalidations.inc();
        }
        m.plan_cache_misses.inc();
        let graph = self.merged_snapshot_shared();
        let plan =
            cbs_inliner::build_plan(&graph, &cbs_inliner::NewLinearPolicy::default(), generation);
        m.plan_builds.inc();
        m.plan_decisions.add(plan.entries.len() as u64);
        let encoded = Arc::new(DcgCodec::encode_plan(&plan));
        *cache = Some(PlanCache {
            generation,
            encoded: Arc::clone(&encoded),
        });
        encoded
    }

    /// Fleet-wide hot edges: edges holding at least `percent` of the
    /// merged total weight, heaviest first (the inliner's hot-edge
    /// query). Served from the snapshot cache.
    pub fn hot_edges(&self, percent: f64) -> Vec<(CallEdge, f64)> {
        self.merged_snapshot_shared().hot_edges(percent)
    }

    /// The fleet-wide receiver distribution of one call site, sorted by
    /// descending weight — the input to the paper's 40% guarded-inlining
    /// rule.
    ///
    /// A call site is identified by its `(caller, site)` pair: site ids
    /// can repeat under *other* callers (including callers that happen to
    /// hash to the same shard), so the query filters the cached merged
    /// snapshot on the caller itself, never on its shard.
    pub fn site_distribution(&self, caller: MethodId, site: CallSiteId) -> Vec<(MethodId, f64)> {
        let graph = self.merged_snapshot_shared();
        let mut per_callee: HashMap<MethodId, f64> = HashMap::new();
        for (e, w) in graph.iter() {
            if e.caller == caller && e.site == site {
                *per_callee.entry(e.callee).or_insert(0.0) += w;
            }
        }
        let mut v: Vec<(MethodId, f64)> = per_callee.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Total weight flowing out of `caller`, from the cached merged
    /// snapshot. All of `caller`'s edges share one shard, so the merged
    /// graph's caller-filtered subsequence is exactly that shard's — the
    /// sum is bit-identical to scanning the shard under its lock.
    pub fn outgoing_weight(&self, caller: MethodId) -> f64 {
        self.merged_snapshot_shared().outgoing_weight(caller)
    }

    /// Ingestion counters and per-shard sizes.
    pub fn stats(&self) -> AggregatorStats {
        AggregatorStats {
            frames: self.frames.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            epoch: self.epoch(),
            shard_edges: self
                .shards
                .iter()
                .map(|s| s.lock().expect("shard lock").graph.num_edges())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::DcgCodec;

    fn e(caller: u32, site: u32, callee: u32) -> CallEdge {
        CallEdge::new(
            MethodId::new(caller),
            CallSiteId::new(site),
            MethodId::new(callee),
        )
    }

    fn graph(entries: &[(CallEdge, f64)]) -> DynamicCallGraph {
        entries.iter().copied().collect()
    }

    #[test]
    fn sharded_merge_equals_direct_merge_for_any_shard_count() {
        let a = graph(&[(e(0, 0, 1), 3.0), (e(7, 1, 2), 1.0), (e(93, 2, 3), 4.0)]);
        let b = graph(&[(e(0, 0, 1), 2.0), (e(41, 3, 5), 8.0)]);
        let expected = DynamicCallGraph::merge_all([&a, &b]);
        for shards in [1, 2, 4, 8, 13] {
            let agg = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
            agg.ingest(&DcgCodec::decode(&DcgCodec::encode_snapshot(&a)).unwrap());
            agg.ingest(&DcgCodec::decode(&DcgCodec::encode_snapshot(&b)).unwrap());
            let merged = agg.merged_snapshot();
            assert_eq!(merged, expected, "shards={shards}");
            assert_eq!(agg.stats().frames, 2);
            assert_eq!(agg.stats().records, 5);
            assert_eq!(agg.stats().total_edges(), merged.num_edges());
        }
    }

    #[test]
    fn caller_partitioning_keeps_sites_whole() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(8));
        // Virtual site 4 in caller 2 dispatches to three receivers.
        agg.ingest_records(&[
            (e(2, 4, 10), 50.0),
            (e(2, 4, 11), 45.0),
            (e(2, 4, 12), 5.0),
            (e(3, 9, 10), 100.0),
        ]);
        let dist = agg.site_distribution(MethodId::new(2), CallSiteId::new(4));
        assert_eq!(dist.len(), 3);
        assert_eq!(dist[0], (MethodId::new(10), 50.0));
        // 40%-rule shares are exact per-site fractions.
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((dist[0].1 / total - 0.5).abs() < 1e-12);
        assert_eq!(agg.outgoing_weight(MethodId::new(2)), 100.0);
        // All of caller 2's edges share one shard.
        let s = agg.shard_of(MethodId::new(2));
        let shard_sizes = agg.stats().shard_edges;
        assert!(shard_sizes[s] >= 3);
    }

    #[test]
    fn lazy_epoch_decay_matches_eager_per_epoch_decay() {
        let cfg = AggregatorConfig {
            shards: 4,
            decay_factor: 0.5,
            min_weight: 0.0,
        };
        let agg = ShardedAggregator::new(cfg);
        agg.ingest_records(&[(e(0, 0, 1), 16.0), (e(9, 1, 2), 4.0)]);
        // Three epochs pass without the shards being touched.
        agg.advance_epoch();
        agg.advance_epoch();
        agg.advance_epoch();
        let merged = agg.merged_snapshot();
        assert!(
            (merged.weight(&e(0, 0, 1)) - 2.0).abs() < 1e-12,
            "16 × 0.5³"
        );
        assert!((merged.weight(&e(9, 1, 2)) - 0.5).abs() < 1e-12);
        // Fresh weight lands undecayed after the catch-up.
        agg.ingest_records(&[(e(0, 0, 1), 1.0)]);
        assert!((agg.merged_snapshot().weight(&e(0, 0, 1)) - 3.0).abs() < 1e-12);
        assert_eq!(agg.epoch(), 3);
    }

    /// Decay catch-up must be grouping-invariant at the bit level: a
    /// shard that sleeps through k epochs and catches up once must end
    /// with weights bit-identical to one that was brought current after
    /// every single epoch. (A folded `powi(k)` catch-up fails this —
    /// `(w·f)·f != w·(f·f)` in the last rounding bit — which would make
    /// recovered state depend on pre-crash pull timing.)
    #[test]
    fn decay_catch_up_is_bit_invariant_across_groupings() {
        let cfg = AggregatorConfig {
            shards: 4,
            decay_factor: 0.9,
            min_weight: 0.0,
        };
        let records: Vec<(CallEdge, f64)> = (0..64u32)
            .map(|i| (e(i % 7, i % 3, i % 5), 0.1 + f64::from(i) / 3.0))
            .collect();
        let lazy = ShardedAggregator::new(cfg);
        lazy.ingest_records(&records);
        let eager = ShardedAggregator::new(cfg);
        eager.ingest_records(&records);
        for _ in 0..5 {
            lazy.advance_epoch();
            eager.advance_epoch();
            // Forcing a snapshot brings every shard current each epoch.
            let _ = eager.encoded_snapshot();
        }
        assert_eq!(
            *lazy.encoded_snapshot(),
            *eager.encoded_snapshot(),
            "one 5-epoch catch-up must be bit-identical to 5 single-epoch ones"
        );
    }

    /// Restoring a checkpoint must not re-apply decay: re-ingesting a
    /// post-catch-up snapshot and stamping the clock reproduces the
    /// original bytes, and decay resumes identically afterwards.
    #[test]
    fn restore_clock_resumes_without_double_decay() {
        let cfg = AggregatorConfig {
            shards: 4,
            decay_factor: 0.5,
            min_weight: 0.0,
        };
        let original = ShardedAggregator::new(cfg);
        original.ingest_records(&[(e(0, 0, 1), 16.0), (e(9, 1, 2), 5.5)]);
        original.advance_epoch();
        original.advance_epoch();
        let snapshot = original.encoded_snapshot();

        let restored = ShardedAggregator::new(cfg);
        let mut scratch = IngestScratch::new();
        restored
            .ingest_frame_bytes(&snapshot, &mut scratch)
            .expect("checkpoint snapshot ingests");
        restored.restore_clock(original.epoch());
        restored.restore_counters(2, 2);
        assert_eq!(restored.epoch(), 2);
        assert_eq!(
            *restored.encoded_snapshot(),
            *snapshot,
            "restore must not decay the checkpointed weights again"
        );
        // And the clock keeps ticking in lockstep.
        original.advance_epoch();
        restored.advance_epoch();
        assert_eq!(*restored.encoded_snapshot(), *original.encoded_snapshot());
    }

    #[test]
    fn decay_prunes_below_min_weight() {
        let cfg = AggregatorConfig {
            shards: 2,
            decay_factor: 0.1,
            min_weight: 0.5,
        };
        let agg = ShardedAggregator::new(cfg);
        agg.ingest_records(&[(e(0, 0, 1), 100.0), (e(1, 1, 2), 1.0)]);
        agg.advance_epoch();
        let merged = agg.merged_snapshot();
        assert_eq!(merged.num_edges(), 1, "light edge pruned: {merged:?}");
        assert!((merged.weight(&e(0, 0, 1)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn hot_edges_are_fleet_wide() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        // Two "VMs" each see half of a hot edge's traffic.
        agg.ingest_records(&[(e(0, 0, 1), 49.0), (e(5, 1, 2), 1.0)]);
        agg.ingest_records(&[(e(0, 0, 1), 49.0), (e(6, 2, 3), 1.0)]);
        let hot = agg.hot_edges(50.0);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, e(0, 0, 1));
        assert_eq!(hot[0].1, 98.0);
    }

    #[test]
    fn concurrent_ingestion_converges_to_the_same_multiset() {
        use std::sync::Arc;
        let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(4)));
        let frames: Vec<Vec<(CallEdge, f64)>> = (0..16u32)
            .map(|i| {
                (0..50u32)
                    .map(|j| (e(j % 11, j % 5, (i + j) % 7), 1.0))
                    .collect()
            })
            .collect();
        // Expected: same records ingested serially.
        let serial = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        for f in &frames {
            serial.ingest_records(f);
        }
        let expected = serial.merged_snapshot();

        std::thread::scope(|scope| {
            for chunk in frames.chunks(4) {
                let agg = Arc::clone(&agg);
                scope.spawn(move || {
                    for f in chunk {
                        agg.ingest_records(f);
                    }
                });
            }
        });
        // Unit weights: addition is exact, so any interleaving converges
        // to the identical graph.
        assert_eq!(agg.merged_snapshot(), expected);
    }

    #[test]
    fn streaming_ingest_is_bit_identical_to_decoded_ingest() {
        for shards in [1, 4, 8] {
            let mut g = DynamicCallGraph::new();
            for i in 0..200u32 {
                g.record(e(i % 23, i % 7, i % 11), 0.25 + f64::from(i));
            }
            let bytes = DcgCodec::encode_snapshot(&g);

            let decoded = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
            decoded.ingest(&DcgCodec::decode(&bytes).unwrap());
            let streamed = ShardedAggregator::new(AggregatorConfig::with_shards(shards));
            let mut scratch = IngestScratch::new();
            let (kind, n) = streamed.ingest_frame_bytes(&bytes, &mut scratch).unwrap();
            assert_eq!(kind, crate::codec::FrameKind::Snapshot);
            assert_eq!(n, g.num_edges());
            assert_eq!(streamed.stats(), decoded.stats(), "shards={shards}");
            let a = streamed.merged_snapshot();
            let b = decoded.merged_snapshot();
            assert_eq!(a, b, "shards={shards}");
            assert_eq!(
                DcgCodec::encode_snapshot(&a),
                DcgCodec::encode_snapshot(&b),
                "encodings must match byte-for-byte (shards={shards})"
            );
        }
    }

    #[test]
    fn bad_frame_applies_nothing() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        let mut g = DynamicCallGraph::new();
        g.record(e(1, 2, 3), 5.0);
        g.record(e(4, 5, 6), 7.0);
        let mut bytes = DcgCodec::encode_snapshot(&g);
        bytes.push(0xff); // trailing byte: frame must be rejected whole
        let mut scratch = IngestScratch::new();
        let err = agg.ingest_frame_bytes(&bytes, &mut scratch).unwrap_err();
        assert_eq!(err, crate::codec::CodecError::TrailingBytes);
        let stats = agg.stats();
        assert_eq!((stats.frames, stats.records), (0, 0));
        assert!(agg.merged_snapshot().is_empty());
        assert_eq!(
            agg.generation(),
            0,
            "failed ingest must not bump generation"
        );
    }

    #[test]
    fn snapshot_cache_hits_until_invalidated() {
        use std::sync::Arc;
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(4));
        agg.ingest_records(&[(e(0, 0, 1), 2.0), (e(9, 1, 2), 3.0)]);

        let first = agg.encoded_snapshot();
        let again = agg.encoded_snapshot();
        assert!(
            Arc::ptr_eq(&first, &again),
            "repeated pulls must share the cached encoding"
        );
        let g1 = agg.merged_snapshot_shared();
        let g2 = agg.merged_snapshot_shared();
        assert!(Arc::ptr_eq(&g1, &g2));

        // Ingest invalidates: the next pull re-encodes and sees new data.
        agg.ingest_records(&[(e(0, 0, 1), 1.0)]);
        let after_push = agg.encoded_snapshot();
        assert!(!Arc::ptr_eq(&first, &after_push), "push must invalidate");
        assert_eq!(
            DcgCodec::decode_snapshot(&after_push)
                .unwrap()
                .weight(&e(0, 0, 1)),
            3.0
        );

        // advance_epoch invalidates even with decay disabled.
        let before_epoch = agg.encoded_snapshot();
        agg.advance_epoch();
        let after_epoch = agg.encoded_snapshot();
        assert!(
            !Arc::ptr_eq(&before_epoch, &after_epoch),
            "advance_epoch must invalidate the cached encoding"
        );
        assert_eq!(*before_epoch, *after_epoch, "decay 1.0: same bytes rebuilt");
    }

    #[test]
    fn parallel_rebuild_matches_serial_merge_bit_for_bit() {
        // Enough edges to cross PARALLEL_MERGE_MIN_EDGES with 8 shards.
        let records: Vec<(CallEdge, f64)> = (0..6000u32)
            .map(|i| (e(i % 997, i % 13, i % 31), 0.5 + f64::from(i % 17)))
            .collect();
        let par = ShardedAggregator::new(AggregatorConfig::with_shards(8));
        par.ingest_records(&records);
        assert!(par.stats().total_edges() >= PARALLEL_MERGE_MIN_EDGES);
        // Serial reference: shard-order merge under the same partition.
        let reference = {
            let epoch = par.epoch.load(Ordering::Acquire);
            let mut guards: Vec<MutexGuard<'_, Shard>> = Vec::new();
            for shard in &par.shards {
                let mut guard = shard.lock().expect("shard lock");
                ShardedAggregator::catch_up(&mut guard, epoch, par.decay_factor, par.min_weight);
                guard.graph.seal();
                guards.push(guard);
            }
            DynamicCallGraph::merge_all(guards.iter().map(|g| &g.graph))
        };
        let rebuilt = par.merged_snapshot();
        assert_eq!(rebuilt, reference);
        assert_eq!(
            DcgCodec::encode_snapshot(&rebuilt),
            DcgCodec::encode_snapshot(&reference)
        );
        assert_eq!(
            rebuilt.total_weight().to_bits(),
            reference.total_weight().to_bits()
        );
    }

    #[test]
    fn cached_queries_match_direct_shard_scans() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(8));
        // Site id 4 reused under several callers (some in other shards).
        agg.ingest_records(&[
            (e(2, 4, 10), 50.0),
            (e(2, 4, 11), 45.0),
            (e(3, 4, 10), 500.0),
            (e(17, 4, 12), 9.0),
            (e(2, 6, 12), 5.0),
        ]);
        let dist = agg.site_distribution(MethodId::new(2), CallSiteId::new(4));
        // Only caller 2's own edges contribute — callers 3 and 17 reuse
        // site id 4 but belong to different call sites, wherever their
        // shards land.
        assert_eq!(
            dist,
            vec![(MethodId::new(10), 50.0), (MethodId::new(11), 45.0)]
        );
        assert_eq!(agg.outgoing_weight(MethodId::new(2)), 100.0);
    }

    /// Regression: two callers that hash to the *same shard* and reuse a
    /// site id are distinct call sites. Filtering by shard (as the query
    /// once did) merges their receiver distributions and corrupts the
    /// 40%-rule input.
    #[test]
    fn site_distribution_filters_on_caller_not_shard() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(8));
        let a = MethodId::new(2);
        let b = (3..4096u32)
            .map(MethodId::new)
            .find(|m| agg.shard_of(*m) == agg.shard_of(a))
            .expect("some other caller shares caller 2's shard");
        agg.ingest_records(&[
            (
                CallEdge::new(a, CallSiteId::new(4), MethodId::new(10)),
                50.0,
            ),
            (
                CallEdge::new(a, CallSiteId::new(4), MethodId::new(11)),
                45.0,
            ),
            // Same shard, same site id, different caller: must not leak in.
            (
                CallEdge::new(b, CallSiteId::new(4), MethodId::new(12)),
                500.0,
            ),
        ]);
        let dist = agg.site_distribution(a, CallSiteId::new(4));
        assert_eq!(
            dist,
            vec![(MethodId::new(10), 50.0), (MethodId::new(11), 45.0)],
            "same-shard caller {b:?} polluted caller {a:?}'s distribution"
        );
        let dist_b = agg.site_distribution(b, CallSiteId::new(4));
        assert_eq!(dist_b, vec![(MethodId::new(12), 500.0)]);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let agg = ShardedAggregator::new(AggregatorConfig::with_shards(0));
        assert_eq!(agg.num_shards(), 1);
        agg.ingest_records(&[(e(0, 0, 1), 1.0)]);
        assert_eq!(agg.merged_snapshot().num_edges(), 1);
    }
}
