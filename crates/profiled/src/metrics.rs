//! Static telemetry handles for the profile-service crate.
//!
//! Every metric the server, aggregator, and resilient client emit is
//! registered once — lazily, on first use — in the process-wide
//! [`cbs_telemetry::global`] registry and cached in a [`OnceLock`]
//! struct, so hot paths touch only pre-resolved lock-free handles.
//!
//! Naming convention: `profiled.<subsystem>.<metric>`. Counters and
//! size histograms are deterministic for a deterministic workload
//! (event sums commute across threads); only the handler-latency
//! histogram is wall-clock-dependent and tagged
//! [`Stability::Wallclock`].

use cbs_telemetry::{
    global, Counter, Gauge, Histogram, Stability, LATENCY_BUCKETS_US, SIZE_BUCKETS,
};
use std::sync::OnceLock;

/// The profile-service metric handles (see the module docs for the
/// naming scheme). Obtain via [`ProfiledMetrics::get`].
#[derive(Debug)]
pub struct ProfiledMetrics {
    // -- server --------------------------------------------------------
    /// Connections admitted to a handler thread.
    pub server_connections: Counter,
    /// Connections refused with `ST_ERR busy` (backpressure).
    pub server_busy_refusals: Counter,
    /// Connections refused during drain-and-refuse shutdown.
    pub server_shutdown_refusals: Counter,
    /// `OP_PUSH` requests handled.
    pub server_op_push: Counter,
    /// `OP_PUSH_SEQ` requests handled.
    pub server_op_push_seq: Counter,
    /// `OP_PULL` requests handled.
    pub server_op_pull: Counter,
    /// `OP_PULL_CHUNK` requests handled.
    pub server_op_pull_chunk: Counter,
    /// `OP_STATS` requests handled.
    pub server_op_stats: Counter,
    /// `OP_EPOCH` requests handled.
    pub server_op_epoch: Counter,
    /// `OP_METRICS` requests handled.
    pub server_op_metrics: Counter,
    /// `OP_PLAN` requests handled.
    pub server_op_plan: Counter,
    /// Requests answered `ST_ERR` (malformed frames, unknown ops,
    /// out-of-range pages, oversized snapshots).
    pub server_err_replies: Counter,
    /// Frames rejected because the DCG payload failed to decode.
    pub server_bad_frames: Counter,
    /// `OP_PUSH_SEQ` frames acknowledged as duplicates (dedup hits).
    pub server_dedup_hits: Counter,
    /// Times the seq-dedup mutex was recovered from poisoning.
    pub server_seq_lock_recovered: Counter,
    /// Clients evicted from the bounded dedup table (least recently
    /// applied first).
    pub server_dedup_evictions: Counter,
    /// Request frame sizes, bytes (body, excluding the length prefix).
    pub server_frame_bytes_in: Histogram,
    /// Reply frame sizes, bytes (body, excluding the length prefix).
    pub server_frame_bytes_out: Histogram,
    /// Per-request handler latency, microseconds (wall-clock; excluded
    /// from deterministic renders).
    pub server_handler_latency_us: Histogram,
    /// Scrape-time gauge: entries in the `OP_PUSH_SEQ` dedup table.
    pub server_dedup_clients: Gauge,

    // -- aggregator ----------------------------------------------------
    /// Frames folded into the aggregator.
    pub agg_frames: Counter,
    /// Edge records folded into the aggregator.
    pub agg_records: Counter,
    /// Lazy decay catch-ups applied to a shard.
    pub agg_decay_catchups: Counter,
    /// Edges pruned by decay (weight fell below the floor).
    pub agg_pruned_edges: Counter,
    /// Snapshot-cache hits: merged snapshot served without touching
    /// any shard.
    pub agg_cache_hits: Counter,
    /// Snapshot-cache misses: a merged snapshot was rebuilt (cold cache
    /// or stale generation).
    pub agg_cache_misses: Counter,
    /// Snapshot-cache invalidations observed: a rebuild found a cached
    /// snapshot whose generation stamp had been outrun by ingest or an
    /// epoch advance.
    pub agg_cache_invalidations: Counter,
    /// Scrape-time gauge: current decay epoch.
    pub agg_epoch: Gauge,
    /// Scrape-time gauge: total live edges across shards.
    pub agg_edges: Gauge,

    // -- fleet plan builder --------------------------------------------
    /// Plan-cache hits: encoded plan served without rebuilding.
    pub plan_cache_hits: Counter,
    /// Plan-cache misses: a plan was (re)built (cold cache or stale
    /// generation).
    pub plan_cache_misses: Counter,
    /// Plan-cache invalidations observed: a rebuild found a cached plan
    /// whose generation stamp had been outrun.
    pub plan_cache_invalidations: Counter,
    /// Fleet plans built from the merged snapshot.
    pub plan_builds: Counter,
    /// Per-site decisions emitted across all plan builds.
    pub plan_decisions: Counter,

    // -- resilient client ---------------------------------------------
    /// Exchanges retried after a fault.
    pub client_retries: Counter,
    /// Reconnects after the first successful connect.
    pub client_reconnects: Counter,
    /// Batches requeued into the outbox after a send fault.
    pub client_requeued_batches: Counter,
    /// Outbox batches merged into an already-queued batch.
    pub client_coalesced_batches: Counter,
    /// Server-acknowledged duplicate deliveries (`OP_PUSH_SEQ` retries
    /// that had in fact landed).
    pub client_duplicates: Counter,
    /// Total backoff slept, milliseconds (deterministic: delays come
    /// from the seeded jitter RNG, not from observed time).
    pub client_backoff_ms: Counter,
    /// Base-client connections that became poisoned mid-protocol.
    pub client_poisoned: Counter,
}

impl ProfiledMetrics {
    /// The process-wide handles, registered on first call.
    pub fn get() -> &'static ProfiledMetrics {
        static HANDLES: OnceLock<ProfiledMetrics> = OnceLock::new();
        HANDLES.get_or_init(|| {
            let r = global();
            ProfiledMetrics {
                server_connections: r.counter(
                    "profiled.server.connections",
                    "connections admitted to a handler thread",
                ),
                server_busy_refusals: r.counter(
                    "profiled.server.busy_refusals",
                    "connections refused with ST_ERR busy",
                ),
                server_shutdown_refusals: r.counter(
                    "profiled.server.shutdown_refusals",
                    "connections refused during shutdown drain",
                ),
                server_op_push: r.counter("profiled.server.op.push", "OP_PUSH requests handled"),
                server_op_push_seq: r.counter(
                    "profiled.server.op.push_seq",
                    "OP_PUSH_SEQ requests handled",
                ),
                server_op_pull: r.counter("profiled.server.op.pull", "OP_PULL requests handled"),
                server_op_pull_chunk: r.counter(
                    "profiled.server.op.pull_chunk",
                    "OP_PULL_CHUNK requests handled",
                ),
                server_op_stats: r.counter("profiled.server.op.stats", "OP_STATS requests handled"),
                server_op_epoch: r.counter("profiled.server.op.epoch", "OP_EPOCH requests handled"),
                server_op_metrics: r
                    .counter("profiled.server.op.metrics", "OP_METRICS requests handled"),
                server_op_plan: r.counter("profiled.server.op.plan", "OP_PLAN requests handled"),
                server_err_replies: r
                    .counter("profiled.server.err_replies", "requests answered ST_ERR"),
                server_bad_frames: r.counter(
                    "profiled.server.bad_frames",
                    "frames whose DCG payload failed to decode",
                ),
                server_dedup_hits: r.counter(
                    "profiled.server.dedup_hits",
                    "OP_PUSH_SEQ frames acknowledged as duplicates",
                ),
                server_seq_lock_recovered: r.counter(
                    "profiled.server.seq_lock_recovered",
                    "seq-dedup mutex poisonings recovered",
                ),
                server_dedup_evictions: r.counter(
                    "profiled.server.dedup_evictions",
                    "clients evicted from the bounded dedup table",
                ),
                server_frame_bytes_in: r.histogram(
                    "profiled.server.frame_bytes_in",
                    "request frame sizes (bytes)",
                    SIZE_BUCKETS,
                    Stability::Deterministic,
                ),
                server_frame_bytes_out: r.histogram(
                    "profiled.server.frame_bytes_out",
                    "reply frame sizes (bytes)",
                    SIZE_BUCKETS,
                    Stability::Deterministic,
                ),
                server_handler_latency_us: r.histogram(
                    "profiled.server.handler_latency_us",
                    "per-request handler latency (µs)",
                    LATENCY_BUCKETS_US,
                    Stability::Wallclock,
                ),
                server_dedup_clients: r.gauge(
                    "profiled.server.dedup_clients",
                    "entries in the OP_PUSH_SEQ dedup table (scrape-time)",
                ),
                agg_frames: r.counter("profiled.agg.frames", "frames folded into the aggregator"),
                agg_records: r.counter("profiled.agg.records", "edge records folded in"),
                agg_decay_catchups: r.counter(
                    "profiled.agg.decay_catchups",
                    "lazy decay catch-ups applied to a shard",
                ),
                agg_pruned_edges: r.counter(
                    "profiled.agg.pruned_edges",
                    "edges pruned by decay below the weight floor",
                ),
                agg_cache_hits: r.counter(
                    "profiled.agg.cache_hits",
                    "merged snapshots served from the generation-stamped cache",
                ),
                agg_cache_misses: r.counter(
                    "profiled.agg.cache_misses",
                    "merged snapshots rebuilt on a cold or stale cache",
                ),
                agg_cache_invalidations: r.counter(
                    "profiled.agg.cache_invalidations",
                    "cached snapshots found stale at rebuild time",
                ),
                plan_cache_hits: r.counter(
                    "profiled.plan.cache_hits",
                    "encoded plans served from the generation-stamped cache",
                ),
                plan_cache_misses: r.counter(
                    "profiled.plan.cache_misses",
                    "plans rebuilt on a cold or stale cache",
                ),
                plan_cache_invalidations: r.counter(
                    "profiled.plan.cache_invalidations",
                    "cached plans found stale at rebuild time",
                ),
                plan_builds: r.counter(
                    "profiled.plan.builds",
                    "fleet plans built from the merged snapshot",
                ),
                plan_decisions: r.counter(
                    "profiled.plan.decisions",
                    "per-site decisions emitted across plan builds",
                ),
                agg_epoch: r.gauge("profiled.agg.epoch", "current decay epoch (scrape-time)"),
                agg_edges: r.gauge(
                    "profiled.agg.edges",
                    "total live edges across shards (scrape-time)",
                ),
                client_retries: r
                    .counter("profiled.client.retries", "exchanges retried after a fault"),
                client_reconnects: r.counter(
                    "profiled.client.reconnects",
                    "reconnects after the first successful connect",
                ),
                client_requeued_batches: r.counter(
                    "profiled.client.requeued_batches",
                    "batches requeued into the outbox after a send fault",
                ),
                client_coalesced_batches: r.counter(
                    "profiled.client.coalesced_batches",
                    "outbox batches merged into an already-queued batch",
                ),
                client_duplicates: r.counter(
                    "profiled.client.duplicates",
                    "server-acknowledged duplicate deliveries",
                ),
                client_backoff_ms: r.counter(
                    "profiled.client.backoff_ms",
                    "total backoff slept (ms; deterministic, from the seeded jitter RNG)",
                ),
                client_poisoned: r.counter(
                    "profiled.client.poisoned",
                    "base-client connections poisoned mid-protocol",
                ),
            }
        })
    }

    /// Publishes the per-shard edge-count gauges
    /// (`profiled.agg.shard_edges.<i>`) for a scrape. Gauge handles for
    /// shard indices are resolved per call — this is scrape-path code,
    /// not hot-path.
    pub fn publish_shard_edges(&self, shard_edges: &[usize]) {
        let r = global();
        for (i, &edges) in shard_edges.iter().enumerate() {
            r.gauge(
                &format!("profiled.agg.shard_edges.{i}"),
                "live edges in one aggregator shard (scrape-time)",
            )
            .set(edges as i64);
        }
    }
}
