//! Client library for the profile-ingestion service.
//!
//! A [`ProfileClient`] holds one connection and issues synchronous
//! request/response exchanges: push a snapshot or delta frame, pull the
//! merged fleet profile (whole or paged), advance the decay epoch, or
//! fetch stats. Every server-side rejection (malformed frame, frame
//! limit, backpressure) surfaces as [`ClientError::Server`] with the
//! server's reason string.
//!
//! ## Connection poisoning
//!
//! A request/response protocol desynchronizes the moment an exchange
//! fails between the request write and the reply read: a late reply to
//! request *N* would otherwise be decoded as the answer to request
//! *N + 1*. [`ProfileClient`] therefore **poisons** itself on any
//! mid-exchange transport or framing error — every later call fails
//! fast with [`ClientError::Poisoned`] until the caller reconnects.
//! Server-side rejections (`ST_ERR` replies) do *not* poison: framing
//! stayed intact, so the connection remains usable. The reconnect loop
//! lives one layer up, in [`ResilientClient`](crate::ResilientClient).
//!
//! The client is generic over its stream so the deterministic fault
//! proxy ([`FaultStream`](crate::faults::FaultStream)) and tests can
//! stand in for a real [`TcpStream`].

use crate::codec::{CodecError, DcgCodec};
use crate::metrics::ProfiledMetrics;
use crate::wire::{
    read_msg, write_msg, NetConfig, OP_EPOCH, OP_METRICS, OP_PLAN, OP_PULL, OP_PULL_CHUNK, OP_PUSH,
    OP_PUSH_SEQ, OP_STATS, ST_OK,
};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_inliner::InlinePlan;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A failure of one client exchange.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, timeout, reset, oversized reply).
    Io(io::Error),
    /// The server's reply payload failed to decode.
    Codec(CodecError),
    /// The server answered `ST_ERR` with this reason.
    Server(String),
    /// The reply violated the wire protocol.
    Protocol(String),
    /// The connection was poisoned by an earlier mid-exchange failure
    /// and must be re-established before further use.
    Poisoned,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Codec(e) => write!(f, "undecodable reply: {e}"),
            ClientError::Server(msg) => write!(f, "server rejected request: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Poisoned => {
                write!(f, "connection poisoned by an earlier mid-exchange failure")
            }
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// Outcome of an exactly-once [`push_seq`](ProfileClient::push_seq).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The frame was applied to the aggregate.
    Applied,
    /// The server had already applied this (or a later) sequence for
    /// this client id; the frame was acknowledged without re-applying.
    Duplicate,
}

/// One connection to a profile server.
///
/// Generic over the stream so tests and the fault-injection harness can
/// substitute in-process transports; defaults to [`TcpStream`].
#[derive(Debug)]
pub struct ProfileClient<S: Read + Write = TcpStream> {
    stream: S,
    max_frame_bytes: usize,
    poisoned: bool,
}

impl ProfileClient<TcpStream> {
    /// Connects and applies the configured timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self::from_stream(stream, config))
    }
}

impl<S: Read + Write> ProfileClient<S> {
    /// Wraps an already-established stream. Timeouts (if any) are the
    /// caller's responsibility; only `max_frame_bytes` is taken from
    /// `config`.
    pub fn from_stream(stream: S, config: NetConfig) -> Self {
        Self {
            stream,
            max_frame_bytes: config.max_frame_bytes,
            poisoned: false,
        }
    }

    /// Whether a mid-exchange failure has desynchronized this
    /// connection. A poisoned client refuses every further exchange.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Marks the connection desynchronized (all poison sites funnel
    /// through here so the telemetry counter stays exact).
    fn poison(&mut self) {
        self.poisoned = true;
        ProfiledMetrics::get().client_poisoned.inc();
    }

    fn exchange(&mut self, op: u8, body: &[&[u8]]) -> Result<Vec<u8>, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        let mut parts: Vec<&[u8]> = Vec::with_capacity(1 + body.len());
        parts.push(std::slice::from_ref(&op));
        parts.extend_from_slice(body);
        if let Err(e) = write_msg(&mut self.stream, &parts) {
            // The request may have been partially written: the framing
            // is unknown, so the connection is unusable.
            self.poison();
            return Err(e.into());
        }
        let reply = match read_msg(&mut self.stream, self.max_frame_bytes) {
            Ok(r) => r,
            Err(e) => {
                // Timeout, reset, truncation, oversized reply: the reply
                // to *this* request may still arrive later, so reusing
                // the stream would misattribute it to the next request.
                self.poison();
                return Err(e.into());
            }
        };
        let Some(reply) = reply else {
            self.poison();
            return Err(ClientError::Protocol(
                "server closed before replying".into(),
            ));
        };
        match reply.split_first() {
            Some((&ST_OK, payload)) => Ok(payload.to_vec()),
            Some((_, payload)) => Err(ClientError::Server(
                String::from_utf8_lossy(payload).into_owned(),
            )),
            None => {
                self.poison();
                Err(ClientError::Protocol("empty reply".into()))
            }
        }
    }

    /// Flags the connection as desynchronized and records why. Used by
    /// multi-exchange operations (pagination) whose invariants span
    /// replies.
    fn poison_protocol(&mut self, msg: impl Into<String>) -> ClientError {
        self.poison();
        ClientError::Protocol(msg.into())
    }

    /// Pushes a pre-encoded codec frame.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn push_frame(&mut self, frame_bytes: &[u8]) -> Result<(), ClientError> {
        self.exchange(OP_PUSH, &[frame_bytes]).map(drop)
    }

    /// Pushes a pre-encoded codec frame with exactly-once semantics:
    /// the server deduplicates on `(client_id, seq)`, so retrying a
    /// maybe-delivered frame can never double-count it. Sequences must
    /// be assigned in increasing order per client id.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn push_seq(
        &mut self,
        client_id: u64,
        seq: u64,
        frame_bytes: &[u8],
    ) -> Result<PushOutcome, ClientError> {
        let payload = self.exchange(
            OP_PUSH_SEQ,
            &[&client_id.to_be_bytes(), &seq.to_be_bytes(), frame_bytes],
        )?;
        match payload.as_slice() {
            b"applied" => Ok(PushOutcome::Applied),
            b"duplicate" => Ok(PushOutcome::Duplicate),
            other => Err(self.poison_protocol(format!(
                "unknown push-seq acknowledgement {:?}",
                String::from_utf8_lossy(other)
            ))),
        }
    }

    /// Pushes a whole graph as a snapshot frame (a VM's first flush).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn push_snapshot(&mut self, graph: &DynamicCallGraph) -> Result<(), ClientError> {
        self.push_frame(&DcgCodec::encode_snapshot(graph))
    }

    /// Pushes weight increments (from
    /// [`DynamicCallGraph::drain_delta`]) as a delta frame.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn push_delta(&mut self, increments: &[(CallEdge, f64)]) -> Result<(), ClientError> {
        self.push_frame(&DcgCodec::encode_delta(increments))
    }

    /// Pulls the fleet-wide merged snapshot in one frame.
    ///
    /// Fails with a server-side rejection when the snapshot exceeds the
    /// frame limit; [`pull_chunked`](Self::pull_chunked) degrades
    /// gracefully instead.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side rejection, or an undecodable
    /// reply.
    pub fn pull(&mut self) -> Result<DynamicCallGraph, ClientError> {
        let payload = self.exchange(OP_PULL, &[])?;
        Ok(DcgCodec::decode_snapshot(&payload)?)
    }

    /// Pulls the fleet inlining plan — [`cbs_inliner::build_plan`] run
    /// server-side against the merged snapshot, versioned with its
    /// snapshot generation. An unchanged aggregate answers with
    /// byte-identical frames (the server's generation-keyed cache).
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side rejection, or an undecodable
    /// reply.
    pub fn pull_plan(&mut self) -> Result<InlinePlan, ClientError> {
        let payload = self.exchange(OP_PLAN, &[])?;
        Ok(DcgCodec::decode_plan(&payload)?)
    }

    /// Pulls the fleet-wide merged snapshot via paged `OP_PULL_CHUNK`
    /// exchanges, reassembling however many frames the snapshot needs.
    /// Page 0 captures a consistent snapshot server-side, so the merge
    /// cannot tear between pages.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side rejection, an undecodable
    /// reassembled frame, or pagination protocol violations (which
    /// poison the connection).
    pub fn pull_chunked(&mut self) -> Result<DynamicCallGraph, ClientError> {
        Ok(self.pull_chunked_counted()?.0)
    }

    /// [`pull_chunked`](Self::pull_chunked), also returning how many
    /// chunk frames were fetched.
    ///
    /// # Errors
    ///
    /// As [`pull_chunked`](Self::pull_chunked).
    pub fn pull_chunked_counted(&mut self) -> Result<(DynamicCallGraph, u32), ClientError> {
        let mut frame = Vec::new();
        let mut page: u32 = 0;
        let mut total: u32 = 1;
        while page < total {
            let payload = self.exchange(OP_PULL_CHUNK, &[&page.to_be_bytes()])?;
            if payload.len() < 8 {
                return Err(self.poison_protocol("chunk reply shorter than its header"));
            }
            let got_total = u32::from_be_bytes(payload[0..4].try_into().expect("4 bytes"));
            let got_page = u32::from_be_bytes(payload[4..8].try_into().expect("4 bytes"));
            if got_page != page {
                return Err(
                    self.poison_protocol(format!("asked for page {page}, got page {got_page}"))
                );
            }
            if page == 0 {
                if got_total == 0 {
                    return Err(self.poison_protocol("chunked reply declared zero pages"));
                }
                total = got_total;
            } else if got_total != total {
                return Err(self.poison_protocol(format!(
                    "total pages changed mid-pull ({total} -> {got_total})"
                )));
            }
            frame.extend_from_slice(&payload[8..]);
            page += 1;
        }
        Ok((DcgCodec::decode_snapshot(&frame)?, total))
    }

    /// Advances the server's decay epoch, returning the new epoch.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side rejection, or a malformed
    /// reply.
    pub fn advance_epoch(&mut self) -> Result<u64, ClientError> {
        let payload = self.exchange(OP_EPOCH, &[])?;
        String::from_utf8_lossy(&payload)
            .trim()
            .parse()
            .map_err(|_| ClientError::Protocol("non-numeric epoch reply".into()))
    }

    /// Fetches the server's ingestion counters as `key=value` lines.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        let payload = self.exchange(OP_STATS, &[])?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Fetches the server's telemetry exposition (the versioned
    /// `cbs-telemetry` text format).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection (e.g. an older
    /// server answering `unknown op`).
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let payload = self.exchange(OP_METRICS, &[])?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }
}
