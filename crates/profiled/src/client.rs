//! Client library for the profile-ingestion service.
//!
//! A [`ProfileClient`] holds one persistent connection and issues
//! synchronous request/response exchanges: push a snapshot or delta
//! frame, pull the merged fleet profile, advance the decay epoch, or
//! fetch stats. Every server-side rejection (malformed frame, frame
//! limit, backpressure) surfaces as [`ClientError::Server`] with the
//! server's reason string.

use crate::codec::{CodecError, DcgCodec};
use crate::wire::{read_msg, write_msg, NetConfig, OP_EPOCH, OP_PULL, OP_PUSH, OP_STATS, ST_OK};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use std::error::Error;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A failure of one client exchange.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, timeout, reset, oversized reply).
    Io(io::Error),
    /// The server's reply payload failed to decode.
    Codec(CodecError),
    /// The server answered `ST_ERR` with this reason.
    Server(String),
    /// The reply violated the wire protocol.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Codec(e) => write!(f, "undecodable reply: {e}"),
            ClientError::Server(msg) => write!(f, "server rejected request: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// One persistent connection to a profile server.
#[derive(Debug)]
pub struct ProfileClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl ProfileClient {
    /// Connects and applies the configured timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            max_frame_bytes: config.max_frame_bytes,
        })
    }

    fn exchange(&mut self, op: u8, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_msg(&mut self.stream, &[&[op], body])?;
        let reply = read_msg(&mut self.stream, self.max_frame_bytes)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".into()))?;
        match reply.split_first() {
            Some((&ST_OK, payload)) => Ok(payload.to_vec()),
            Some((_, payload)) => Err(ClientError::Server(
                String::from_utf8_lossy(payload).into_owned(),
            )),
            None => Err(ClientError::Protocol("empty reply".into())),
        }
    }

    /// Pushes a pre-encoded codec frame.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn push_frame(&mut self, frame_bytes: &[u8]) -> Result<(), ClientError> {
        self.exchange(OP_PUSH, frame_bytes).map(drop)
    }

    /// Pushes a whole graph as a snapshot frame (a VM's first flush).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn push_snapshot(&mut self, graph: &DynamicCallGraph) -> Result<(), ClientError> {
        self.push_frame(&DcgCodec::encode_snapshot(graph))
    }

    /// Pushes weight increments (from
    /// [`DynamicCallGraph::drain_delta`]) as a delta frame.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn push_delta(&mut self, increments: &[(CallEdge, f64)]) -> Result<(), ClientError> {
        self.push_frame(&DcgCodec::encode_delta(increments))
    }

    /// Pulls the fleet-wide merged snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side rejection, or an undecodable
    /// reply.
    pub fn pull(&mut self) -> Result<DynamicCallGraph, ClientError> {
        let payload = self.exchange(OP_PULL, &[])?;
        Ok(DcgCodec::decode_snapshot(&payload)?)
    }

    /// Advances the server's decay epoch, returning the new epoch.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side rejection, or a malformed
    /// reply.
    pub fn advance_epoch(&mut self) -> Result<u64, ClientError> {
        let payload = self.exchange(OP_EPOCH, &[])?;
        String::from_utf8_lossy(&payload)
            .trim()
            .parse()
            .map_err(|_| ClientError::Protocol("non-numeric epoch reply".into()))
    }

    /// Fetches the server's ingestion counters as `key=value` lines.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        let payload = self.exchange(OP_STATS, &[])?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }
}
