//! The TCP profile-ingestion server.
//!
//! One blocking accept loop hands each connection to its own thread,
//! bounded by [`NetConfig::max_inflight`]; over the limit a connection is
//! answered `ST_ERR busy` and closed, pushing backpressure to the
//! client rather than queueing unboundedly. Connections are persistent:
//! each serves a sequence of request/response exchanges until the peer
//! closes, a timeout fires, or a malformed message arrives (answered
//! with `ST_ERR`, then the connection — never the server — is dropped).
//!
//! All connection threads share one [`ShardedAggregator`] behind an
//! `Arc`, so pushes from many VMs interleave at shard granularity.

use crate::aggregator::ShardedAggregator;
use crate::codec::DcgCodec;
use crate::wire::{
    read_msg, write_msg, NetConfig, OP_EPOCH, OP_PULL, OP_PUSH, OP_STATS, ST_ERR, ST_OK,
};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running profile server; dropping the handle leaves the server
/// running detached, [`shutdown`](Self::shutdown) stops it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    aggregator: Arc<ShardedAggregator>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared aggregator, for in-process inspection alongside the
    /// network interface.
    pub fn aggregator(&self) -> &Arc<ShardedAggregator> {
        &self.aggregator
    }

    /// Stops accepting connections and joins the accept loop.
    ///
    /// In-flight connection threads finish their current exchanges and
    /// exit on their own (their sockets carry read timeouts, so none can
    /// linger forever).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
/// serves `aggregator` on a background accept thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(
    addr: impl ToSocketAddrs,
    aggregator: Arc<ShardedAggregator>,
    config: NetConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let aggregator = Arc::clone(&aggregator);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &aggregator, &stop, config))
    };
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        aggregator,
    })
}

fn accept_loop(
    listener: &TcpListener,
    aggregator: &Arc<ShardedAggregator>,
    stop: &Arc<AtomicBool>,
    config: NetConfig,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Backpressure: admission-check *before* spawning.
        if active.load(Ordering::Acquire) >= config.max_inflight {
            refuse_busy(stream, config);
            continue;
        }
        active.fetch_add(1, Ordering::AcqRel);
        let aggregator = Arc::clone(aggregator);
        let active = Arc::clone(&active);
        std::thread::spawn(move || {
            // A panic in one connection must not leak the slot; the
            // handler itself never panics on malformed input (every
            // decode error is a ST_ERR reply), so this is belt and
            // braces around e.g. allocation failure.
            let _ = serve_connection(stream, &aggregator, config);
            active.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

fn refuse_busy(mut stream: TcpStream, config: NetConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = write_msg(&mut stream, &[&[ST_ERR], b"busy: max inflight connections"]);
}

/// Serves one connection until EOF, timeout, or a fatal protocol error.
/// Every malformed input is answered with `ST_ERR` before closing, so
/// clients always learn why they were dropped; errors never propagate
/// past the connection.
fn serve_connection(
    mut stream: TcpStream,
    aggregator: &ShardedAggregator,
    config: NetConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true).ok();
    loop {
        let msg = match read_msg(&mut stream, config.max_frame_bytes) {
            Ok(Some(msg)) => msg,
            Ok(None) => return Ok(()), // clean close
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized frame: the unread payload makes the stream
                // unframeable, so answer and drop the connection.
                let _ = write_msg(&mut stream, &[&[ST_ERR], e.to_string().as_bytes()]);
                return Ok(());
            }
            Err(e) => return Err(e), // timeout / reset: just drop
        };
        let (op, body) = match msg.split_first() {
            Some(x) => x,
            None => {
                let _ = write_msg(&mut stream, &[&[ST_ERR], b"empty request"]);
                return Ok(());
            }
        };
        match *op {
            OP_PUSH => match DcgCodec::decode(body) {
                Ok(frame) => {
                    aggregator.ingest(&frame);
                    write_msg(&mut stream, &[&[ST_OK]])?;
                }
                Err(e) => {
                    // Reject the frame, keep serving: framing is intact,
                    // only the payload was bad.
                    write_msg(
                        &mut stream,
                        &[&[ST_ERR], format!("bad frame: {e}").as_bytes()],
                    )?;
                }
            },
            OP_PULL => {
                let snapshot = DcgCodec::encode_snapshot(&aggregator.merged_snapshot());
                if snapshot.len() + 1 > config.max_frame_bytes {
                    write_msg(
                        &mut stream,
                        &[&[ST_ERR], b"merged snapshot exceeds the frame limit"],
                    )?;
                } else {
                    write_msg(&mut stream, &[&[ST_OK], &snapshot])?;
                }
            }
            OP_STATS => {
                let s = aggregator.stats();
                let text = format!(
                    "frames={}\nrecords={}\nepoch={}\nedges={}\nshards={}\n",
                    s.frames,
                    s.records,
                    s.epoch,
                    s.total_edges(),
                    s.shard_edges.len(),
                );
                write_msg(&mut stream, &[&[ST_OK], text.as_bytes()])?;
            }
            OP_EPOCH => {
                let epoch = aggregator.advance_epoch();
                write_msg(&mut stream, &[&[ST_OK], epoch.to_string().as_bytes()])?;
            }
            other => {
                let _ = write_msg(
                    &mut stream,
                    &[&[ST_ERR], format!("unknown op {other}").as_bytes()],
                );
                return Ok(());
            }
        }
        stream.flush()?;
    }
}
