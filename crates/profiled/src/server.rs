//! The TCP profile-ingestion server.
//!
//! One blocking accept loop hands each connection to its own thread,
//! bounded by [`NetConfig::max_inflight`]; over the limit a connection is
//! answered `ST_ERR busy` and closed, pushing backpressure to the
//! client rather than queueing unboundedly. Connections are persistent:
//! each serves a sequence of request/response exchanges until the peer
//! closes, a timeout fires, or a malformed message arrives (answered
//! with `ST_ERR`, then the connection — never the server — is dropped).
//!
//! All connection threads share one [`ShardedAggregator`] behind an
//! `Arc`, so pushes from many VMs interleave at shard granularity.
//! Every state-changing op flows through a shared [`ProfileJournal`]
//! before it is acknowledged: the default [`MemJournal`] applies
//! straight to the aggregator, while a durable journal (`cbs-store`'s
//! `ProfileStore`, wired in via [`ServerConfig::journal`]) appends to a
//! write-ahead log first so a restart loses nothing it acked. The
//! journal also owns the bounded per-client sequence table backing the
//! exactly-once `OP_PUSH_SEQ` op: retries of a maybe-delivered frame
//! are acknowledged without being re-applied, which is what lets the
//! resilient client requeue and blindly resend after any fault.
//!
//! Shutdown is drain-and-refuse: once [`ServerHandle::shutdown`] flips
//! the stop flag, every connection still queued in the accept backlog —
//! including one that raced the stop — receives an explicit
//! `ST_ERR server shutting down` reply instead of being silently
//! dropped.

use crate::aggregator::{IngestScratch, ShardedAggregator};
use crate::dedup::DedupTable;
use crate::journal::{JournalError, MemJournal, ProfileJournal, SeqIngest};
use crate::metrics::ProfiledMetrics;
use crate::wire::{
    read_msg_into, write_msg, NetConfig, CHUNK_REPLY_OVERHEAD, OP_EPOCH, OP_METRICS, OP_PLAN,
    OP_PULL, OP_PULL_CHUNK, OP_PUSH, OP_PUSH_SEQ, OP_STATS, ST_ERR, ST_OK,
};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning for [`serve_with`] beyond the transport knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Transport limits and timeouts.
    pub net: NetConfig,
    /// Client cap of the `OP_PUSH_SEQ` dedup table (`0` = unbounded).
    /// Ignored when [`journal`](Self::journal) is supplied — a journal
    /// brings its own table.
    pub dedup_capacity: usize,
    /// The write path. `None` serves purely in memory via
    /// [`MemJournal`]; supply a durable journal (e.g. `cbs-store`'s
    /// `ProfileStore`) to journal every accepted op before it is acked.
    pub journal: Option<Arc<dyn ProfileJournal>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            dedup_capacity: DedupTable::DEFAULT_CAPACITY,
            journal: None,
        }
    }
}

/// A running profile server; dropping the handle leaves the server
/// running detached, [`shutdown`](Self::shutdown) stops it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    aggregator: Arc<ShardedAggregator>,
    journal: Arc<dyn ProfileJournal>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared aggregator, for in-process inspection alongside the
    /// network interface.
    pub fn aggregator(&self) -> &Arc<ShardedAggregator> {
        &self.aggregator
    }

    /// Number of clients currently tracked by the `OP_PUSH_SEQ` dedup
    /// table (the in-process view of the `dedup_clients` stats field).
    pub fn dedup_clients(&self) -> usize {
        self.journal.dedup_usage().clients
    }

    /// The journal every state-changing op flows through.
    pub fn journal(&self) -> &Arc<dyn ProfileJournal> {
        &self.journal
    }

    /// Stops accepting connections and joins the accept loop.
    ///
    /// Connections already queued in the accept backlog are drained and
    /// answered `ST_ERR server shutting down` — never silently dropped.
    /// In-flight connection threads finish their current exchanges and
    /// exit on their own (their sockets carry read timeouts, so none can
    /// linger forever).
    ///
    /// Finally flushes the journal: under a lazy fsync policy
    /// (`--fsync never|<n>`) an orderly exit must not leave acked
    /// frames in an unsynced WAL tail. Best-effort — a flush failure
    /// cannot un-ack anything, so it is not propagated.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; the
        // accept loop refuses it (and anything queued around it) with
        // an explicit shutdown reply.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = self.journal.flush();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
/// serves `aggregator` on a background accept thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(
    addr: impl ToSocketAddrs,
    aggregator: Arc<ShardedAggregator>,
    config: NetConfig,
) -> io::Result<ServerHandle> {
    serve_with(
        addr,
        aggregator,
        ServerConfig {
            net: config,
            ..ServerConfig::default()
        },
    )
}

/// [`serve`] with the full [`ServerConfig`]: a custom dedup cap and an
/// optional durable journal in front of the aggregator.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_with(
    addr: impl ToSocketAddrs,
    aggregator: Arc<ShardedAggregator>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let journal: Arc<dyn ProfileJournal> = match config.journal {
        Some(j) => j,
        None => Arc::new(MemJournal::with_capacity(
            Arc::clone(&aggregator),
            config.dedup_capacity,
        )),
    };
    let net = config.net;
    let accept_thread = {
        let aggregator = Arc::clone(&aggregator);
        let stop = Arc::clone(&stop);
        let journal = Arc::clone(&journal);
        std::thread::spawn(move || accept_loop(&listener, &aggregator, &stop, &journal, net))
    };
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        aggregator,
        journal,
    })
}

/// Owns one admission slot of the `max_inflight` budget; releasing is
/// tied to `Drop` so a panicking connection thread can never leak its
/// slot — the unwind releases it like any other exit path.
struct SlotGuard(Arc<AtomicUsize>);

impl SlotGuard {
    fn acquire(active: &Arc<AtomicUsize>) -> Self {
        active.fetch_add(1, Ordering::AcqRel);
        Self(Arc::clone(active))
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(
    listener: &TcpListener,
    aggregator: &Arc<ShardedAggregator>,
    stop: &Arc<AtomicBool>,
    journal: &Arc<dyn ProfileJournal>,
    config: NetConfig,
) {
    let metrics = ProfiledMetrics::get();
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            // Drain-and-refuse: the connection that woke us — which may
            // be a legitimate client that raced the stop flag, not the
            // shutdown's throwaway connect — and everything else queued
            // in the backlog get an explicit refusal, not a silent drop.
            if let Ok(s) = stream {
                metrics.server_shutdown_refusals.inc();
                refuse(s, config, b"server shutting down");
            }
            drain_refuse(listener, config);
            return;
        }
        let Ok(stream) = stream else { continue };
        // Backpressure: admission-check *before* spawning.
        if active.load(Ordering::Acquire) >= config.max_inflight {
            metrics.server_busy_refusals.inc();
            refuse(stream, config, b"busy: max inflight connections");
            continue;
        }
        metrics.server_connections.inc();
        let slot = SlotGuard::acquire(&active);
        let aggregator = Arc::clone(aggregator);
        let journal = Arc::clone(journal);
        std::thread::spawn(move || {
            // The guard rides inside the thread: a panic anywhere in
            // `serve_connection` unwinds through it and still releases
            // the slot (the handler itself never panics on malformed
            // input — every decode error is an ST_ERR reply — so this
            // covers e.g. allocation failure).
            let _slot = slot;
            let _ = serve_connection(stream, &aggregator, &journal, config);
        });
    }
}

fn refuse(mut stream: TcpStream, config: NetConfig, reason: &[u8]) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = write_msg(&mut stream, &[&[ST_ERR], reason]);
}

/// Accepts every connection already queued on `listener` and answers it
/// with an `ST_ERR server shutting down` reply. Called once the stop
/// flag is observed, so a client that connected in the race window
/// between `stop.store` and the shutdown wake-up learns why it was
/// turned away instead of seeing an unexplained EOF.
fn drain_refuse(listener: &TcpListener, config: NetConfig) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Replies go out blocking so slow peers still get them.
                let _ = stream.set_nonblocking(false);
                ProfiledMetrics::get().server_shutdown_refusals.inc();
                refuse(stream, config, b"server shutting down");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Writes one reply through the single counting choke point: reply
/// frame sizes land in the bytes-out histogram and `ST_ERR` replies in
/// the error counter before the bytes hit the socket.
///
/// The frame — length prefix and all parts — is assembled into the
/// pooled `out` buffer and hits the socket in **one** `write_all`, so a
/// reply costs one syscall instead of one per part plus a flush, and
/// steady-state serving reuses the buffer's capacity instead of
/// allocating per reply.
fn reply(
    stream: &mut TcpStream,
    metrics: &ProfiledMetrics,
    out: &mut Vec<u8>,
    parts: &[&[u8]],
) -> io::Result<()> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    metrics.server_frame_bytes_out.observe(len as u64);
    if parts.first().and_then(|p| p.first()) == Some(&ST_ERR) {
        metrics.server_err_replies.inc();
    }
    let len32 = u32::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "message exceeds u32 length"))?;
    out.clear();
    out.reserve(4 + len);
    out.extend_from_slice(&len32.to_be_bytes());
    for p in parts {
        out.extend_from_slice(p);
    }
    stream.write_all(out)
}

/// Answers a failed journaled op: codec failures count as bad frames,
/// storage/crash failures only as error replies (the frame itself was
/// fine; the client may retry once the journal recovers).
fn reply_journal_err(
    stream: &mut TcpStream,
    m: &ProfiledMetrics,
    out: &mut Vec<u8>,
    e: &JournalError,
) -> io::Result<()> {
    if matches!(e, JournalError::Frame(_)) {
        m.server_bad_frames.inc();
    }
    reply(stream, m, out, &[&[ST_ERR], e.to_string().as_bytes()])
}

/// Serves one connection until EOF, timeout, or a fatal protocol error.
/// Every malformed input is answered with `ST_ERR` before closing, so
/// clients always learn why they were dropped; errors never propagate
/// past the connection.
///
/// The request buffer, reply buffer, and ingest-partition scratch are
/// pooled per connection: once their capacities plateau at the
/// connection's working sizes, steady-state request handling performs
/// no per-frame allocation.
fn serve_connection(
    mut stream: TcpStream,
    aggregator: &ShardedAggregator,
    journal: &Arc<dyn ProfileJournal>,
    config: NetConfig,
) -> io::Result<()> {
    let m = ProfiledMetrics::get();
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true).ok();
    // The consistent snapshot captured by the connection's in-progress
    // `OP_PULL_CHUNK` sequence; pages after page 0 are served from it so
    // pagination never observes a torn merge. Shared with the
    // aggregator's snapshot cache — capturing is a refcount bump. `None`
    // outside an active sequence: a page>0 request with no capture (the
    // connection never asked for page 0, or already consumed its final
    // page) is a protocol error and must never be answered from a stale
    // prior-generation capture.
    let mut chunk_capture: Option<Arc<Vec<u8>>> = None;
    let mut read_buf: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut scratch = IngestScratch::new();
    loop {
        match read_msg_into(&mut stream, config.max_frame_bytes, &mut read_buf) {
            Ok(Some(_)) => {}
            Ok(None) => return Ok(()), // clean close
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized frame: the unread payload makes the stream
                // unframeable, so answer and drop the connection.
                let _ = reply(
                    &mut stream,
                    m,
                    &mut out,
                    &[&[ST_ERR], e.to_string().as_bytes()],
                );
                return Ok(());
            }
            Err(e) => return Err(e), // timeout / reset: just drop
        };
        let started = Instant::now();
        m.server_frame_bytes_in.observe(read_buf.len() as u64);
        let (op, body) = match read_buf.split_first() {
            Some(x) => x,
            None => {
                let _ = reply(&mut stream, m, &mut out, &[&[ST_ERR], b"empty request"]);
                return Ok(());
            }
        };
        match *op {
            OP_PUSH => {
                m.server_op_push.inc();
                // Journal-then-apply via the shared write path: the
                // frame is durable (to the journal's policy) before the
                // ST_OK goes out; a malformed frame applies nothing.
                match journal.ingest_frame(body, &mut scratch) {
                    Ok(_) => {
                        reply(&mut stream, m, &mut out, &[&[ST_OK]])?;
                    }
                    Err(e) => {
                        // Reject the op, keep serving: framing is intact.
                        reply_journal_err(&mut stream, m, &mut out, &e)?;
                    }
                }
            }
            OP_PUSH_SEQ => {
                m.server_op_push_seq.inc();
                if body.len() < 16 {
                    reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[&[ST_ERR], b"push-seq needs a client id and a sequence"],
                    )?;
                    continue;
                }
                let client_id = u64::from_be_bytes(body[0..8].try_into().expect("8 bytes"));
                let seq = u64::from_be_bytes(body[8..16].try_into().expect("8 bytes"));
                let frame = &body[16..];
                // The journal runs check-apply-record under one lock,
                // so a retry racing a half-applied original observes
                // the pair atomically.
                match journal.ingest_sequenced(client_id, seq, frame, &mut scratch) {
                    Ok(SeqIngest::Applied { .. }) => {
                        reply(&mut stream, m, &mut out, &[&[ST_OK], b"applied"])?;
                    }
                    Ok(SeqIngest::Duplicate) => {
                        m.server_dedup_hits.inc();
                        reply(&mut stream, m, &mut out, &[&[ST_OK], b"duplicate"])?;
                    }
                    Err(e) => {
                        reply_journal_err(&mut stream, m, &mut out, &e)?;
                    }
                }
            }
            OP_PULL => {
                m.server_op_pull.inc();
                // Served from the generation-stamped cache: repeated
                // pulls of an unchanged aggregate reuse one encoding.
                let snapshot = aggregator.encoded_snapshot();
                if snapshot.len() + 1 > config.max_frame_bytes {
                    reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[&[ST_ERR], b"merged snapshot exceeds the frame limit"],
                    )?;
                } else {
                    reply(&mut stream, m, &mut out, &[&[ST_OK], snapshot.as_slice()])?;
                }
            }
            OP_PLAN => {
                m.server_op_plan.inc();
                // Served from the generation-keyed plan cache: an
                // unchanged aggregate answers with identical bytes.
                let plan = aggregator.encoded_plan();
                if plan.len() + 1 > config.max_frame_bytes {
                    reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[&[ST_ERR], b"fleet plan exceeds the frame limit"],
                    )?;
                } else {
                    reply(&mut stream, m, &mut out, &[&[ST_OK], plan.as_slice()])?;
                }
            }
            OP_PULL_CHUNK => {
                m.server_op_pull_chunk.inc();
                let Ok(page_bytes) = <[u8; 4]>::try_from(body) else {
                    reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[&[ST_ERR], b"chunk request needs a 4-byte page index"],
                    )?;
                    continue;
                };
                let page = u32::from_be_bytes(page_bytes) as usize;
                if page == 0 {
                    chunk_capture = Some(aggregator.encoded_snapshot());
                }
                let Some(capture) = chunk_capture.clone() else {
                    reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[
                            &[ST_ERR],
                            format!(
                                "page {page} requested with no page-0 capture on this connection"
                            )
                            .as_bytes(),
                        ],
                    )?;
                    continue;
                };
                let chunk_len = config
                    .max_frame_bytes
                    .saturating_sub(CHUNK_REPLY_OVERHEAD)
                    .max(1);
                let total = capture.len().div_ceil(chunk_len).max(1);
                if page >= total {
                    reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[
                            &[ST_ERR],
                            format!("page {page} out of range (total {total})").as_bytes(),
                        ],
                    )?;
                } else {
                    let lo = page * chunk_len;
                    let hi = (lo + chunk_len).min(capture.len());
                    reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[
                            &[ST_OK],
                            &(total as u32).to_be_bytes(),
                            &(page as u32).to_be_bytes(),
                            &capture[lo..hi],
                        ],
                    )?;
                    // The final page ends the sequence; a later page>0
                    // must restart from page 0, never re-read a capture
                    // from a prior snapshot generation.
                    if page == total - 1 {
                        chunk_capture = None;
                    }
                }
            }
            OP_STATS => {
                m.server_op_stats.inc();
                let s = aggregator.stats();
                // The v1 keys stay first and unchanged; v2 appends the
                // version marker and the dedup-table keys, so v1 parsers
                // (which read `key=value` lines and skip unknown keys)
                // keep working.
                let usage = journal.dedup_usage();
                let (dedup_clients, dedup_max_seq) = (usage.clients, usage.max_seq);
                let text = format!(
                    "frames={}\nrecords={}\nepoch={}\nedges={}\nshards={}\n\
                     stats_version=2\ndedup_clients={dedup_clients}\ndedup_max_seq={dedup_max_seq}\n",
                    s.frames,
                    s.records,
                    s.epoch,
                    s.total_edges(),
                    s.shard_edges.len(),
                );
                reply(&mut stream, m, &mut out, &[&[ST_OK], text.as_bytes()])?;
            }
            OP_METRICS => {
                m.server_op_metrics.inc();
                // Scrape-time gauges: published here, not on the data
                // path, so instantaneous sizes cost nothing per push.
                let s = aggregator.stats();
                m.agg_epoch.set(s.epoch as i64);
                m.agg_edges.set(s.total_edges() as i64);
                m.publish_shard_edges(&s.shard_edges);
                m.server_dedup_clients
                    .set(journal.dedup_usage().clients as i64);
                let text = cbs_telemetry::global().render();
                reply(&mut stream, m, &mut out, &[&[ST_OK], text.as_bytes()])?;
            }
            OP_EPOCH => {
                m.server_op_epoch.inc();
                match journal.advance_epoch() {
                    Ok(epoch) => reply(
                        &mut stream,
                        m,
                        &mut out,
                        &[&[ST_OK], epoch.to_string().as_bytes()],
                    )?,
                    Err(e) => reply_journal_err(&mut stream, m, &mut out, &e)?,
                }
            }
            other => {
                let _ = reply(
                    &mut stream,
                    m,
                    &mut out,
                    &[&[ST_ERR], format!("unknown op {other}").as_bytes()],
                );
                return Ok(());
            }
        }
        m.server_handler_latency_us
            .observe(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::AggregatorConfig;
    use crate::client::{ProfileClient, PushOutcome};
    use crate::codec::DcgCodec;
    use crate::wire::read_msg;

    /// Regression for the inflight-slot leak: a panic while holding a
    /// slot must still release it (the old code ran `fetch_sub` after
    /// the handler, so an unwind skipped it and permanently consumed a
    /// `max_inflight` slot).
    #[test]
    fn slot_released_even_when_the_connection_thread_panics() {
        let active = Arc::new(AtomicUsize::new(0));
        let guard_active = Arc::clone(&active);
        let t = std::thread::spawn(move || {
            let _slot = SlotGuard::acquire(&guard_active);
            panic!("connection handler blew up");
        });
        assert!(t.join().is_err(), "thread must have panicked");
        assert_eq!(
            active.load(Ordering::Acquire),
            0,
            "panicking handler leaked its admission slot"
        );
        // And the non-panicking path still balances.
        {
            let _slot = SlotGuard::acquire(&active);
            assert_eq!(active.load(Ordering::Acquire), 1);
        }
        assert_eq!(active.load(Ordering::Acquire), 0);
    }

    /// Regression for the seq-table poisoning outage: a handler panic
    /// while holding the dedup mutex used to turn every later
    /// `OP_PUSH_SEQ` exchange into a panic of its own (`.expect("seq
    /// table lock")`), permanently killing exactly-once pushes. The
    /// table is valid after any partial update, so the lock is now
    /// recovered and service continues.
    #[test]
    fn push_seq_keeps_working_after_a_handler_panic_poisons_the_seq_table() {
        let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(2)));
        let mem = Arc::new(MemJournal::new(Arc::clone(&agg)));
        let server = serve_with(
            "127.0.0.1:0",
            agg,
            ServerConfig {
                journal: Some(Arc::clone(&mem) as Arc<dyn ProfileJournal>),
                ..ServerConfig::default()
            },
        )
        .expect("binds");
        // Script the handler panic: grab the shared table the way a
        // connection thread does, then unwind while holding it.
        let table = Arc::clone(&mem);
        let panicker = std::thread::spawn(move || {
            let _guard = table.dedup().lock().expect("first locker sees no poison");
            panic!("scripted handler panic while holding the seq table");
        });
        assert!(panicker.join().is_err(), "thread must have panicked");
        assert!(mem.dedup().is_poisoned(), "the mutex is really poisoned");

        let edge = cbs_dcg::CallEdge::new(
            cbs_bytecode::MethodId::new(1),
            cbs_bytecode::CallSiteId::new(0),
            cbs_bytecode::MethodId::new(2),
        );
        let frame = DcgCodec::encode_delta(&[(edge, 2.0)]);
        let mut client =
            ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");
        assert_eq!(
            client.push_seq(9, 1, &frame).expect("served, not dropped"),
            PushOutcome::Applied
        );
        assert_eq!(
            client.push_seq(9, 1, &frame).expect("dedup still works"),
            PushOutcome::Duplicate,
            "retry of an applied sequence must be acknowledged, not re-applied"
        );
        let fleet = client.pull().expect("pull");
        assert_eq!(fleet.weight(&edge), 2.0, "the duplicate was not re-applied");
        server.shutdown();
    }

    /// Regression for the unbounded dedup table: pushes from more
    /// distinct client ids than the cap must leave the table at the
    /// cap (oldest clients evicted) while duplicate detection keeps
    /// working for clients still resident.
    #[test]
    fn dedup_table_is_bounded_under_client_churn() {
        let agg = Arc::new(ShardedAggregator::new(AggregatorConfig::with_shards(2)));
        let cap = 8usize;
        let server = serve_with(
            "127.0.0.1:0",
            agg,
            ServerConfig {
                dedup_capacity: cap,
                ..ServerConfig::default()
            },
        )
        .expect("binds");
        let edge = cbs_dcg::CallEdge::new(
            cbs_bytecode::MethodId::new(1),
            cbs_bytecode::CallSiteId::new(0),
            cbs_bytecode::MethodId::new(2),
        );
        let frame = DcgCodec::encode_delta(&[(edge, 1.0)]);
        let mut client =
            ProfileClient::connect(server.addr(), NetConfig::default()).expect("connects");
        // 3× the cap of distinct clients churn through.
        for id in 1..=(3 * cap as u64) {
            assert_eq!(
                client.push_seq(id, 1, &frame).expect("served"),
                PushOutcome::Applied
            );
        }
        assert_eq!(
            server.dedup_clients(),
            cap,
            "table must be bounded by the configured cap"
        );
        // The most recent clients are resident: their retries dedup.
        let live = 3 * cap as u64;
        assert_eq!(
            client.push_seq(live, 1, &frame).expect("served"),
            PushOutcome::Duplicate,
            "live client's retry must be acknowledged, not re-applied"
        );
        // An evicted client's history is forgotten: its old sequence
        // is applied again (at-least-once after eviction, by design).
        assert_eq!(
            client.push_seq(1, 1, &frame).expect("served"),
            PushOutcome::Applied,
            "evicted client is treated as new"
        );
        let fleet = client.pull().expect("pull");
        assert_eq!(
            fleet.weight(&edge),
            (3 * cap + 1) as f64,
            "each applied push added exactly one unit of weight"
        );
        server.shutdown();
    }

    /// Regression for the shutdown race: connections queued in the
    /// accept backlog when the stop flag flips must each receive an
    /// explicit `ST_ERR server shutting down` reply, not a silent drop.
    #[test]
    fn drain_refuse_answers_every_queued_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let config = NetConfig::default();
        // Three clients connect and queue in the backlog; none is ever
        // accepted by a serving loop.
        let mut clients: Vec<TcpStream> = (0..3)
            .map(|_| TcpStream::connect(addr).expect("connects"))
            .collect();
        drain_refuse(&listener, config);
        for (i, c) in clients.iter_mut().enumerate() {
            c.set_read_timeout(Some(std::time::Duration::from_secs(10)))
                .expect("timeout");
            let reply = read_msg(c, config.max_frame_bytes)
                .expect("reply is well-framed")
                .unwrap_or_else(|| panic!("client {i} was dropped without a reply"));
            assert_eq!(reply.first(), Some(&ST_ERR), "client {i}");
            assert!(
                String::from_utf8_lossy(&reply[1..]).contains("shutting down"),
                "client {i}: {reply:?}"
            );
        }
    }
}
