//! The TCP profile-ingestion server.
//!
//! One blocking accept loop hands each connection to its own thread,
//! bounded by [`NetConfig::max_inflight`]; over the limit a connection is
//! answered `ST_ERR busy` and closed, pushing backpressure to the
//! client rather than queueing unboundedly. Connections are persistent:
//! each serves a sequence of request/response exchanges until the peer
//! closes, a timeout fires, or a malformed message arrives (answered
//! with `ST_ERR`, then the connection — never the server — is dropped).
//!
//! All connection threads share one [`ShardedAggregator`] behind an
//! `Arc`, so pushes from many VMs interleave at shard granularity. A
//! shared per-client sequence table backs the exactly-once
//! `OP_PUSH_SEQ` op: retries of a maybe-delivered frame are
//! acknowledged without being re-applied, which is what lets the
//! resilient client requeue and blindly resend after any fault.
//!
//! Shutdown is drain-and-refuse: once [`ServerHandle::shutdown`] flips
//! the stop flag, every connection still queued in the accept backlog —
//! including one that raced the stop — receives an explicit
//! `ST_ERR server shutting down` reply instead of being silently
//! dropped.

use crate::aggregator::ShardedAggregator;
use crate::codec::DcgCodec;
use crate::wire::{
    read_msg, write_msg, NetConfig, CHUNK_REPLY_OVERHEAD, OP_EPOCH, OP_PULL, OP_PULL_CHUNK,
    OP_PUSH, OP_PUSH_SEQ, OP_STATS, ST_ERR, ST_OK,
};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Highest applied push sequence per client id (the `OP_PUSH_SEQ`
/// dedup table), shared by every connection thread.
type SeqTable = Arc<Mutex<HashMap<u64, u64>>>;

/// A running profile server; dropping the handle leaves the server
/// running detached, [`shutdown`](Self::shutdown) stops it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    aggregator: Arc<ShardedAggregator>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared aggregator, for in-process inspection alongside the
    /// network interface.
    pub fn aggregator(&self) -> &Arc<ShardedAggregator> {
        &self.aggregator
    }

    /// Stops accepting connections and joins the accept loop.
    ///
    /// Connections already queued in the accept backlog are drained and
    /// answered `ST_ERR server shutting down` — never silently dropped.
    /// In-flight connection threads finish their current exchanges and
    /// exit on their own (their sockets carry read timeouts, so none can
    /// linger forever).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; the
        // accept loop refuses it (and anything queued around it) with
        // an explicit shutdown reply.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
/// serves `aggregator` on a background accept thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(
    addr: impl ToSocketAddrs,
    aggregator: Arc<ShardedAggregator>,
    config: NetConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let aggregator = Arc::clone(&aggregator);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &aggregator, &stop, config))
    };
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        aggregator,
    })
}

/// Owns one admission slot of the `max_inflight` budget; releasing is
/// tied to `Drop` so a panicking connection thread can never leak its
/// slot — the unwind releases it like any other exit path.
struct SlotGuard(Arc<AtomicUsize>);

impl SlotGuard {
    fn acquire(active: &Arc<AtomicUsize>) -> Self {
        active.fetch_add(1, Ordering::AcqRel);
        Self(Arc::clone(active))
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(
    listener: &TcpListener,
    aggregator: &Arc<ShardedAggregator>,
    stop: &Arc<AtomicBool>,
    config: NetConfig,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let seqs: SeqTable = Arc::new(Mutex::new(HashMap::new()));
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            // Drain-and-refuse: the connection that woke us — which may
            // be a legitimate client that raced the stop flag, not the
            // shutdown's throwaway connect — and everything else queued
            // in the backlog get an explicit refusal, not a silent drop.
            if let Ok(s) = stream {
                refuse(s, config, b"server shutting down");
            }
            drain_refuse(listener, config);
            return;
        }
        let Ok(stream) = stream else { continue };
        // Backpressure: admission-check *before* spawning.
        if active.load(Ordering::Acquire) >= config.max_inflight {
            refuse(stream, config, b"busy: max inflight connections");
            continue;
        }
        let slot = SlotGuard::acquire(&active);
        let aggregator = Arc::clone(aggregator);
        let seqs = Arc::clone(&seqs);
        std::thread::spawn(move || {
            // The guard rides inside the thread: a panic anywhere in
            // `serve_connection` unwinds through it and still releases
            // the slot (the handler itself never panics on malformed
            // input — every decode error is an ST_ERR reply — so this
            // covers e.g. allocation failure).
            let _slot = slot;
            let _ = serve_connection(stream, &aggregator, &seqs, config);
        });
    }
}

fn refuse(mut stream: TcpStream, config: NetConfig, reason: &[u8]) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = write_msg(&mut stream, &[&[ST_ERR], reason]);
}

/// Accepts every connection already queued on `listener` and answers it
/// with an `ST_ERR server shutting down` reply. Called once the stop
/// flag is observed, so a client that connected in the race window
/// between `stop.store` and the shutdown wake-up learns why it was
/// turned away instead of seeing an unexplained EOF.
fn drain_refuse(listener: &TcpListener, config: NetConfig) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Replies go out blocking so slow peers still get them.
                let _ = stream.set_nonblocking(false);
                refuse(stream, config, b"server shutting down");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Serves one connection until EOF, timeout, or a fatal protocol error.
/// Every malformed input is answered with `ST_ERR` before closing, so
/// clients always learn why they were dropped; errors never propagate
/// past the connection.
fn serve_connection(
    mut stream: TcpStream,
    aggregator: &ShardedAggregator,
    seqs: &SeqTable,
    config: NetConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true).ok();
    // The consistent snapshot captured by the connection's last
    // `OP_PULL_CHUNK` page-0 request; later pages are served from it so
    // pagination never observes a torn merge.
    let mut chunk_capture: Vec<u8> = Vec::new();
    loop {
        let msg = match read_msg(&mut stream, config.max_frame_bytes) {
            Ok(Some(msg)) => msg,
            Ok(None) => return Ok(()), // clean close
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized frame: the unread payload makes the stream
                // unframeable, so answer and drop the connection.
                let _ = write_msg(&mut stream, &[&[ST_ERR], e.to_string().as_bytes()]);
                return Ok(());
            }
            Err(e) => return Err(e), // timeout / reset: just drop
        };
        let (op, body) = match msg.split_first() {
            Some(x) => x,
            None => {
                let _ = write_msg(&mut stream, &[&[ST_ERR], b"empty request"]);
                return Ok(());
            }
        };
        match *op {
            OP_PUSH => match DcgCodec::decode(body) {
                Ok(frame) => {
                    aggregator.ingest(&frame);
                    write_msg(&mut stream, &[&[ST_OK]])?;
                }
                Err(e) => {
                    // Reject the frame, keep serving: framing is intact,
                    // only the payload was bad.
                    write_msg(
                        &mut stream,
                        &[&[ST_ERR], format!("bad frame: {e}").as_bytes()],
                    )?;
                }
            },
            OP_PUSH_SEQ => {
                if body.len() < 16 {
                    write_msg(
                        &mut stream,
                        &[&[ST_ERR], b"push-seq needs a client id and a sequence"],
                    )?;
                    stream.flush()?;
                    continue;
                }
                let client_id = u64::from_be_bytes(body[0..8].try_into().expect("8 bytes"));
                let seq = u64::from_be_bytes(body[8..16].try_into().expect("8 bytes"));
                match DcgCodec::decode(&body[16..]) {
                    Ok(frame) => {
                        // Hold the table lock across check-apply-record:
                        // a retry of the same batch arriving on a fresh
                        // connection while a zombie thread is mid-apply
                        // must observe apply+record atomically, or it
                        // could double-count the frame.
                        let mut seqs = seqs.lock().expect("seq table lock");
                        let last = seqs.get(&client_id).copied().unwrap_or(0);
                        if seq > last {
                            aggregator.ingest(&frame);
                            seqs.insert(client_id, seq);
                            drop(seqs);
                            write_msg(&mut stream, &[&[ST_OK], b"applied"])?;
                        } else {
                            drop(seqs);
                            write_msg(&mut stream, &[&[ST_OK], b"duplicate"])?;
                        }
                    }
                    Err(e) => {
                        write_msg(
                            &mut stream,
                            &[&[ST_ERR], format!("bad frame: {e}").as_bytes()],
                        )?;
                    }
                }
            }
            OP_PULL => {
                let snapshot = DcgCodec::encode_snapshot(&aggregator.merged_snapshot());
                if snapshot.len() + 1 > config.max_frame_bytes {
                    write_msg(
                        &mut stream,
                        &[&[ST_ERR], b"merged snapshot exceeds the frame limit"],
                    )?;
                } else {
                    write_msg(&mut stream, &[&[ST_OK], &snapshot])?;
                }
            }
            OP_PULL_CHUNK => {
                let Ok(page_bytes) = <[u8; 4]>::try_from(body) else {
                    write_msg(
                        &mut stream,
                        &[&[ST_ERR], b"chunk request needs a 4-byte page index"],
                    )?;
                    stream.flush()?;
                    continue;
                };
                let page = u32::from_be_bytes(page_bytes) as usize;
                if page == 0 {
                    chunk_capture = DcgCodec::encode_snapshot(&aggregator.merged_snapshot());
                }
                let chunk_len = config
                    .max_frame_bytes
                    .saturating_sub(CHUNK_REPLY_OVERHEAD)
                    .max(1);
                let total = chunk_capture.len().div_ceil(chunk_len).max(1);
                if page >= total {
                    write_msg(
                        &mut stream,
                        &[
                            &[ST_ERR],
                            format!("page {page} out of range (total {total})").as_bytes(),
                        ],
                    )?;
                } else {
                    let lo = page * chunk_len;
                    let hi = (lo + chunk_len).min(chunk_capture.len());
                    write_msg(
                        &mut stream,
                        &[
                            &[ST_OK],
                            &(total as u32).to_be_bytes(),
                            &(page as u32).to_be_bytes(),
                            &chunk_capture[lo..hi],
                        ],
                    )?;
                }
            }
            OP_STATS => {
                let s = aggregator.stats();
                let text = format!(
                    "frames={}\nrecords={}\nepoch={}\nedges={}\nshards={}\n",
                    s.frames,
                    s.records,
                    s.epoch,
                    s.total_edges(),
                    s.shard_edges.len(),
                );
                write_msg(&mut stream, &[&[ST_OK], text.as_bytes()])?;
            }
            OP_EPOCH => {
                let epoch = aggregator.advance_epoch();
                write_msg(&mut stream, &[&[ST_OK], epoch.to_string().as_bytes()])?;
            }
            other => {
                let _ = write_msg(
                    &mut stream,
                    &[&[ST_ERR], format!("unknown op {other}").as_bytes()],
                );
                return Ok(());
            }
        }
        stream.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_msg;

    /// Regression for the inflight-slot leak: a panic while holding a
    /// slot must still release it (the old code ran `fetch_sub` after
    /// the handler, so an unwind skipped it and permanently consumed a
    /// `max_inflight` slot).
    #[test]
    fn slot_released_even_when_the_connection_thread_panics() {
        let active = Arc::new(AtomicUsize::new(0));
        let guard_active = Arc::clone(&active);
        let t = std::thread::spawn(move || {
            let _slot = SlotGuard::acquire(&guard_active);
            panic!("connection handler blew up");
        });
        assert!(t.join().is_err(), "thread must have panicked");
        assert_eq!(
            active.load(Ordering::Acquire),
            0,
            "panicking handler leaked its admission slot"
        );
        // And the non-panicking path still balances.
        {
            let _slot = SlotGuard::acquire(&active);
            assert_eq!(active.load(Ordering::Acquire), 1);
        }
        assert_eq!(active.load(Ordering::Acquire), 0);
    }

    /// Regression for the shutdown race: connections queued in the
    /// accept backlog when the stop flag flips must each receive an
    /// explicit `ST_ERR server shutting down` reply, not a silent drop.
    #[test]
    fn drain_refuse_answers_every_queued_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let config = NetConfig::default();
        // Three clients connect and queue in the backlog; none is ever
        // accepted by a serving loop.
        let mut clients: Vec<TcpStream> = (0..3)
            .map(|_| TcpStream::connect(addr).expect("connects"))
            .collect();
        drain_refuse(&listener, config);
        for (i, c) in clients.iter_mut().enumerate() {
            c.set_read_timeout(Some(std::time::Duration::from_secs(10)))
                .expect("timeout");
            let reply = read_msg(c, config.max_frame_bytes)
                .expect("reply is well-framed")
                .unwrap_or_else(|| panic!("client {i} was dropped without a reply"));
            assert_eq!(reply.first(), Some(&ST_ERR), "client {i}");
            assert!(
                String::from_utf8_lossy(&reply[1..]).contains("shutting down"),
                "client {i}: {reply:?}"
            );
        }
    }
}
