//! The compact binary profile format (`DcgCodec`).
//!
//! A *frame* carries one flush of a dynamic call graph:
//!
//! ```text
//! frame    := magic "CBSP" | version u8 (=1) | kind u8 | varint(n) | n × record
//! record   := varint(key step) | weight
//! weight   := varint(2·m)            -- non-negative integral weight m
//!           | varint(1) | f64-bits   -- 8 raw little-endian bytes otherwise
//! ```
//!
//! Edge identity is packed into a 96-bit key
//! `caller·2⁶⁴ + site·2³² + callee`; records are sorted in ascending key
//! order (exactly [`DynamicCallGraph::iter`] order) and each record
//! stores the *difference* from the previous key — the first record
//! stores its key absolutely. Because keys strictly increase, every
//! subsequent step is ≥ 1, and dense id spaces (the common case: dense
//! `MethodId`/`CallSiteId` from one program) compress to 1–2 byte steps.
//! Varints are LEB128 (7 data bits per byte, little-endian groups).
//!
//! Two frame kinds exist. A **snapshot** carries absolute weights of a
//! whole graph; a **delta** carries only the positive weight *increments*
//! since the producer's previous flush (see
//! [`DynamicCallGraph::drain_delta`]). Both are additive for a consumer
//! that started from the producer's first flush, which is what lets the
//! aggregator treat every frame as "add these weights".
//!
//! Round-trip guarantee: decoding reproduces every edge weight
//! **bit-exactly**. The rebuilt graph's running total is accumulated in
//! canonical (ascending-edge) order, which is bit-identical to the total
//! of any merged or drained graph — i.e. of every graph this crate
//! actually ships (the aggregator's merged snapshots, `drain_delta`
//! output). Only a graph whose local observation history happened to sum
//! fractional weights in a different order can differ, and then only in
//! the final rounding bit of the derived total, never in an edge weight.
//!
//! Decoding is strict: unknown magic/version/kind, truncated input,
//! overlong varints, non-finite or non-positive weights, duplicate or
//! unsorted keys, keys exceeding 96 bits, and trailing bytes are all
//! distinct [`CodecError`]s — a server can reject any malformed frame
//! without trusting the sender.
//!
//! ## Plan frames (`CBSI`)
//!
//! The fleet daemon also serves *inlining plans* — the output of
//! [`cbs_inliner::build_plan`] run against the merged snapshot — in
//! their own frame format, sharing the varint/weight primitives:
//!
//! ```text
//! plan     := magic "CBSI" | version u8 (=1) | varint(generation)
//!           | tweight | varint(n) | n × entry
//! entry    := varint(site-key step) | weight | kind u8 | payload
//! payload  := varint(callee)                          -- 0 direct
//!           | varint(callee) | weight                 -- 1 devirtualize
//!           | varint(t) | t × (varint(callee) | weight) -- 2 guarded
//! ```
//!
//! Site keys pack `caller·2³² + site` into 64 bits, delta-encoded in
//! strictly ascending order like edge keys. `tweight` is the source
//! graph's total weight and, uniquely, may be zero (an empty
//! aggregate); every other weight is positive. Encoding a plan and
//! decoding it back is bit-exact, so a generation-cached encoded plan
//! is byte-identical across serves.

use cbs_bytecode::{CallSiteId, MethodId};
use cbs_dcg::{CallEdge, DynamicCallGraph};
use cbs_inliner::{InlinePlan, PlanEntry, PlanKind};
use std::error::Error;
use std::fmt;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"CBSP";
/// Current (only) format version.
pub const VERSION: u8 = 1;
/// Magic bytes opening every inlining-plan frame.
pub const PLAN_MAGIC: [u8; 4] = *b"CBSI";
/// Current (only) plan format version.
pub const PLAN_VERSION: u8 = 1;

/// Plan-entry kind bytes on the wire.
const PLAN_KIND_DIRECT: u8 = 0;
const PLAN_KIND_DEVIRTUALIZE: u8 = 1;
const PLAN_KIND_GUARDED: u8 = 2;

/// What a frame's weights mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Absolute weights of a producer's whole graph (its first flush).
    Snapshot,
    /// Positive weight increments since the producer's previous flush.
    Delta,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Snapshot => 0,
            FrameKind::Delta => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameKind::Snapshot),
            1 => Some(FrameKind::Delta),
            _ => None,
        }
    }
}

/// One decoded frame: the kind plus `(edge, weight)` records in
/// ascending edge order.
#[derive(Debug, Clone, PartialEq)]
pub struct DcgFrame {
    /// Snapshot or delta.
    pub kind: FrameKind,
    /// Records in ascending edge order; weights are positive and finite.
    pub edges: Vec<(CallEdge, f64)>,
}

impl DcgFrame {
    /// Rebuilds a [`DynamicCallGraph`] from this frame's records.
    ///
    /// For a snapshot this *is* the producer's graph; for a delta it is
    /// just the increments.
    pub fn to_graph(&self) -> DynamicCallGraph {
        let mut g = DynamicCallGraph::new();
        for &(e, w) in &self.edges {
            g.record(e, w);
        }
        g
    }
}

/// A failure to decode a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// The input ended mid-frame.
    Truncated,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// An edge key exceeded 96 bits.
    KeyOverflow,
    /// Keys were duplicated or out of order.
    UnsortedKeys,
    /// A weight was non-positive, non-finite, or used a reserved tag.
    BadWeight,
    /// Bytes remained after the last declared record.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a CBSP frame (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported CBSP version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::VarintOverflow => write!(f, "varint wider than 96 bits"),
            CodecError::KeyOverflow => write!(f, "edge key exceeds 96 bits"),
            CodecError::UnsortedKeys => write!(f, "edge keys duplicated or out of order"),
            CodecError::BadWeight => write!(f, "weight not positive and finite"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after last record"),
        }
    }
}

impl Error for CodecError {}

/// Packs an edge into its 96-bit wire key.
fn key_of(e: &CallEdge) -> u128 {
    (u128::from(u32::from(e.caller)) << 64)
        | (u128::from(u32::from(e.site)) << 32)
        | u128::from(u32::from(e.callee))
}

/// Unpacks a wire key (must fit in 96 bits).
fn edge_of(key: u128) -> Result<CallEdge, CodecError> {
    if key >> 96 != 0 {
        return Err(CodecError::KeyOverflow);
    }
    Ok(CallEdge::new(
        MethodId::new((key >> 64) as u32),
        CallSiteId::new((key >> 32) as u32),
        MethodId::new(key as u32),
    ))
}

/// Appends a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Cursor over an encoded frame.
#[derive(Debug)]
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u128, CodecError> {
        let mut v: u128 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            // Nothing on the wire is wider than a 96-bit key (15 LEB128
            // groups reach 105 bits — comfortably inside u128, so the
            // accumulate below cannot overflow before this cap fires).
            if shift > 98 {
                return Err(CodecError::VarintOverflow);
            }
            v |= u128::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Weights that compress to a varint: non-negative integers below 2⁶²
/// whose `f64` representation is exact.
fn integral_weight(w: f64) -> Option<u64> {
    if w >= 0.0 && w < (1u64 << 62) as f64 && w.fract() == 0.0 {
        let m = w as u64;
        if m as f64 == w {
            return Some(m);
        }
    }
    None
}

fn put_weight(out: &mut Vec<u8>, w: f64) {
    match integral_weight(w) {
        Some(m) => put_varint(out, u128::from(m) << 1),
        None => {
            put_varint(out, 1);
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
    }
}

fn read_weight_raw(r: &mut Reader<'_>) -> Result<f64, CodecError> {
    let tag = r.varint()?;
    if tag & 1 == 0 {
        let m = u64::try_from(tag >> 1).map_err(|_| CodecError::BadWeight)?;
        Ok(m as f64)
    } else if tag == 1 {
        let bytes: [u8; 8] = r.take(8)?.try_into().expect("take(8) returns 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    } else {
        Err(CodecError::BadWeight)
    }
}

fn read_weight(r: &mut Reader<'_>) -> Result<f64, CodecError> {
    let w = read_weight_raw(r)?;
    if !w.is_finite() || w <= 0.0 {
        return Err(CodecError::BadWeight);
    }
    Ok(w)
}

/// Like [`read_weight`] but admits zero — used only for a plan's total
/// weight, which is legitimately 0 for an empty aggregate.
fn read_weight_nonneg(r: &mut Reader<'_>) -> Result<f64, CodecError> {
    let w = read_weight_raw(r)?;
    if !w.is_finite() || w < 0.0 {
        return Err(CodecError::BadWeight);
    }
    Ok(w)
}

/// A streaming cursor over one encoded frame's records, created by
/// [`DcgCodec::records`].
///
/// Yields `Result<(CallEdge, f64), CodecError>` in ascending edge
/// order, applying exactly the validation [`DcgCodec::decode`] does —
/// including the trailing-bytes check, which surfaces as a final `Err`
/// after the last declared record. The first error fuses the iterator
/// (subsequent `next` calls return `None`), so a consumer folding
/// records into an aggregate must drain the iterator and abort on any
/// `Err` without applying partial results.
///
/// This is the server's decode-into-aggregate fast path: frames fold
/// straight into shard buckets without materializing an intermediate
/// record vector.
#[derive(Debug)]
pub struct RecordIter<'a> {
    r: Reader<'a>,
    kind: FrameKind,
    remaining: usize,
    prev: Option<u128>,
    fused: bool,
}

impl RecordIter<'_> {
    /// The frame kind declared in the header.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// Records not yet yielded (the header count before iteration).
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// `true` when no records remain.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    fn read_record(&mut self) -> Result<(CallEdge, f64), CodecError> {
        let step = self.r.varint()?;
        let key = match self.prev {
            None => step,
            Some(p) => {
                if step == 0 {
                    return Err(CodecError::UnsortedKeys);
                }
                p.checked_add(step).ok_or(CodecError::KeyOverflow)?
            }
        };
        self.prev = Some(key);
        let edge = edge_of(key)?;
        let weight = read_weight(&mut self.r)?;
        Ok((edge, weight))
    }
}

impl Iterator for RecordIter<'_> {
    type Item = Result<(CallEdge, f64), CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        if self.remaining == 0 {
            if !self.r.done() {
                self.fused = true;
                return Some(Err(CodecError::TrailingBytes));
            }
            return None;
        }
        self.remaining -= 1;
        let rec = self.read_record();
        if rec.is_err() {
            self.fused = true;
        }
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.fused {
            (0, Some(0))
        } else {
            // +1 for the potential trailing-bytes error item.
            (self.remaining, Some(self.remaining + 1))
        }
    }
}

/// Encoder/decoder for the binary profile format.
///
/// Stateless; all methods are associated functions. See the
/// [module docs](self) for the wire layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct DcgCodec;

impl DcgCodec {
    /// Encodes a whole graph as a snapshot frame.
    ///
    /// Records are emitted in the graph's (ascending-edge) iteration
    /// order; weights round-trip bit-exactly.
    pub fn encode_snapshot(graph: &DynamicCallGraph) -> Vec<u8> {
        Self::encode_records(
            FrameKind::Snapshot,
            graph.iter().map(|(e, w)| (*e, w)),
            graph.num_edges(),
        )
    }

    /// Encodes weight increments (e.g. from
    /// [`DynamicCallGraph::drain_delta`]) as a delta frame.
    ///
    /// Records are sorted by edge; duplicate edges are coalesced by
    /// summing. Non-positive and non-finite increments are skipped, per
    /// the graph's weight contract.
    pub fn encode_delta(increments: &[(CallEdge, f64)]) -> Vec<u8> {
        let mut records: Vec<(CallEdge, f64)> = increments
            .iter()
            .filter(|(_, w)| w.is_finite() && *w > 0.0)
            .copied()
            .collect();
        // Stable sort: duplicate edges keep their input order, so the
        // coalescing additions below are bit-deterministic.
        records.sort_by_key(|r| r.0);
        records.dedup_by(|later, first| {
            if later.0 == first.0 {
                first.1 += later.1;
                true
            } else {
                false
            }
        });
        let n = records.len();
        Self::encode_records(FrameKind::Delta, records.into_iter(), n)
    }

    fn encode_records(
        kind: FrameKind,
        records: impl Iterator<Item = (CallEdge, f64)>,
        count: usize,
    ) -> Vec<u8> {
        // ~3 bytes/record for dense ids and small integral weights.
        let mut out = Vec::with_capacity(8 + count * 8);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(kind.to_byte());
        put_varint(&mut out, count as u128);
        let mut prev: Option<u128> = None;
        for (e, w) in records {
            let key = key_of(&e);
            let step = match prev {
                None => key,
                Some(p) => {
                    debug_assert!(key > p, "records must be in ascending edge order");
                    key - p
                }
            };
            prev = Some(key);
            put_varint(&mut out, step);
            put_weight(&mut out, w);
        }
        out
    }

    /// Parses a frame header and returns a streaming cursor over its
    /// records, validating each one lazily as it is yielded.
    ///
    /// This is the allocation-free path: the header checks (magic,
    /// version, kind, hostile record count) run eagerly, while record
    /// validation happens per [`RecordIter::next`] call. [`Self::decode`]
    /// is this plus collecting into a `Vec`, so the two paths accept and
    /// reject exactly the same inputs.
    ///
    /// # Errors
    ///
    /// Any malformed header yields a [`CodecError`]; malformed records
    /// surface as `Err` items from the returned iterator.
    pub fn records(bytes: &[u8]) -> Result<RecordIter<'_>, CodecError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.byte()?;
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let kind = r.byte()?;
        let kind = FrameKind::from_byte(kind).ok_or(CodecError::BadKind(kind))?;
        let count = usize::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)?;
        // A record is ≥ 2 bytes; a count promising more than the input
        // holds is rejected before allocating.
        if count > bytes.len() / 2 {
            return Err(CodecError::Truncated);
        }
        Ok(RecordIter {
            r,
            kind,
            remaining: count,
            prev: None,
            fused: false,
        })
    }

    /// Decodes a frame.
    ///
    /// # Errors
    ///
    /// Any malformed input yields a [`CodecError`]; no partial frame is
    /// ever returned.
    pub fn decode(bytes: &[u8]) -> Result<DcgFrame, CodecError> {
        let iter = Self::records(bytes)?;
        let kind = iter.kind();
        let mut edges = Vec::with_capacity(iter.len());
        for rec in iter {
            edges.push(rec?);
        }
        Ok(DcgFrame { kind, edges })
    }

    /// Validates an encoded frame without materializing it: drains the
    /// streaming record iterator and returns the frame kind and record
    /// count. Accepts and rejects exactly the inputs [`decode`] does —
    /// this is the cheap pre-check the dedup path ("bad frame beats
    /// duplicate") and the write-ahead log (journal only what will
    /// apply) rely on.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] [`decode`] would return for the same bytes.
    ///
    /// [`decode`]: Self::decode
    pub fn validate(bytes: &[u8]) -> Result<(FrameKind, usize), CodecError> {
        let iter = Self::records(bytes)?;
        let kind = iter.kind();
        let mut count = 0usize;
        for rec in iter {
            rec?;
            count += 1;
        }
        Ok((kind, count))
    }

    /// Decodes a frame and requires it to be a snapshot, returning the
    /// reconstructed graph.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadKind`] if the frame is a delta, plus any decode
    /// error.
    pub fn decode_snapshot(bytes: &[u8]) -> Result<DynamicCallGraph, CodecError> {
        let frame = Self::decode(bytes)?;
        if frame.kind != FrameKind::Snapshot {
            return Err(CodecError::BadKind(frame.kind.to_byte()));
        }
        Ok(frame.to_graph())
    }

    /// Encodes a fleet inlining plan as a `CBSI` frame.
    ///
    /// Entries must be sorted by `(caller, site)` with no duplicates —
    /// exactly what [`cbs_inliner::build_plan`] produces. Weights
    /// round-trip bit-exactly, so the same plan always encodes to the
    /// same bytes.
    pub fn encode_plan(plan: &InlinePlan) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + plan.entries.len() * 8);
        out.extend_from_slice(&PLAN_MAGIC);
        out.push(PLAN_VERSION);
        put_varint(&mut out, u128::from(plan.generation));
        put_weight(&mut out, plan.total_weight);
        put_varint(&mut out, plan.entries.len() as u128);
        let mut prev: Option<u64> = None;
        for e in &plan.entries {
            let key = (u64::from(u32::from(e.caller)) << 32) | u64::from(u32::from(e.site));
            let step = match prev {
                None => key,
                Some(p) => {
                    debug_assert!(key > p, "plan entries must be sorted by (caller, site)");
                    key - p
                }
            };
            prev = Some(key);
            put_varint(&mut out, u128::from(step));
            put_weight(&mut out, e.site_weight);
            match &e.kind {
                PlanKind::Direct { callee } => {
                    out.push(PLAN_KIND_DIRECT);
                    put_varint(&mut out, u128::from(u32::from(*callee)));
                }
                PlanKind::Devirtualize { callee, weight } => {
                    out.push(PLAN_KIND_DEVIRTUALIZE);
                    put_varint(&mut out, u128::from(u32::from(*callee)));
                    put_weight(&mut out, *weight);
                }
                PlanKind::Guarded { targets } => {
                    out.push(PLAN_KIND_GUARDED);
                    put_varint(&mut out, targets.len() as u128);
                    for (m, w) in targets {
                        put_varint(&mut out, u128::from(u32::from(*m)));
                        put_weight(&mut out, *w);
                    }
                }
            }
        }
        out
    }

    /// Decodes a `CBSI` plan frame.
    ///
    /// Validation is as strict as frame decoding: bad magic/version,
    /// truncation, overlong varints, ids beyond 32 bits, unsorted or
    /// duplicate `(caller, site)` keys, non-positive weights (a zero
    /// *total* is allowed), unknown kind bytes and trailing bytes are
    /// all rejected; no partial plan is ever returned.
    ///
    /// # Errors
    ///
    /// The [`CodecError`] describing the first malformed byte sequence.
    pub fn decode_plan(bytes: &[u8]) -> Result<InlinePlan, CodecError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != PLAN_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.byte()?;
        if version != PLAN_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let generation = u64::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)?;
        let total_weight = read_weight_nonneg(&mut r)?;
        let count = usize::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)?;
        // An entry is ≥ 4 bytes (step, weight, kind, payload); reject a
        // hostile count before allocating.
        if count > bytes.len() / 4 {
            return Err(CodecError::Truncated);
        }
        let read_id = |r: &mut Reader<'_>| -> Result<u32, CodecError> {
            u32::try_from(r.varint()?).map_err(|_| CodecError::KeyOverflow)
        };
        let mut entries = Vec::with_capacity(count);
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let step = r.varint()?;
            let key = match prev {
                None => u64::try_from(step).map_err(|_| CodecError::KeyOverflow)?,
                Some(p) => {
                    if step == 0 {
                        return Err(CodecError::UnsortedKeys);
                    }
                    let step = u64::try_from(step).map_err(|_| CodecError::KeyOverflow)?;
                    p.checked_add(step).ok_or(CodecError::KeyOverflow)?
                }
            };
            prev = Some(key);
            let caller = MethodId::new((key >> 32) as u32);
            let site = CallSiteId::new(key as u32);
            let site_weight = read_weight(&mut r)?;
            let kind = match r.byte()? {
                PLAN_KIND_DIRECT => PlanKind::Direct {
                    callee: MethodId::new(read_id(&mut r)?),
                },
                PLAN_KIND_DEVIRTUALIZE => PlanKind::Devirtualize {
                    callee: MethodId::new(read_id(&mut r)?),
                    weight: read_weight(&mut r)?,
                },
                PLAN_KIND_GUARDED => {
                    let n = usize::try_from(r.varint()?).map_err(|_| CodecError::VarintOverflow)?;
                    // A guard target is ≥ 2 bytes.
                    if n > bytes.len() / 2 {
                        return Err(CodecError::Truncated);
                    }
                    let mut targets = Vec::with_capacity(n);
                    for _ in 0..n {
                        let m = MethodId::new(read_id(&mut r)?);
                        let w = read_weight(&mut r)?;
                        targets.push((m, w));
                    }
                    PlanKind::Guarded { targets }
                }
                other => return Err(CodecError::BadKind(other)),
            };
            entries.push(PlanEntry {
                caller,
                site,
                site_weight,
                kind,
            });
        }
        if !r.done() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(InlinePlan {
            generation,
            total_weight,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(caller: u32, site: u32, callee: u32) -> CallEdge {
        CallEdge::new(
            MethodId::new(caller),
            CallSiteId::new(site),
            MethodId::new(callee),
        )
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = DynamicCallGraph::new();
        let bytes = DcgCodec::encode_snapshot(&g);
        assert_eq!(bytes.len(), 7, "magic + version + kind + count");
        let frame = DcgCodec::decode(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Snapshot);
        assert!(frame.edges.is_empty());
        assert_eq!(DcgCodec::decode_snapshot(&bytes).unwrap(), g);
    }

    #[test]
    fn single_edge_round_trips() {
        let mut g = DynamicCallGraph::new();
        g.record(e(3, 1, 4), 1.5);
        let back = DcgCodec::decode_snapshot(&DcgCodec::encode_snapshot(&g)).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.weight(&e(3, 1, 4)).to_bits(), 1.5f64.to_bits());
    }

    #[test]
    fn dense_ids_and_integral_weights_compress() {
        // 100 edges within one caller, unit-ish weights: ~3 bytes/record.
        let mut g = DynamicCallGraph::new();
        for i in 0..100u32 {
            g.record(e(1, i, i + 1), f64::from(i + 1));
        }
        let bytes = DcgCodec::encode_snapshot(&g);
        assert!(
            bytes.len() < 7 + 100 * 8,
            "delta+varint must beat fixed-width: {} bytes",
            bytes.len()
        );
        assert_eq!(DcgCodec::decode_snapshot(&bytes).unwrap(), g);
    }

    #[test]
    fn varint_boundary_edge_ids_round_trip() {
        // Ids straddling every 7-bit varint group boundary, including
        // >2^21 (the 3→4 byte step) and the u32 extremes.
        let ids = [
            0u32,
            1,
            (1 << 7) - 1,
            1 << 7,
            (1 << 14) - 1,
            1 << 14,
            (1 << 21) - 1,
            1 << 21,
            (1 << 21) + 12345,
            (1 << 28) - 1,
            1 << 28,
            u32::MAX - 1,
            u32::MAX,
        ];
        let mut g = DynamicCallGraph::new();
        for &c in &ids {
            for &s in &ids {
                g.record(e(c, s, c ^ s), 2.0);
            }
        }
        let back = DcgCodec::decode_snapshot(&DcgCodec::encode_snapshot(&g)).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.num_edges(), g.num_edges());
    }

    #[test]
    fn non_integral_and_extreme_weights_are_bit_exact() {
        let weights = [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            (1u64 << 53) as f64 + 2.0, // integral but above the varint-exact band? still exact
            ((1u64 << 62) as f64) * 4.0, // too large for the integral tag
            1e-300,
        ];
        let mut g = DynamicCallGraph::new();
        for (i, &w) in weights.iter().enumerate() {
            g.record(e(i as u32, 0, 1), w);
        }
        let back = DcgCodec::decode_snapshot(&DcgCodec::encode_snapshot(&g)).unwrap();
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(
                back.weight(&e(i as u32, 0, 1)).to_bits(),
                w.to_bits(),
                "weight {w} must round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn delta_frames_sort_and_coalesce() {
        let incs = vec![
            (e(2, 0, 1), 1.0),
            (e(0, 0, 1), 0.5),
            (e(2, 0, 1), 2.0),
            (e(1, 1, 1), f64::NAN), // dropped per weight contract
            (e(1, 1, 1), -3.0),     // dropped
        ];
        let frame = DcgCodec::decode(&DcgCodec::encode_delta(&incs)).unwrap();
        assert_eq!(frame.kind, FrameKind::Delta);
        assert_eq!(frame.edges, vec![(e(0, 0, 1), 0.5), (e(2, 0, 1), 3.0)]);
    }

    #[test]
    fn truncated_frames_rejected_at_every_byte() {
        let mut g = DynamicCallGraph::new();
        g.record(e(5, 6, 7), 0.125); // raw-weight path: 8-byte payload
        g.record(e(1000000, 2, 3), 9.0);
        let bytes = DcgCodec::encode_snapshot(&g);
        for cut in 0..bytes.len() {
            let err = DcgCodec::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated),
                "cut at {cut}: got {err:?}"
            );
        }
        assert!(DcgCodec::decode(&bytes).is_ok());
    }

    #[test]
    fn malformed_headers_rejected() {
        assert_eq!(DcgCodec::decode(b"XXXXxxx"), Err(CodecError::BadMagic));
        let mut bytes = DcgCodec::encode_snapshot(&DynamicCallGraph::new());
        bytes[4] = 9;
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::BadVersion(9)));
        bytes[4] = VERSION;
        bytes[5] = 7;
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::BadKind(7)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut g = DynamicCallGraph::new();
        g.record(e(0, 0, 1), 1.0);
        let mut bytes = DcgCodec::encode_snapshot(&g);
        bytes.push(0);
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn zero_step_and_bad_weights_rejected() {
        // Hand-build: header, count=2, key 5, weight 1, step 0 (duplicate).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        bytes.push(2); // count
        bytes.push(5); // first key
        bytes.push(2); // weight 1 (tag 2 = integral 1)
        bytes.push(0); // zero step: duplicate key
        bytes.push(2);
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::UnsortedKeys));

        // Integral weight 0 is non-positive.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        bytes.push(1);
        bytes.push(5);
        bytes.push(0); // weight tag 0 → 0.0
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::BadWeight));

        // Raw weight NaN rejected.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        bytes.push(1);
        bytes.push(5);
        bytes.push(1); // raw tag
        bytes.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::BadWeight));
    }

    #[test]
    fn overlong_varint_and_key_overflow_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        bytes.push(1);
        // 15 continuation bytes: wider than any valid key.
        bytes.extend_from_slice(&[0xff; 15]);
        bytes.push(0x01);
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::VarintOverflow));

        // A 97-bit key fits the varint cap but overflows the key space.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        bytes.push(1);
        put_varint(&mut bytes, 1u128 << 96);
        bytes.push(2);
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::KeyOverflow));
    }

    #[test]
    fn streaming_records_match_decode_on_valid_frames() {
        let mut g = DynamicCallGraph::new();
        for i in 0..50u32 {
            g.record(e(i % 7, i, i + 1), 0.5 + f64::from(i));
        }
        let bytes = DcgCodec::encode_snapshot(&g);
        let frame = DcgCodec::decode(&bytes).unwrap();
        let iter = DcgCodec::records(&bytes).unwrap();
        assert_eq!(iter.kind(), frame.kind);
        assert_eq!(iter.len(), frame.edges.len());
        assert!(!iter.is_empty());
        let streamed: Vec<(CallEdge, f64)> = iter.map(|r| r.unwrap()).collect();
        assert_eq!(streamed, frame.edges);
    }

    #[test]
    fn streaming_records_error_parity_with_decode() {
        // Every truncation of a real frame and a set of malformed bodies
        // must fail the streaming path with the same error decode gives,
        // and the iterator must fuse after the first error.
        let mut g = DynamicCallGraph::new();
        g.record(e(5, 6, 7), 0.125);
        g.record(e(1000000, 2, 3), 9.0);
        let good = DcgCodec::encode_snapshot(&g);

        let mut cases: Vec<Vec<u8>> = (0..good.len()).map(|cut| good[..cut].to_vec()).collect();
        let mut trailing = good.clone();
        trailing.push(0);
        cases.push(trailing);
        let mut zero_step = Vec::new();
        zero_step.extend_from_slice(&MAGIC);
        zero_step.extend_from_slice(&[VERSION, 0, 2, 5, 2, 0, 2]);
        cases.push(zero_step);
        let mut bad_weight = Vec::new();
        bad_weight.extend_from_slice(&MAGIC);
        bad_weight.extend_from_slice(&[VERSION, 0, 1, 5, 0]);
        cases.push(bad_weight);
        let mut key_overflow = Vec::new();
        key_overflow.extend_from_slice(&MAGIC);
        key_overflow.extend_from_slice(&[VERSION, 0, 1]);
        put_varint(&mut key_overflow, 1u128 << 96);
        key_overflow.push(2);
        cases.push(key_overflow);

        for bytes in &cases {
            let want = DcgCodec::decode(bytes).unwrap_err();
            let got = match DcgCodec::records(bytes) {
                Err(e) => e,
                Ok(mut iter) => {
                    let first_err = loop {
                        match iter.next() {
                            Some(Err(e)) => break e,
                            Some(Ok(_)) => continue,
                            None => panic!("streaming accepted a frame decode rejects"),
                        }
                    };
                    assert!(iter.next().is_none(), "iterator must fuse after an error");
                    first_err
                }
            };
            assert_eq!(got, want, "error parity for {bytes:?}");
        }
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        // Claims ~2^35 records with an empty body.
        put_varint(&mut bytes, 1u128 << 35);
        assert_eq!(DcgCodec::decode(&bytes), Err(CodecError::Truncated));
    }

    fn sample_plan() -> InlinePlan {
        InlinePlan {
            generation: 42,
            total_weight: 1234.5,
            entries: vec![
                PlanEntry {
                    caller: MethodId::new(0),
                    site: CallSiteId::new(3),
                    site_weight: 50.0,
                    kind: PlanKind::Direct {
                        callee: MethodId::new(7),
                    },
                },
                PlanEntry {
                    caller: MethodId::new(1),
                    site: CallSiteId::new(0),
                    site_weight: 100.25,
                    kind: PlanKind::Devirtualize {
                        callee: MethodId::new(9),
                        weight: 90.25,
                    },
                },
                PlanEntry {
                    caller: MethodId::new(1),
                    site: CallSiteId::new(5),
                    site_weight: 80.0,
                    kind: PlanKind::Guarded {
                        targets: vec![(MethodId::new(2), 44.0), (MethodId::new(4), 36.0)],
                    },
                },
            ],
        }
    }

    #[test]
    fn plan_round_trips_bit_exactly() {
        let plan = sample_plan();
        let bytes = DcgCodec::encode_plan(&plan);
        assert_eq!(&bytes[..4], b"CBSI");
        let back = DcgCodec::decode_plan(&bytes).unwrap();
        assert_eq!(back, plan);
        // Deterministic encoding: same plan, same bytes.
        assert_eq!(bytes, DcgCodec::encode_plan(&back));
    }

    #[test]
    fn empty_plan_with_zero_total_round_trips() {
        let plan = InlinePlan {
            generation: 0,
            total_weight: 0.0,
            entries: Vec::new(),
        };
        let bytes = DcgCodec::encode_plan(&plan);
        assert_eq!(DcgCodec::decode_plan(&bytes).unwrap(), plan);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let good = DcgCodec::encode_plan(&sample_plan());

        // Wrong magic (a CBSP frame is not a plan).
        let snapshot = DcgCodec::encode_snapshot(&DynamicCallGraph::new());
        assert_eq!(DcgCodec::decode_plan(&snapshot), Err(CodecError::BadMagic));

        // Bad version.
        let mut bad = good.clone();
        bad[4] = 9;
        assert_eq!(DcgCodec::decode_plan(&bad), Err(CodecError::BadVersion(9)));

        // Truncated mid-entry.
        assert_eq!(
            DcgCodec::decode_plan(&good[..good.len() - 1]),
            Err(CodecError::Truncated)
        );

        // Trailing bytes after the last entry.
        let mut long = good.clone();
        long.push(0);
        assert_eq!(DcgCodec::decode_plan(&long), Err(CodecError::TrailingBytes));

        // Duplicate (caller, site) keys: zero step.
        let mut dup = Vec::new();
        dup.extend_from_slice(&PLAN_MAGIC);
        dup.push(PLAN_VERSION);
        put_varint(&mut dup, 1); // generation
        put_weight(&mut dup, 10.0); // total
        put_varint(&mut dup, 2); // two entries
        for step in [5u128, 0u128] {
            put_varint(&mut dup, step);
            put_weight(&mut dup, 1.0);
            dup.push(PLAN_KIND_DIRECT);
            put_varint(&mut dup, 1);
        }
        assert_eq!(DcgCodec::decode_plan(&dup), Err(CodecError::UnsortedKeys));

        // Unknown kind byte.
        let mut bad_kind = Vec::new();
        bad_kind.extend_from_slice(&PLAN_MAGIC);
        bad_kind.push(PLAN_VERSION);
        put_varint(&mut bad_kind, 1);
        put_weight(&mut bad_kind, 10.0);
        put_varint(&mut bad_kind, 1);
        put_varint(&mut bad_kind, 5);
        put_weight(&mut bad_kind, 1.0);
        bad_kind.push(3);
        put_varint(&mut bad_kind, 1);
        assert_eq!(
            DcgCodec::decode_plan(&bad_kind),
            Err(CodecError::BadKind(3))
        );

        // Hostile entry count with an empty body.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&PLAN_MAGIC);
        hostile.push(PLAN_VERSION);
        put_varint(&mut hostile, 1);
        put_weight(&mut hostile, 10.0);
        put_varint(&mut hostile, 1u128 << 35);
        assert_eq!(DcgCodec::decode_plan(&hostile), Err(CodecError::Truncated));

        // Zero site weight is invalid (only the total may be zero).
        let mut zero_w = Vec::new();
        zero_w.extend_from_slice(&PLAN_MAGIC);
        zero_w.push(PLAN_VERSION);
        put_varint(&mut zero_w, 1);
        put_weight(&mut zero_w, 10.0);
        put_varint(&mut zero_w, 1);
        put_varint(&mut zero_w, 5);
        put_weight(&mut zero_w, 0.0);
        zero_w.push(PLAN_KIND_DIRECT);
        put_varint(&mut zero_w, 1);
        assert_eq!(DcgCodec::decode_plan(&zero_w), Err(CodecError::BadWeight));
    }
}
